//! The comparison algorithms of the MESSI paper (§IV-A).
//!
//! Every competitor the paper evaluates, implemented from scratch on the
//! same substrates as MESSI so the comparisons isolate the *algorithmic*
//! differences:
//!
//! * [`paris`] — the in-memory version of **ParIS** (Peng, Palpanas,
//!   Fatourou; IEEE BigData 2018), the state-of-the-art modern-hardware
//!   index MESSI is measured against: index construction with one
//!   lock-protected receiving buffer per root subtree and a global SAX
//!   array, and SIMS-style query answering (approximate answer, then a
//!   lower-bound scan over *every* summary, then parallel real distances
//!   over the candidate list). Includes the **ParIS-SISD** (no-SIMD)
//!   configuration of Fig. 18 and the **ParIS-no-synch** build variant of
//!   Fig. 5.
//! * [`paris::ts`] — **ParIS-TS**, the paper's "traditional tree-based
//!   exact search" extension: a single shared priority queue holding
//!   inner nodes *and* leaves, with insertions and pops running
//!   concurrently and no second filtering.
//! * [`ucr`] — **UCR Suite-P**, the parallel SIMD serial-scan with early
//!   abandoning (ED and DTW), plus the serial UCR Suite used as the
//!   Fig. 19 reference.
//!
//! All query functions return the same `(QueryAnswer, QueryStats)` pair
//! as `messi_core`, so the bench harness treats every algorithm
//! uniformly — and the integration tests assert they all give exactly
//! the brute-force answer.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod paris;
pub mod ucr;

pub use paris::{ParisBuildVariant, ParisIndex};
