//! ParIS index construction (in-memory version).
//!
//! Differences from MESSI's build, per §I/§II-B of the MESSI paper:
//!
//! * The raw array is "split to as many chunks as the workers" — fixed
//!   contiguous ranges, no Fetch&Inc load balancing.
//! * Summaries go into a global **SAX array** indexed by position; the
//!   per-subtree **receiving buffers** store only *positions* (pointers
//!   into that array). Tree construction therefore pays a scattered
//!   indirection per entry — the cache-locality cost MESSI removes by
//!   storing the summaries in its buffers directly.
//! * Each receiving buffer is a single shared vector protected by a lock
//!   ([`ParisBuildVariant::Locked`]) — the synchronization cost MESSI's
//!   per-worker parts eliminate. [`ParisBuildVariant::NoSynch`] is the
//!   Fig. 5 baseline with that one cost removed (per-worker parts, but
//!   still position-only buffers and fixed ranges).

use messi_core::node::{LeafEntry, SubtreeBuilder, TreeArena};
use messi_core::{BuildStats, IndexConfig, MessiIndex};
use messi_sax::convert::{SaxConfig, SaxConverter};
use messi_sax::root_key::{node_word_for_root_key, root_key};
use messi_sax::word::SaxWord;
use messi_series::Dataset;
use messi_sync::{Dispenser, PartitionedBuffers};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

use super::ParisIndex;

/// Receiving-buffer discipline during the ParIS build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParisBuildVariant {
    /// One lock-protected buffer per root subtree (faithful ParIS).
    Locked,
    /// Per-worker buffer parts (the "ParIS-no-synch" baseline of Fig. 5).
    NoSynch,
}

/// Builds an in-memory ParIS index over `dataset`.
///
/// # Panics
///
/// Panics if the dataset is empty or the configuration is invalid for the
/// dataset shape.
pub fn build_paris(
    dataset: Arc<Dataset>,
    config: &IndexConfig,
    variant: ParisBuildVariant,
) -> (ParisIndex, BuildStats) {
    config.validate(dataset.series_len());
    assert!(!dataset.is_empty(), "cannot index an empty dataset");

    let sax_config = SaxConfig::new(config.segments, dataset.series_len());
    let segments = sax_config.segments;
    let num_keys = sax_config.num_root_subtrees();
    let n = dataset.len();
    let num_workers = config.num_workers;
    let per_worker = n.div_ceil(num_workers).max(1);

    // ---- Phase 1: bulk loading (SAX array + receiving buffers) ----
    let mut sax_array = vec![SaxWord::zeroed(); n];
    let t0 = Instant::now();

    // Locked receiving buffers (positions per root subtree)…
    let locked_bufs: Vec<Mutex<Vec<u32>>> = match variant {
        ParisBuildVariant::Locked => (0..num_keys).map(|_| Mutex::new(Vec::new())).collect(),
        ParisBuildVariant::NoSynch => Vec::new(),
    };
    // …or per-worker parts for the no-synch variant.
    let mut part_bufs: PartitionedBuffers<u32> = match variant {
        ParisBuildVariant::NoSynch => {
            PartitionedBuffers::new(num_keys, num_workers, config.initial_buffer_capacity)
        }
        ParisBuildVariant::Locked => PartitionedBuffers::new(1, 1, 0),
    };

    {
        // Fixed contiguous ranges: worker w handles positions
        // [w·per_worker, (w+1)·per_worker).
        let mut parts = part_bufs.parts_mut().iter_mut();
        std::thread::scope(|s| {
            for (w, sax_slice) in sax_array.chunks_mut(per_worker).enumerate() {
                let dataset = &dataset;
                let locked_bufs = &locked_bufs;
                let part = match variant {
                    ParisBuildVariant::NoSynch => parts.next(),
                    ParisBuildVariant::Locked => None,
                };
                s.spawn(move || {
                    let mut part = part;
                    let mut conv = SaxConverter::new(sax_config);
                    for (k, slot) in sax_slice.iter_mut().enumerate() {
                        let pos = w * per_worker + k;
                        let sax = conv.convert(dataset.series(pos));
                        *slot = sax;
                        let key = root_key(&sax, segments);
                        match &mut part {
                            Some(p) => p.push(key, pos as u32),
                            None => locked_bufs[key].lock().push(pos as u32),
                        }
                    }
                });
            }
        });
    }
    let summarize_time = t0.elapsed();

    // ---- Phase 2: index construction workers (one subtree at a time) ----
    let t1 = Instant::now();
    let locked_touched: Vec<usize>;
    let touched: &[usize] = match variant {
        ParisBuildVariant::Locked => {
            locked_touched = (0..num_keys)
                .filter(|&k| !locked_bufs[k].lock().is_empty())
                .collect();
            &locked_touched
        }
        ParisBuildVariant::NoSynch => part_bufs.touched_keys(),
    };
    let dispenser = Dispenser::new(touched.len());
    let built: Mutex<Vec<(usize, TreeArena)>> = Mutex::new(Vec::with_capacity(touched.len()));
    std::thread::scope(|s| {
        for _ in 0..num_workers {
            let touched = &touched;
            let dispenser = &dispenser;
            let built = &built;
            let locked_bufs = &locked_bufs;
            let part_bufs = &part_bufs;
            let sax_array = &sax_array;
            s.spawn(move || {
                let mut builder = SubtreeBuilder::new(segments, config.leaf_capacity);
                let mut local = Vec::new();
                while let Some(i) = dispenser.next() {
                    let key = touched[i];
                    builder.begin(node_word_for_root_key(key, segments));
                    // The indirection through the SAX array is ParIS's
                    // layout: buffers hold pointers, not summaries.
                    let mut insert_pos = |pos: u32| {
                        builder.insert(LeafEntry {
                            sax: sax_array[pos as usize],
                            pos,
                        });
                    };
                    match variant {
                        ParisBuildVariant::Locked => {
                            for &pos in locked_bufs[key].lock().iter() {
                                insert_pos(pos);
                            }
                        }
                        ParisBuildVariant::NoSynch => {
                            for &pos in part_bufs.iter_key(key) {
                                insert_pos(pos);
                            }
                        }
                    }
                    local.push((key, builder.finish()));
                }
                built.lock().extend(local);
            });
        }
    });
    let tree_time = t1.elapsed();

    let tree = MessiIndex::from_parts(dataset, config.clone(), built.into_inner());
    let stats = BuildStats {
        summarize_time,
        tree_time,
        total_time: t0.elapsed(),
        num_series: n,
        num_leaves: tree.num_leaves(),
        num_root_subtrees: tree.touched_keys().len(),
        max_height: tree.max_height(),
    };
    (ParisIndex { tree, sax_array }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_series::gen::{self, DatasetKind};

    fn build(variant: ParisBuildVariant, count: usize) -> (ParisIndex, BuildStats) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, 19));
        build_paris(data, &IndexConfig::for_tests(), variant)
    }

    #[test]
    fn paris_tree_is_structurally_valid() {
        for variant in [ParisBuildVariant::Locked, ParisBuildVariant::NoSynch] {
            let (paris, stats) = build(variant, 400);
            assert_eq!(stats.num_series, 400);
            let errors = messi_core::validate::validate(&paris.tree);
            assert!(errors.is_empty(), "{variant:?}: {errors:?}");
        }
    }

    #[test]
    fn sax_array_matches_tree_summaries() {
        let (paris, _) = build(ParisBuildVariant::Locked, 300);
        assert_eq!(paris.num_series(), 300);
        for &key in paris.tree.touched_keys() {
            paris.tree.root(key).unwrap().for_each_leaf(&mut |leaf| {
                for e in leaf.entries {
                    assert_eq!(paris.sax_array[e.pos as usize], e.sax);
                }
            });
        }
    }

    #[test]
    fn variants_build_identical_trees() {
        let (a, _) = build(ParisBuildVariant::Locked, 350);
        let (b, _) = build(ParisBuildVariant::NoSynch, 350);
        assert_eq!(a.tree.touched_keys(), b.tree.touched_keys());
        assert_eq!(a.sax_array, b.sax_array);
        // Leaf contents may be permuted (insertion order differs), but
        // per-subtree position sets must match.
        for &key in a.tree.touched_keys() {
            let collect = |t: &MessiIndex| {
                let mut v = Vec::new();
                t.root(key)
                    .unwrap()
                    .for_each_leaf(&mut |l| v.extend(l.entries.iter().map(|e| e.pos)));
                v.sort_unstable();
                v
            };
            assert_eq!(collect(&a.tree), collect(&b.tree));
        }
    }

    #[test]
    fn paris_matches_messi_tree_contents() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 500, 23));
        let config = IndexConfig::for_tests();
        let (paris, _) = build_paris(Arc::clone(&data), &config, ParisBuildVariant::Locked);
        let (messi, _) = MessiIndex::build(data, &config);
        assert_eq!(paris.tree.touched_keys(), messi.touched_keys());
        assert_eq!(paris.tree.num_leaves(), messi.num_leaves());
    }
}
