//! The in-memory ParIS index (the paper's principal competitor).
//!
//! ParIS (§II-B, Fig. 1d) uses the same iSAX tree as MESSI but differs in
//! *how* it is built and queried:
//!
//! * **Build**: bulk-loading workers operate on fixed contiguous slices
//!   of the raw array ("split to as many chunks as the workers" — no
//!   chunked load balancing), write each summary into a global **SAX
//!   array** indexed by position, and append the position into the
//!   **receiving buffer** of its root subtree, each buffer protected by a
//!   lock (the synchronization MESSI eliminates). Index-construction
//!   workers then build each subtree from its receiving buffer.
//! * **Query** ([`query`]): the SIMS strategy — an approximate answer
//!   from the tree, then a full scan computing the lower bound of *every*
//!   series in the SAX array, collecting unpruned candidates, then
//!   parallel real distances over the candidate list. "ParIS uses the
//!   index tree only for computing this approximate answer."
//! * **ParIS-TS** ([`ts`]): the tree-based exact-search extension.

pub mod build;
pub mod query;
pub mod ts;

use messi_core::node::TreeArena;
use messi_core::{IndexConfig, MessiIndex};
use messi_sax::word::SaxWord;
use messi_series::Dataset;
use std::sync::Arc;

pub use build::{build_paris, ParisBuildVariant};

/// The in-memory ParIS index: MESSI's tree structure plus the global SAX
/// array that SIMS query answering scans.
#[derive(Debug)]
pub struct ParisIndex {
    /// The iSAX tree (same node types as MESSI; assembled by ParIS's own
    /// build algorithm).
    pub tree: MessiIndex,
    /// Full-cardinality summary of every series, indexed by position —
    /// the "SAX array" ParIS's lower-bound workers scan.
    pub sax_array: Vec<SaxWord>,
}

impl ParisIndex {
    /// Builds an in-memory ParIS index (see [`build::build_paris`]).
    pub fn build(dataset: Arc<Dataset>, config: &IndexConfig) -> (Self, messi_core::BuildStats) {
        build::build_paris(dataset, config, ParisBuildVariant::Locked)
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        self.tree.dataset()
    }

    /// Number of indexed series.
    pub fn num_series(&self) -> usize {
        self.sax_array.len()
    }

    /// The subtree arena for a root key, if any (used by ParIS-TS).
    pub fn root(&self, key: usize) -> Option<&TreeArena> {
        self.tree.root(key)
    }
}
