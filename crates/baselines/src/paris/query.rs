//! ParIS query answering: the parallel SIMS strategy.
//!
//! "It first computes an approximate answer … Then, a number of lower
//! bound calculation workers compute the lower bound distances between
//! the query and the iSAX summary of each data series in the dataset,
//! which are stored in the SAX array, and prune the series whose lower
//! bound distance is larger than the approximate real distance computed
//! earlier. The data series that are not pruned are stored in a candidate
//! list … Subsequently, a number of real distance calculation workers
//! operate on different parts of this array to compute the real
//! distances" (§II-B).
//!
//! The contrast with MESSI this baseline exists to demonstrate: the
//! lower-bound phase performs **one mindist per series in the
//! collection** — no tree pruning — and the pruning bound stays frozen at
//! the approximate answer during that phase (Fig. 17a: ParIS's
//! lower-bound count equals the collection size; Fig. 17b: its candidate
//! list is much longer than MESSI's).

use super::ParisIndex;
use messi_core::{QueryAnswer, QueryConfig, QueryStats};
use messi_sax::mindist::{mindist_sq_leaf_scalar, MindistTable};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_sync::{AtomicBsf, BestSoFar};
use parking_lot::Mutex;
use std::time::Instant;

/// Exact 1-NN search with the ParIS (SIMS) strategy.
///
/// `config.num_workers` controls both the lower-bound and the
/// real-distance worker pools (run one after the other, as in ParIS);
/// `config.num_queues` is ignored (ParIS has no priority queues);
/// `config.kernel` selects SIMD vs SISD (Fig. 18's ParIS vs ParIS-SISD).
///
/// # Panics
///
/// Panics if the query length differs from the indexed series length.
pub fn sims_search(
    paris: &ParisIndex,
    query: &[f32],
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    let t_start = Instant::now();
    let n = paris.num_series();
    let num_workers = config.num_workers;
    let use_simd = config.kernel.uses_simd();

    // Stage 1: approximate answer from the tree.
    let (query_sax, query_paa) = paris.tree.summarize_query(query);
    let (d0, p0) = paris
        .tree
        .seed_approximate(query, &query_sax, &query_paa, config.kernel);
    let bsf = AtomicBsf::with_initial(d0, p0);
    let table = MindistTable::new(&query_paa, paris.tree.sax_config());

    // Stage 2: lower-bound workers scan the whole SAX array against the
    // *initial* BSF, building the candidate list.
    let candidates: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let per_worker = n.div_ceil(num_workers).max(1);
    let sax_array = &paris.sax_array;
    let scales = paris.tree.scales();
    messi_sync::WorkerPool::global().run(num_workers, &|w| {
        let start = w * per_worker;
        let end = usize::min(start + per_worker, n);
        if start >= end {
            return;
        }
        let mut local = Vec::new();
        for (off, sax) in sax_array[start..end].iter().enumerate() {
            let lb = if use_simd {
                table.mindist_sq(sax)
            } else {
                mindist_sq_leaf_scalar(&query_paa, scales, sax)
            };
            if lb < d0 {
                local.push((start + off) as u32);
            }
        }
        candidates.lock().extend(local);
    });
    let candidates = candidates.into_inner();

    // Stage 3: real-distance workers over the candidate list.
    let num_candidates = candidates.len();
    let per_worker = num_candidates.div_ceil(num_workers).max(1);
    let dataset = paris.dataset();
    messi_sync::WorkerPool::global().run(num_workers, &|w| {
        let start = w * per_worker;
        let end = usize::min(start + per_worker, num_candidates);
        if start >= end {
            return;
        }
        for &pos in &candidates[start..end] {
            let bound = bsf.load();
            let d =
                ed_sq_early_abandon_with(config.kernel, query, dataset.series(pos as usize), bound);
            if d < bound {
                bsf.update_min(d, pos);
            }
        }
    });

    let (dist_sq, pos) = bsf.load_with_pos();
    let stats = QueryStats {
        // ParIS computes a lower bound for every series in the collection.
        lb_distance_calcs: n as u64,
        real_distance_calcs: num_candidates as u64,
        total_time: t_start.elapsed(),
        ..QueryStats::default()
    };
    (
        QueryAnswer {
            pos: u64::from(pos),
            dist_sq,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paris::build::{build_paris, ParisBuildVariant};
    use messi_core::IndexConfig;
    use messi_series::distance::Kernel;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn build(count: usize, seed: u64) -> ParisIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        build_paris(data, &IndexConfig::for_tests(), ParisBuildVariant::Locked).0
    }

    #[test]
    fn sims_matches_brute_force() {
        let paris = build(500, 41);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 41);
        for q in queries.iter() {
            let (ans, stats) = sims_search(&paris, q, &QueryConfig::for_tests());
            let (_, bf_dist) = paris.dataset().nearest_neighbor_brute_force(q);
            assert!(
                (ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                "{} vs {bf_dist}",
                ans.dist_sq
            );
            assert_eq!(stats.lb_distance_calcs, 500, "SIMS scans every summary");
        }
    }

    #[test]
    fn sisd_kernel_gives_same_answers() {
        let paris = build(300, 42);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 42);
        for q in queries.iter() {
            let (simd, _) = sims_search(&paris, q, &QueryConfig::for_tests());
            let (sisd, _) = sims_search(
                &paris,
                q,
                &QueryConfig {
                    kernel: Kernel::Scalar,
                    ..QueryConfig::for_tests()
                },
            );
            assert!((simd.dist_sq - sisd.dist_sq).abs() <= 1e-3 * simd.dist_sq.max(1.0));
        }
    }

    #[test]
    fn works_with_single_worker() {
        let paris = build(200, 43);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 43);
        let config = QueryConfig {
            num_workers: 1,
            ..QueryConfig::for_tests()
        };
        for q in queries.iter() {
            let (ans, _) = sims_search(&paris, q, &config);
            let (_, bf) = paris.dataset().nearest_neighbor_brute_force(q);
            assert!((ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
        }
    }

    #[test]
    fn member_query_distance_zero() {
        let paris = build(150, 44);
        let q = paris.dataset().series(42).to_vec();
        let (ans, _) = sims_search(&paris, &q, &QueryConfig::for_tests());
        assert_eq!(ans.dist_sq, 0.0);
    }
}
