//! ParIS-TS: the parallel "traditional tree-based exact search".
//!
//! §IV-A: "this algorithm traverses the tree, and concurrently (1)
//! inserts in the priority queue the nodes (inner nodes or leaves) that
//! cannot be pruned based on the lower bound distance, and (2) pops from
//! the queues nodes for which it calculates the real distances to the
//! candidate series". The paper built it to show that "a straight-forward
//! implementation of tree-based exact search leads to sub-optimal
//! performance".
//!
//! The three deliberate differences from MESSI (listed in §IV-A) are all
//! present here:
//!
//! * no separate lower-bound pass — insertion and real-distance work
//!   interleave freely;
//! * *inner nodes* enter the queue too (expanded when popped), not just
//!   leaves — so the single queue is much larger and hotter;
//! * no second filtering: a popped node is only discarded if its bound
//!   exceeds the BSF at pop time, but the search cannot stop at the first
//!   such pop, because concurrent expansion may still insert closer nodes
//!   (termination needs the pending-work counter instead).

use super::ParisIndex;
use messi_core::node::{NodeId, TreeArena};
use messi_core::{QueryAnswer, QueryConfig, QueryStats};
use messi_sax::mindist::{mindist_sq_leaf_scalar, mindist_sq_node, MindistTable};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_sync::{AtomicBsf, BestSoFar, ConcurrentMinQueue, Dispenser};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Exact 1-NN search with the ParIS-TS strategy (single shared queue of
/// inner nodes and leaves, concurrent insert/pop).
///
/// # Panics
///
/// Panics if the query length differs from the indexed series length.
pub fn ts_search(
    paris: &ParisIndex,
    query: &[f32],
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    let t_start = Instant::now();
    let use_simd = config.kernel.uses_simd();

    let (query_sax, query_paa) = paris.tree.summarize_query(query);
    let (d0, p0) = paris
        .tree
        .seed_approximate(query, &query_sax, &query_paa, config.kernel);
    let bsf = AtomicBsf::with_initial(d0, p0);
    let table = MindistTable::new(&query_paa, paris.tree.sax_config());

    let queue: ConcurrentMinQueue<(&TreeArena, NodeId)> = ConcurrentMinQueue::new();
    // Nodes inserted but not yet fully processed; termination requires
    // empty queue *and* zero pending (a popped inner node may still push).
    let pending = AtomicUsize::new(0);
    let dispenser = Dispenser::new(paris.tree.arenas().len());
    let stats = messi_core::stats::SharedQueryStats::new();

    messi_sync::WorkerPool::global().run(config.num_workers, &|_pid| {
        let queue = &queue;
        let pending = &pending;
        let dispenser = &dispenser;
        let bsf = &bsf;
        let table = &table;
        let query_paa = &query_paa;
        let scales = paris.tree.scales();
        let mut local = messi_core::stats::LocalStats::default();
        // Seed: push each arena root once (a forest arena covers several
        // touched keys; pushing per key would enqueue it repeatedly).
        while let Some(i) = dispenser.next() {
            let arena = &paris.tree.arenas()[i];
            let d = mindist_sq_node(query_paa, scales, arena.word(TreeArena::ROOT));
            local.lb += 1;
            if d < bsf.load() {
                pending.fetch_add(1, Ordering::AcqRel);
                queue.push(d, (arena, TreeArena::ROOT));
                local.inserted += 1;
            }
        }
        // Drain: pop, expand or scan, until globally quiescent.
        loop {
            match queue.pop_min() {
                Some((d, (arena, id))) => {
                    local.popped += 1;
                    if d < bsf.load() {
                        if !arena.is_leaf(id) {
                            let (left, right) = arena.children(id);
                            for child in [left, right] {
                                let cd = mindist_sq_node(query_paa, scales, arena.word(child));
                                local.lb += 1;
                                if cd < bsf.load() {
                                    pending.fetch_add(1, Ordering::AcqRel);
                                    queue.push(cd, (arena, child));
                                    local.inserted += 1;
                                }
                            }
                        } else {
                            for e in arena.leaf_entries(id) {
                                local.lb += 1;
                                let bound = bsf.load();
                                let lb = if use_simd {
                                    table.mindist_sq(&e.sax)
                                } else {
                                    mindist_sq_leaf_scalar(query_paa, scales, &e.sax)
                                };
                                if lb >= bound {
                                    continue;
                                }
                                local.real += 1;
                                let dist = ed_sq_early_abandon_with(
                                    config.kernel,
                                    query,
                                    paris.dataset().series(e.pos as usize),
                                    bound,
                                );
                                if dist < bound && bsf.update_min(dist, e.pos) {
                                    local.bsf_updates += 1;
                                }
                            }
                        }
                    } else {
                        local.filtered += 1;
                    }
                    pending.fetch_sub(1, Ordering::AcqRel);
                }
                None => {
                    if pending.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        }
        local.flush(&stats);
    });

    let (dist_sq, pos) = bsf.load_with_pos();
    let stats = stats.finish(t_start.elapsed(), 0, config.num_workers as u64, false);
    (
        QueryAnswer {
            pos: u64::from(pos),
            dist_sq,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paris::build::{build_paris, ParisBuildVariant};
    use messi_core::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn build(count: usize, seed: u64) -> ParisIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        build_paris(data, &IndexConfig::for_tests(), ParisBuildVariant::Locked).0
    }

    #[test]
    fn ts_matches_brute_force() {
        let paris = build(500, 51);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 51);
        for q in queries.iter() {
            let (ans, _) = ts_search(&paris, q, &QueryConfig::for_tests());
            let (_, bf_dist) = paris.dataset().nearest_neighbor_brute_force(q);
            assert!(
                (ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                "{} vs {bf_dist}",
                ans.dist_sq
            );
        }
    }

    #[test]
    fn ts_exact_across_worker_counts() {
        let paris = build(400, 52);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 52);
        for workers in [1usize, 2, 8, 16] {
            let config = QueryConfig {
                num_workers: workers,
                ..QueryConfig::for_tests()
            };
            for q in queries.iter() {
                let (ans, _) = ts_search(&paris, q, &config);
                let (_, bf) = paris.dataset().nearest_neighbor_brute_force(q);
                assert!(
                    (ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0),
                    "w={workers}"
                );
            }
        }
    }

    #[test]
    fn ts_pops_everything_it_inserts() {
        // The distinguishing queue discipline: ParIS-TS pops every node it
        // ever inserts (no give-up protocol), whereas MESSI abandons queue
        // remainders once the popped minimum exceeds the BSF.
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 800, 53));
        let config = IndexConfig {
            leaf_capacity: 8, // force deep trees
            ..IndexConfig::for_tests()
        };
        let (paris, _) = build_paris(data, &config, ParisBuildVariant::Locked);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 53);
        for q in queries.iter() {
            let (_, ts_stats) = ts_search(&paris, q, &QueryConfig::for_tests());
            assert_eq!(
                ts_stats.nodes_popped, ts_stats.nodes_inserted,
                "ParIS-TS must pop exactly what it inserts"
            );
            let (_, messi_stats) = paris.tree.search(q, &messi_core::QueryConfig::for_tests());
            assert!(
                messi_stats.nodes_popped <= messi_stats.nodes_inserted,
                "MESSI may abandon queue remainders, never invent pops"
            );
        }
    }
}
