//! UCR Suite scans: the optimized serial scan and its parallel version.
//!
//! **UCR Suite-P** (§IV-A): "every thread is assigned a part of the
//! in-memory data series array, and all threads concurrently and
//! independently process their own parts, performing the real distance
//! calculations in SIMD, and only synchronize at the end to produce the
//! final result." No index, no lower bounds over summaries — each thread
//! runs an early-abandoning distance scan against its own thread-local
//! best (synchronizing per series would defeat "independently").
//!
//! The DTW variants add the standard UCR cascade per candidate:
//! LB_Keogh on the raw series (early-abandoned), then full banded DTW
//! (early-abandoned). The *serial* DTW scan is the Fig. 19 reference that
//! MESSI-DTW beats by >3 orders of magnitude.

use messi_core::{QueryAnswer, QueryConfig, QueryStats};
use messi_series::distance::dtw::{dtw_sq_early_abandon, DtwParams};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::distance::lb_keogh::{lb_keogh_sq_early_abandon, Envelope};
use messi_series::distance::Kernel;
use messi_series::Dataset;
use parking_lot::Mutex;
use std::time::Instant;

/// Serial UCR-style scan (ED): early-abandoning squared Euclidean
/// distance over every series.
pub fn ucr_serial(dataset: &Dataset, query: &[f32], kernel: Kernel) -> (QueryAnswer, QueryStats) {
    let t_start = Instant::now();
    let mut best = (f32::INFINITY, u32::MAX);
    for (pos, s) in dataset.iter().enumerate() {
        let d = ed_sq_early_abandon_with(kernel, query, s, best.0);
        if d < best.0 {
            best = (d, pos as u32);
        }
    }
    answer(best, dataset.len() as u64, t_start)
}

/// UCR Suite-P (ED): the paper's parallel serial-scan competitor.
///
/// # Panics
///
/// Panics if the query length differs from the dataset's series length or
/// the configuration is invalid.
pub fn ucr_parallel(
    dataset: &Dataset,
    query: &[f32],
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    assert_eq!(query.len(), dataset.series_len(), "query length mismatch");
    let t_start = Instant::now();
    let n = dataset.len();
    let per_worker = n.div_ceil(config.num_workers).max(1);
    let results: Mutex<Vec<(f32, u32)>> = Mutex::new(Vec::with_capacity(config.num_workers));
    std::thread::scope(|s| {
        for w in 0..config.num_workers {
            let results = &results;
            s.spawn(move || {
                let start = w * per_worker;
                let end = usize::min(start + per_worker, n);
                if start >= end {
                    return;
                }
                // Thread-local best: threads "only synchronize at the end".
                let mut best = (f32::INFINITY, u32::MAX);
                for pos in start..end {
                    let d =
                        ed_sq_early_abandon_with(config.kernel, query, dataset.series(pos), best.0);
                    if d < best.0 {
                        best = (d, pos as u32);
                    }
                }
                results.lock().push(best);
            });
        }
    });
    let best = merge(results.into_inner());
    answer(best, n as u64, t_start)
}

/// Serial UCR Suite DTW scan: LB_Keogh cascade + early-abandoning banded
/// DTW over every series (the non-parallel Fig. 19 reference).
pub fn ucr_serial_dtw(
    dataset: &Dataset,
    query: &[f32],
    params: DtwParams,
) -> (QueryAnswer, QueryStats) {
    let t_start = Instant::now();
    let env = Envelope::new(query, params);
    let mut real_calcs = 0u64;
    let mut best = (f32::INFINITY, u32::MAX);
    for (pos, s) in dataset.iter().enumerate() {
        if lb_keogh_sq_early_abandon(&env, s, best.0) >= best.0 {
            continue;
        }
        real_calcs += 1;
        let d = dtw_sq_early_abandon(query, s, params, best.0);
        if d < best.0 {
            best = (d, pos as u32);
        }
    }
    let (ans, mut stats) = answer(best, dataset.len() as u64, t_start);
    stats.real_distance_calcs = real_calcs;
    (ans, stats)
}

/// UCR Suite-P DTW: the parallel DTW scan of Fig. 19.
///
/// # Panics
///
/// Panics on query-length mismatch or invalid configuration.
pub fn ucr_parallel_dtw(
    dataset: &Dataset,
    query: &[f32],
    params: DtwParams,
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    assert_eq!(query.len(), dataset.series_len(), "query length mismatch");
    let t_start = Instant::now();
    let env = Envelope::new(query, params);
    let n = dataset.len();
    let per_worker = n.div_ceil(config.num_workers).max(1);
    let results: Mutex<Vec<((f32, u32), u64)>> = Mutex::new(Vec::with_capacity(config.num_workers));
    std::thread::scope(|s| {
        for w in 0..config.num_workers {
            let results = &results;
            let env = &env;
            s.spawn(move || {
                let start = w * per_worker;
                let end = usize::min(start + per_worker, n);
                if start >= end {
                    return;
                }
                let mut best = (f32::INFINITY, u32::MAX);
                let mut real_calcs = 0u64;
                for pos in start..end {
                    let s = dataset.series(pos);
                    if lb_keogh_sq_early_abandon(env, s, best.0) >= best.0 {
                        continue;
                    }
                    real_calcs += 1;
                    let d = dtw_sq_early_abandon(query, s, params, best.0);
                    if d < best.0 {
                        best = (d, pos as u32);
                    }
                }
                results.lock().push((best, real_calcs));
            });
        }
    });
    let collected = results.into_inner();
    let real_calcs: u64 = collected.iter().map(|(_, c)| c).sum();
    let best = merge(collected.into_iter().map(|(b, _)| b).collect());
    let (ans, mut stats) = answer(best, n as u64, t_start);
    stats.real_distance_calcs = real_calcs;
    (ans, stats)
}

fn merge(results: Vec<(f32, u32)>) -> (f32, u32) {
    results
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .unwrap_or((f32::INFINITY, u32::MAX))
}

fn answer(best: (f32, u32), scanned: u64, t_start: Instant) -> (QueryAnswer, QueryStats) {
    (
        QueryAnswer {
            pos: u64::from(best.1),
            dist_sq: best.0,
        },
        QueryStats {
            lb_distance_calcs: 0,
            real_distance_calcs: scanned,
            total_time: t_start.elapsed(),
            ..QueryStats::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_series::distance::dtw::dtw_sq;
    use messi_series::gen::{self, DatasetKind};

    #[test]
    fn parallel_scan_matches_brute_force() {
        let data = gen::generate(DatasetKind::RandomWalk, 400, 61);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 61);
        for q in queries.iter() {
            let (ans, stats) = ucr_parallel(&data, q, &QueryConfig::for_tests());
            let (bf_pos, bf_dist) = data.nearest_neighbor_brute_force(q);
            assert!((ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0));
            assert_eq!(ans.pos as usize, bf_pos);
            assert_eq!(stats.real_distance_calcs, 400);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let data = gen::generate(DatasetKind::Seismic, 250, 62);
        let queries = gen::queries::generate_queries(DatasetKind::Seismic, 3, 62);
        for q in queries.iter() {
            let (serial, _) = ucr_serial(&data, q, Kernel::Auto);
            for workers in [1usize, 3, 9] {
                let config = QueryConfig {
                    num_workers: workers,
                    ..QueryConfig::for_tests()
                };
                let (par, _) = ucr_parallel(&data, q, &config);
                assert_eq!(par.pos, serial.pos);
                assert!((par.dist_sq - serial.dist_sq).abs() <= 1e-4 * serial.dist_sq.max(1.0));
            }
        }
    }

    #[test]
    fn dtw_scans_match_brute_force() {
        let data = gen::generate(DatasetKind::RandomWalk, 150, 63);
        let params = DtwParams::paper_default(256);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 63);
        for q in queries.iter() {
            let mut bf = (0usize, f32::INFINITY);
            for (i, s) in data.iter().enumerate() {
                let d = dtw_sq(q, s, params);
                if d < bf.1 {
                    bf = (i, d);
                }
            }
            let (serial, sstats) = ucr_serial_dtw(&data, q, params);
            assert!((serial.dist_sq - bf.1).abs() <= 1e-3 * bf.1.max(1.0));
            assert!(
                sstats.real_distance_calcs < 150,
                "LB_Keogh should prune some DTW computations"
            );
            let (par, _) = ucr_parallel_dtw(&data, q, params, &QueryConfig::for_tests());
            assert!((par.dist_sq - bf.1).abs() <= 1e-3 * bf.1.max(1.0));
        }
    }

    #[test]
    fn scalar_kernel_agrees_with_simd() {
        let data = gen::generate(DatasetKind::RandomWalk, 200, 64);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 64);
        for q in queries.iter() {
            let (simd, _) = ucr_serial(&data, q, Kernel::Auto);
            let (sisd, _) = ucr_serial(&data, q, Kernel::Scalar);
            assert_eq!(simd.pos, sisd.pos);
        }
    }

    #[test]
    fn empty_worker_ranges_are_harmless() {
        // More workers than series.
        let data = gen::generate(DatasetKind::RandomWalk, 3, 65);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 65);
        let config = QueryConfig {
            num_workers: 16,
            ..QueryConfig::for_tests()
        };
        let (ans, _) = ucr_parallel(&data, queries.series(0), &config);
        let (bf_pos, _) = data.nearest_neighbor_brute_force(queries.series(0));
        assert_eq!(ans.pos as usize, bf_pos);
    }
}
