//! Criterion benchmarks for index construction: MESSI vs ParIS (Fig. 9's
//! comparison as a micro-benchmark) and the buffer-design ablation
//! (per-worker parts vs locked receiving buffers — DESIGN.md decision 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use messi_baselines::paris::{build_paris, ParisBuildVariant};
use messi_core::{IndexConfig, MessiIndex};
use messi_series::gen::{generate, DatasetKind};
use std::sync::Arc;

const SIZES: [usize; 2] = [20_000, 50_000];

fn bench_builds(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    for &n in &SIZES {
        let data = Arc::new(generate(DatasetKind::RandomWalk, n, 7));
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("messi", n), &data, |b, data| {
            b.iter(|| MessiIndex::build(Arc::clone(data), &IndexConfig::default()))
        });
        g.bench_with_input(BenchmarkId::new("paris_locked", n), &data, |b, data| {
            b.iter(|| {
                build_paris(
                    Arc::clone(data),
                    &IndexConfig::default(),
                    ParisBuildVariant::Locked,
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("paris_no_synch", n), &data, |b, data| {
            b.iter(|| {
                build_paris(
                    Arc::clone(data),
                    &IndexConfig::default(),
                    ParisBuildVariant::NoSynch,
                )
            })
        });
    }
    g.finish();
}

/// Ablation: worker-count scaling of the MESSI build (Fig. 9's x-axis as
/// a micro-benchmark).
fn bench_worker_scaling(c: &mut Criterion) {
    let data = Arc::new(generate(DatasetKind::RandomWalk, 30_000, 8));
    let mut g = c.benchmark_group("index_build_workers");
    g.sample_size(10);
    for workers in [1usize, 4, 12, 24] {
        let config = IndexConfig {
            num_workers: workers,
            ..IndexConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &config,
            |b, config| b.iter(|| MessiIndex::build(Arc::clone(&data), config)),
        );
    }
    g.finish();
}

criterion_group!(index_build, bench_builds, bench_worker_scaling);
criterion_main!(index_build);
