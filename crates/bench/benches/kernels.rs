//! Criterion micro-benchmarks for the hot distance kernels: the SIMD vs
//! SISD comparisons underlying Fig. 18, and the per-query table trick
//! behind MESSI's lower bounds.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use messi_sax::convert::{sax_word, SaxConfig};
use messi_sax::mindist::{mindist_sq_leaf_scalar, segment_scales, MindistTable};
use messi_series::distance::dtw::{dtw_sq, dtw_sq_early_abandon, DtwParams};
use messi_series::distance::euclidean::{ed_sq_early_abandon_with, ed_sq_scalar, ed_sq_with};
use messi_series::distance::lb_keogh::{
    lb_keogh_sq, lb_keogh_sq_early_abandon_with, lb_keogh_sq_with, Envelope,
};
use messi_series::distance::Kernel;
use messi_series::gen::{generate, queries::generate_queries, DatasetKind};
use messi_series::paa::{paa, paa_into};

fn bench_euclidean(c: &mut Criterion) {
    let data = generate(DatasetKind::RandomWalk, 2, 1);
    let (a, b) = (data.series(0), data.series(1));
    let mut g = c.benchmark_group("euclidean_256");
    g.throughput(Throughput::Elements(256));
    g.bench_function("scalar", |bch| {
        bch.iter(|| ed_sq_scalar(black_box(a), black_box(b)))
    });
    g.bench_function("simd", |bch| {
        bch.iter(|| ed_sq_with(Kernel::Simd, black_box(a), black_box(b)))
    });
    let exact = ed_sq_scalar(a, b);
    g.bench_function("simd_early_abandon_tight", |bch| {
        bch.iter(|| ed_sq_early_abandon_with(Kernel::Simd, black_box(a), black_box(b), exact / 8.0))
    });
    g.bench_function("simd_early_abandon_loose", |bch| {
        bch.iter(|| ed_sq_early_abandon_with(Kernel::Simd, black_box(a), black_box(b), exact * 2.0))
    });
    g.finish();
}

fn bench_mindist(c: &mut Criterion) {
    let config = SaxConfig::new(16, 256);
    let data = generate(DatasetKind::RandomWalk, 64, 2);
    let queries = generate_queries(DatasetKind::RandomWalk, 1, 2);
    let qp = paa(queries.series(0), 16);
    let scales = segment_scales(config);
    let words: Vec<_> = data.iter().map(|s| sax_word(s, config)).collect();
    let table = MindistTable::new(&qp, config);
    let mut g = c.benchmark_group("mindist_leaf");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("branchy_scalar", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for w in &words {
                acc += mindist_sq_leaf_scalar(black_box(&qp), &scales, w);
            }
            acc
        })
    });
    g.bench_function("table_scalar", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for w in &words {
                acc += table.mindist_sq_scalar(black_box(w));
            }
            acc
        })
    });
    g.bench_function("table_simd_gather", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for w in &words {
                acc += table.mindist_sq(black_box(w));
            }
            acc
        })
    });
    // The struct-of-arrays batch: the same table swept 8 entries per
    // call over transposed symbol columns — the layout the tree leaves
    // store, so this is the engine's actual leaf-scan lower-bound path.
    let n = words.len();
    let mut cols = vec![0u8; 16 * n];
    for (j, w) in words.iter().enumerate() {
        for (s, &sym) in w.symbols().iter().enumerate() {
            cols[s * n + j] = sym;
        }
    }
    for (name, use_simd) in [("table_soa_simd", true), ("table_soa_scalar", false)] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let mut acc = 0.0f32;
                let mut out = [0.0f32; 8];
                let mut base = 0;
                while base < n {
                    let len = (n - base).min(8);
                    table.mindist_sq_soa(black_box(&cols), n, base, len, use_simd, &mut out);
                    acc += out[..len].iter().sum::<f32>();
                    base += len;
                }
                acc
            })
        });
    }
    g.finish();
    c.bench_function("mindist_table_build", |bch| {
        bch.iter(|| MindistTable::new(black_box(&qp), config))
    });
}

fn bench_paa_and_sax(c: &mut Criterion) {
    let data = generate(DatasetKind::RandomWalk, 1, 3);
    let series = data.series(0);
    let mut out = vec![0.0f32; 16];
    c.bench_function("paa_256_to_16", |bch| {
        bch.iter(|| paa_into(black_box(series), &mut out))
    });
    let config = SaxConfig::new(16, 256);
    let mut conv = messi_sax::convert::SaxConverter::new(config);
    c.bench_function("convert_to_isax_256", |bch| {
        bch.iter(|| conv.convert(black_box(series)))
    });
}

fn bench_dtw(c: &mut Criterion) {
    let data = generate(DatasetKind::RandomWalk, 2, 4);
    let (a, b) = (data.series(0), data.series(1));
    let params = DtwParams::paper_default(256);
    let mut g = c.benchmark_group("dtw_256_w25");
    g.bench_function("full", |bch| {
        bch.iter(|| dtw_sq(black_box(a), black_box(b), params))
    });
    let exact = dtw_sq(a, b, params);
    g.bench_function("early_abandon_tight", |bch| {
        bch.iter(|| dtw_sq_early_abandon(black_box(a), black_box(b), params, exact / 8.0))
    });
    g.finish();
    let env = Envelope::new(a, params);
    // LB_Keogh in its three spellings: the branchy reference formula,
    // the lane-mirrored scalar twin, and the AVX2+FMA kernel (the latter
    // two are bit-identical by construction).
    let mut lb = c.benchmark_group("lb_keogh_256");
    lb.throughput(Throughput::Elements(256));
    lb.bench_function("branchy", |bch| {
        bch.iter(|| lb_keogh_sq(black_box(&env), black_box(b)))
    });
    lb.bench_function("scalar_twin", |bch| {
        bch.iter(|| lb_keogh_sq_with(Kernel::Scalar, black_box(&env), black_box(b)))
    });
    lb.bench_function("simd", |bch| {
        bch.iter(|| lb_keogh_sq_with(Kernel::Simd, black_box(&env), black_box(b)))
    });
    let exact = lb_keogh_sq(&env, b);
    lb.bench_function("simd_early_abandon_tight", |bch| {
        bch.iter(|| {
            lb_keogh_sq_early_abandon_with(Kernel::Simd, black_box(&env), black_box(b), exact / 8.0)
        })
    });
    lb.finish();
    c.bench_function("envelope_build_256", |bch| {
        bch.iter(|| Envelope::new(black_box(a), params))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(60);
    targets = bench_euclidean, bench_mindist, bench_paa_and_sax, bench_dtw
}
criterion_main!(kernels);
