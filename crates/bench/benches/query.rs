//! Criterion benchmarks for exact query answering: the five competitors
//! of Fig. 11/18 at a fixed size, plus ablations the paper discusses in
//! prose (BSF policy, SIMD kernel, breakdown-collection overhead) and
//! the pooled executor's batch schedules (throughput vs latency).

use criterion::{criterion_group, criterion_main, Criterion};
use messi_baselines::paris::query::sims_search;
use messi_baselines::paris::ts::ts_search;
use messi_baselines::paris::{build_paris, ParisBuildVariant};
use messi_baselines::ucr;
use messi_core::exec::{QuerySpec, Schedule};
use messi_core::{BsfPolicy, IndexConfig, MessiIndex, QueryConfig};
use messi_sax::mindist::MindistTable;
use messi_series::distance::dtw::DtwParams;
use messi_series::distance::Kernel;
use messi_series::gen::{generate, queries::generate_queries, DatasetKind};
use messi_series::paa::paa;
use std::sync::Arc;

const N: usize = 50_000;

fn bench_competitors(c: &mut Criterion) {
    let data = Arc::new(generate(DatasetKind::RandomWalk, N, 9));
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    let (paris, _) = build_paris(
        Arc::clone(&data),
        &IndexConfig::default(),
        ParisBuildVariant::Locked,
    );
    let queries = generate_queries(DatasetKind::RandomWalk, 8, 9);
    let qc = QueryConfig::default();
    let sq = QueryConfig {
        num_queues: 1,
        ..QueryConfig::default()
    };
    let q = queries.series(0);

    let mut g = c.benchmark_group("query_50k");
    g.sample_size(20);
    g.bench_function("messi_mq", |b| b.iter(|| messi.search(q, &qc)));
    g.bench_function("messi_sq", |b| b.iter(|| messi.search(q, &sq)));
    g.bench_function("paris", |b| b.iter(|| sims_search(&paris, q, &qc)));
    g.bench_function("paris_ts", |b| b.iter(|| ts_search(&paris, q, &qc)));
    g.bench_function("ucr_suite_p", |b| {
        b.iter(|| ucr::ucr_parallel(&data, q, &qc))
    });
    g.finish();
}

/// Ablations: BSF policy (locked vs atomic), kernel (SIMD vs SISD), and
/// the overhead of collecting the Fig. 13 breakdown.
fn bench_ablations(c: &mut Criterion) {
    let data = Arc::new(generate(DatasetKind::RandomWalk, N, 10));
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    let queries = generate_queries(DatasetKind::RandomWalk, 4, 10);
    let q = queries.series(0);

    let mut g = c.benchmark_group("query_ablations");
    g.sample_size(20);
    for (name, config) in [
        (
            "bsf_atomic",
            QueryConfig {
                bsf: BsfPolicy::Atomic,
                ..QueryConfig::default()
            },
        ),
        (
            "bsf_locked",
            QueryConfig {
                bsf: BsfPolicy::Locked,
                ..QueryConfig::default()
            },
        ),
        (
            "kernel_simd",
            QueryConfig {
                kernel: Kernel::Simd,
                ..QueryConfig::default()
            },
        ),
        (
            "kernel_sisd",
            QueryConfig {
                kernel: Kernel::Scalar,
                ..QueryConfig::default()
            },
        ),
        (
            "breakdown_on",
            QueryConfig {
                collect_breakdown: true,
                ..QueryConfig::default()
            },
        ),
    ] {
        g.bench_function(name, |b| b.iter(|| messi.search(q, &config)));
    }
    // The same kernel ablation under DTW: with the vectorized LB_Keogh
    // and batched envelope mindist the SIMD-vs-SISD contrast is now
    // symmetric across metrics (the Fig. 18 ablation for Fig. 19's
    // cascade).
    let params = DtwParams::paper_default(data.series_len());
    for (name, kernel) in [
        ("dtw_kernel_simd", Kernel::Simd),
        ("dtw_kernel_sisd", Kernel::Scalar),
    ] {
        let config = QueryConfig {
            kernel,
            ..QueryConfig::default()
        };
        g.bench_function(name, |b| b.iter(|| messi.search_dtw(q, params, &config)));
    }
    g.finish();
}

/// Batch scheduling through the pooled executor: the paper's sequential
/// protocol (intra-query parallelism) against the throughput-oriented
/// inter-query mode, for 1-NN and k-NN batches, all from one warm
/// context pool (zero per-query scratch allocations inside the loop).
fn bench_batch_schedules(c: &mut Criterion) {
    let data = Arc::new(generate(DatasetKind::RandomWalk, N, 11));
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    let queries = generate_queries(DatasetKind::RandomWalk, 16, 11);
    let config = QueryConfig::default();
    let parallelism = config.num_workers;
    // Pool sized to the widest schedule (inter uses `parallelism`
    // contexts, intra one of them) so prewarm runs no surplus queries.
    let exec = messi_core::exec::QueryExecutor::with_capacity(&messi, parallelism);
    exec.prewarm(queries.series(0), &QuerySpec::exact(), &config);

    let mut g = c.benchmark_group("batch_16q_50k");
    g.sample_size(10);
    for (name, spec) in [("exact", QuerySpec::exact()), ("knn10", QuerySpec::knn(10))] {
        g.bench_function(format!("{name}_intra"), |b| {
            b.iter(|| exec.run_batch(&queries, &spec, Schedule::IntraQuery, &config))
        });
        g.bench_function(format!("{name}_inter"), |b| {
            b.iter(|| {
                exec.run_batch(
                    &queries,
                    &spec,
                    Schedule::InterQuery { parallelism },
                    &config,
                )
            })
        });
    }
    g.finish();
}

/// Leaf-scan-heavy workloads: the paths the arena layout (contiguous
/// preorder node records + one packed leaf-entry pool per subtree)
/// accelerates over the former `Box<Node>`-per-node / `Vec`-per-leaf
/// tree. `full_leaf_sweep` is pure storage traversal (no distance
/// math); `range_wide` keeps nearly every leaf unpruned so entry scans
/// dominate; `exact_1worker` serializes the whole queue-drain scan path
/// onto one thread. Numbers for the pre-arena boxed layout are recorded
/// in README § Benchmarks ("bench notes") for before/after comparison —
/// the boxed implementation itself was removed by the arena refactor.
fn bench_leaf_scan(c: &mut Criterion) {
    let data = Arc::new(generate(DatasetKind::RandomWalk, N, 12));
    let (messi, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
    let queries = generate_queries(DatasetKind::RandomWalk, 4, 12);
    let q = queries.series(0);
    let qc = QueryConfig::default();
    let one_worker = QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..QueryConfig::default()
    };
    let (_, nn) = data.nearest_neighbor_brute_force(q);

    let mut g = c.benchmark_group("leaf_scan_50k");
    g.sample_size(20);
    g.bench_function("full_leaf_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for arena in messi.arenas() {
                arena.for_each_leaf(&mut |l| {
                    acc += l.entries.iter().map(|e| e.pos as u64).sum::<u64>()
                });
            }
            acc
        })
    });
    g.bench_function("range_wide", |b| {
        b.iter(|| messi.search_range(q, nn * 16.0, &qc))
    });
    g.bench_function("exact_1worker", |b| b.iter(|| messi.search(q, &one_worker)));

    // SoA vs AoS lower-bound sweep: the same mindist table swept over
    // every leaf, either per entry through the interleaved AoS words or
    // 8 entries at a time through the struct-of-arrays symbol columns —
    // the isolated win of the leaf-layout transpose, without any search
    // logic around it.
    let segments = messi.sax_config().segments;
    let qp = paa(q, segments);
    let table = MindistTable::new(&qp, messi.sax_config());
    g.bench_function("mindist_sweep_aos", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for arena in messi.arenas() {
                arena.for_each_leaf(&mut |l| {
                    for e in l.entries {
                        acc += table.mindist_sq(&e.sax);
                    }
                });
            }
            acc
        })
    });
    for (name, use_simd) in [
        ("mindist_sweep_soa_simd", true),
        ("mindist_sweep_soa_scalar", false),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                let mut out = [0.0f32; 8];
                for arena in messi.arenas() {
                    arena.for_each_leaf(&mut |l| {
                        let n = l.entries.len();
                        let mut base = 0;
                        while base < n {
                            let len = (n - base).min(8);
                            table.mindist_sq_soa(
                                l.cols,
                                l.stride,
                                l.base + base,
                                len,
                                use_simd,
                                &mut out,
                            );
                            acc += out[..len].iter().sum::<f32>();
                            base += len;
                        }
                    });
                }
                acc
            })
        });
    }

    // The DTW cascade end to end, SIMD vs forced-scalar: batched SoA
    // envelope mindist + LB_Keogh + banded DTW on one worker, so the
    // kernel difference is not hidden by thread scheduling.
    let params = DtwParams::paper_default(data.series_len());
    for (name, kernel) in [
        ("dtw_1worker_simd", Kernel::Simd),
        ("dtw_1worker_sisd", Kernel::Scalar),
    ] {
        let config = QueryConfig {
            kernel,
            ..one_worker.clone()
        };
        g.bench_function(name, |b| b.iter(|| messi.search_dtw(q, params, &config)));
    }
    g.finish();
}

criterion_group!(
    query,
    bench_competitors,
    bench_ablations,
    bench_batch_schedules,
    bench_leaf_scan
);
criterion_main!(query);
