//! Criterion benchmarks for the coordination substrate: priority queues
//! (the SQ-vs-MQ contention Fig. 13 explains), dispensers, barriers, and
//! the two BSF implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use messi_sync::{
    AtomicBsf, BestSoFar, ConcurrentMinQueue, Dispenser, LockedBsf, QueueSet, SenseBarrier,
    WorkerPool,
};

fn bench_queue_ops(c: &mut Criterion) {
    c.bench_function("pq_push_pop_single_thread", |b| {
        let q = ConcurrentMinQueue::new();
        b.iter(|| {
            for i in 0..64u32 {
                q.push((i % 13) as f32, i);
            }
            while q.pop_min().is_some() {}
        })
    });

    // Contention: 24 pool workers hammering 1 queue vs 24 queues — the
    // micro version of MESSI-sq vs MESSI-mq.
    let pool = WorkerPool::global();
    let mut g = c.benchmark_group("pq_contention_24workers");
    g.sample_size(20);
    for nq in [1usize, 4, 24] {
        g.bench_with_input(BenchmarkId::from_parameter(nq), &nq, |b, &nq| {
            b.iter(|| {
                let set: QueueSet<u32> = QueueSet::new(nq);
                pool.run(24, &|pid| {
                    let mut cursor = pid % nq;
                    for i in 0..200u32 {
                        set.push_round_robin(&mut cursor, (i % 17) as f32, i);
                    }
                    let mut q = pid % nq;
                    loop {
                        while set.queue(q).pop_min().is_some() {}
                        set.queue(q).mark_finished();
                        match set.next_unfinished(q + 1) {
                            Some(n) => q = n,
                            None => break,
                        }
                    }
                });
            })
        });
    }
    g.finish();
}

fn bench_dispenser_and_barrier(c: &mut Criterion) {
    let pool = WorkerPool::global();
    c.bench_function("dispenser_1M_over_8_workers", |b| {
        b.iter(|| {
            let d = Dispenser::new(1_000_000);
            pool.run(8, &|_| while d.next().is_some() {});
        })
    });
    c.bench_function("barrier_100_episodes_8_workers", |b| {
        b.iter(|| {
            let bar = SenseBarrier::new(8);
            pool.run(8, &|_| {
                for _ in 0..100 {
                    bar.wait();
                }
            });
        })
    });
}

fn bench_bsf(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsf_load_update");
    g.bench_function("atomic", |b| {
        let bsf = AtomicBsf::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            bsf.update_min(1e9 / (i as f32 + 1.0), i);
            bsf.load()
        })
    });
    g.bench_function("locked", |b| {
        let bsf = LockedBsf::new();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            bsf.update_min(1e9 / (i as f32 + 1.0), i);
            bsf.load()
        })
    });
    g.finish();
}

criterion_group!(
    queues,
    bench_queue_ops,
    bench_dispenser_and_barrier,
    bench_bsf
);
criterion_main!(queues);
