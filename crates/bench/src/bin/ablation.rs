//! Runs the design-decision ablations the paper discusses in prose:
//! buffered vs no-buffer builds, shared vs per-worker queues, BSF policy,
//! and approximate-search seed quality.
fn main() {
    let scale = messi_bench::Scale::from_env();
    messi_bench::figures::ablations::ablation_build(&scale).emit();
    messi_bench::figures::ablations::ablation_query(&scale).emit();
    messi_bench::figures::ablations::ablation_approx_quality(&scale).emit();
}
