//! Runs every figure of the paper's evaluation in sequence, printing each
//! table and writing CSVs under `target/bench-results/`.
fn main() {
    let scale = messi_bench::Scale::from_env();
    eprintln!(
        "scale: {} series per paper-100GB, {} queries per point (override with \
         MESSI_BENCH_SERIES / MESSI_BENCH_QUERIES)\n",
        scale.series_per_100gb, scale.queries
    );
    for table in messi_bench::figures::run_all(&scale) {
        table.emit();
    }
}
