//! Regenerates Fig. 5 of the paper: index creation time vs chunk size.
fn main() {
    messi_bench::figures::build_tuning::fig05(&messi_bench::Scale::from_env()).emit();
}
