//! Regenerates Fig. 6 of the paper: index creation time vs leaf size.
fn main() {
    messi_bench::figures::build_tuning::fig06(&messi_bench::Scale::from_env()).emit();
}
