//! Regenerates Fig. 7 of the paper: query answering vs leaf size.
fn main() {
    messi_bench::figures::query_tuning::fig07(&messi_bench::Scale::from_env()).emit();
}
