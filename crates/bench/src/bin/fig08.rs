//! Regenerates Fig. 8 of the paper: index creation vs initial buffer size.
fn main() {
    messi_bench::figures::build_tuning::fig08(&messi_bench::Scale::from_env()).emit();
}
