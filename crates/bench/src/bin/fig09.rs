//! Regenerates Fig. 9 of the paper: index creation vs number of cores.
fn main() {
    messi_bench::figures::build_scaling::fig09(&messi_bench::Scale::from_env()).emit();
}
