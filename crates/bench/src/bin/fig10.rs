//! Regenerates Fig. 10 of the paper: index creation vs dataset size.
fn main() {
    messi_bench::figures::build_scaling::fig10(&messi_bench::Scale::from_env()).emit();
}
