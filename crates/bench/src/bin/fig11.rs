//! Regenerates Fig. 11 of the paper: query answering vs number of cores.
fn main() {
    messi_bench::figures::query_scaling::fig11(&messi_bench::Scale::from_env()).emit();
}
