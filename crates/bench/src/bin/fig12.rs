//! Regenerates Fig. 12 of the paper: query answering vs dataset size.
fn main() {
    messi_bench::figures::query_scaling::fig12(&messi_bench::Scale::from_env()).emit();
}
