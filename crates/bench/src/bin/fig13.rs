//! Regenerates Fig. 13 of the paper: query time breakdown, SQ vs MQ.
fn main() {
    messi_bench::figures::query_tuning::fig13(&messi_bench::Scale::from_env()).emit();
}
