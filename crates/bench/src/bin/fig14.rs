//! Regenerates Fig. 14 of the paper: query answering vs number of queues.
fn main() {
    messi_bench::figures::query_tuning::fig14(&messi_bench::Scale::from_env()).emit();
}
