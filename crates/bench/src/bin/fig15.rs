//! Regenerates Fig. 15 of the paper: index creation on real datasets.
fn main() {
    messi_bench::figures::build_scaling::fig15(&messi_bench::Scale::from_env()).emit();
}
