//! Regenerates Fig. 16 of the paper: query answering on real datasets.
fn main() {
    messi_bench::figures::query_scaling::fig16(&messi_bench::Scale::from_env()).emit();
}
