//! Regenerates Fig. 17 of the paper: lower-bound and real distance
//! calculation counts (ParIS vs MESSI).
fn main() {
    let scale = messi_bench::Scale::from_env();
    messi_bench::figures::counts::fig17a(&scale).emit();
    messi_bench::figures::counts::fig17b(&scale).emit();
}
