//! Regenerates Fig. 18 of the paper: query answering benefit breakdown.
fn main() {
    messi_bench::figures::query_scaling::fig18(&messi_bench::Scale::from_env()).emit();
}
