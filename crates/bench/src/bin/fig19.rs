//! Regenerates Fig. 19 of the paper: DTW query answering vs dataset size.
fn main() {
    messi_bench::figures::dtw::fig19(&messi_bench::Scale::from_env()).emit();
}
