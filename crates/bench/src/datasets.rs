//! Dataset construction and in-process caching for the figure binaries.
//!
//! The `all` binary runs every figure in one process; caching datasets by
//! `(kind, count)` avoids regenerating the same collection a dozen times.

use messi_series::gen::{self, DatasetKind};
use messi_series::Dataset;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Seed shared by all benchmark datasets (fixed for reproducibility).
pub const BENCH_SEED: u64 = 0xC0FFEE;

type Cache = Mutex<HashMap<(DatasetKind, usize), Arc<Dataset>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns (and caches) `count` series of `kind` at its paper length.
pub fn dataset(kind: DatasetKind, count: usize) -> Arc<Dataset> {
    if let Some(ds) = cache().lock().get(&(kind, count)) {
        return Arc::clone(ds);
    }
    let ds = Arc::new(gen::generate(kind, count, BENCH_SEED));
    cache().lock().insert((kind, count), Arc::clone(&ds));
    ds
}

/// Returns the standard query workload for `kind`, against `data`.
///
/// Matches the paper's protocol: synthetic (random-walk) queries come
/// from the generator; for the real datasets "we used as queries 100
/// series out of the datasets" — here dataset members perturbed with
/// mild noise, so a query resembles (but rarely equals) collection
/// members.
pub fn queries_for(kind: DatasetKind, data: &Dataset, count: usize) -> Dataset {
    match kind {
        DatasetKind::RandomWalk => gen::queries::generate_queries(kind, count, BENCH_SEED),
        DatasetKind::Seismic | DatasetKind::Sald => {
            gen::queries::noisy_queries_from_dataset(data, count, 0.1, BENCH_SEED)
        }
    }
}

/// Drops all cached datasets (frees memory between large figures).
pub fn clear_cache() {
    cache().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_the_same_arc() {
        clear_cache();
        let a = dataset(DatasetKind::RandomWalk, 50);
        let b = dataset(DatasetKind::RandomWalk, 50);
        assert!(Arc::ptr_eq(&a, &b));
        let c = dataset(DatasetKind::RandomWalk, 60);
        assert!(!Arc::ptr_eq(&a, &c));
        clear_cache();
    }

    #[test]
    fn queries_have_requested_shape() {
        let data = dataset(DatasetKind::Sald, 20);
        let q = queries_for(DatasetKind::Sald, &data, 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.series_len(), 128);
        let data = dataset(DatasetKind::RandomWalk, 20);
        let q = queries_for(DatasetKind::RandomWalk, &data, 3);
        assert_eq!(q.series_len(), 256);
    }
}
