//! Ablations of design decisions the paper discusses in prose (no
//! figure number): the no-buffer build (§III-A footnote 3), per-thread
//! local queues (§III-B), the locked vs lock-free BSF (§III-B observes
//! BSF synchronization is negligible), and the quality of the
//! approximate-search seed ("the initial value of BSF is very close to
//! its final value … updated only 10-12 times (on average) per query").

use crate::datasets::{dataset, queries_for};
use crate::measure_queries;
use crate::report::Table;
use crate::scale::Scale;
use messi_core::{BsfPolicy, BuildVariant, IndexConfig, MessiIndex, QueryConfig, QueuePolicy};
use messi_series::gen::DatasetKind;
use std::sync::Arc;

/// Build ablation: the paper's buffered two-phase build vs the rejected
/// direct-insert (no iSAX buffers) design.
pub fn ablation_build(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let mut table = Table::new(
        "ablation_build",
        "index construction: buffered vs no-buffers (§III-A footnote)",
        "the buffered design wins (\"no iSAX buffers … led to slower performance\")",
        &["variant", "build_time"],
    );
    // Warmup build: the first index built in a fresh process pays the
    // page faults of the just-generated dataset, which would be charged
    // to whichever variant runs first.
    let _ = MessiIndex::build(Arc::clone(&data), &scale.index_config(data.len()));
    for (name, variant) in [
        ("buffered", BuildVariant::Buffered),
        ("no_buffers", BuildVariant::NoBuffers),
    ] {
        let config = IndexConfig {
            variant,
            ..scale.index_config(data.len())
        };
        let (_, stats) = MessiIndex::build(Arc::clone(&data), &config);
        table.row(vec![name.into(), stats.total_time.into()]);
    }
    table
}

/// Query ablation: shared round-robin queues vs per-worker local queues,
/// and the atomic vs locked BSF.
pub fn ablation_query(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let (index, _) = MessiIndex::build(Arc::clone(&data), &scale.index_config(data.len()));
    let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
    let mut table = Table::new(
        "ablation_query",
        "query answering: queue and BSF design points (§III-B)",
        "shared queues beat per-worker local queues (load imbalance); \
         BSF choice is negligible",
        &["configuration", "mean_query_time"],
    );
    let configs = [
        ("shared_queues_atomic_bsf", QueryConfig::default()),
        (
            "local_queue_per_worker",
            QueryConfig {
                queue_policy: QueuePolicy::PerWorkerLocal,
                ..QueryConfig::default()
            },
        ),
        (
            "shared_queues_locked_bsf",
            QueryConfig {
                bsf: BsfPolicy::Locked,
                ..QueryConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        let (t, _) = measure_queries(&|q| index.search(q, &config), &qs, scale.warmup);
        table.row(vec![name.into(), t.into()]);
    }
    table
}

/// Approximate-search quality: how close the initial BSF is to the final
/// answer, and how often the BSF improves per query.
pub fn ablation_approx_quality(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation_approx",
        "approximate-search seed quality (§III-B's claim)",
        "initial BSF within a few percent of final; ~10-12 BSF updates per query",
        &["dataset", "mean_initial_over_final", "mean_bsf_updates"],
    );
    for kind in [
        DatasetKind::RandomWalk,
        DatasetKind::Seismic,
        DatasetKind::Sald,
    ] {
        let data = dataset(kind, scale.default_series(kind));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &scale.index_config(data.len()));
        let qs = queries_for(kind, &data, scale.queries);
        let mut ratio_sum = 0.0f64;
        let mut updates = 0u64;
        for q in qs.iter() {
            let (ans, stats) = index.search(q, &QueryConfig::default());
            // initial/final in distance terms, ≥ 1.0 by construction.
            let ratio = if ans.dist_sq > 0.0 {
                (stats.initial_bsf_dist_sq as f64 / ans.dist_sq as f64).sqrt()
            } else {
                1.0
            };
            ratio_sum += ratio;
            updates += stats.bsf_updates;
        }
        let n = qs.len() as f64;
        table.row(vec![
            kind.name().into(),
            (ratio_sum / n).into(),
            (updates as f64 / n).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_at_tiny_scale() {
        let scale = Scale::for_tests();
        for t in [
            ablation_build(&scale),
            ablation_query(&scale),
            ablation_approx_quality(&scale),
        ] {
            assert!(!t.is_empty(), "{}", t.id);
        }
        crate::datasets::clear_cache();
    }
}
