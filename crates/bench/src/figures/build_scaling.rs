//! Figures 9, 10, 15: index-construction scaling (cores, data size, real
//! datasets) — MESSI vs ParIS.

use crate::datasets::dataset;
use crate::report::Table;
use crate::scale::Scale;
use messi_baselines::paris::{build_paris, ParisBuildVariant};
use messi_core::{IndexConfig, MessiIndex};
use messi_series::gen::DatasetKind;
use std::sync::Arc;

fn config_with_workers(scale: &Scale, count: usize, workers: usize) -> IndexConfig {
    IndexConfig {
        num_workers: workers,
        ..scale.index_config(count)
    }
}

/// Fig. 9 — index creation vs number of cores, with the stacked
/// summarization/tree-construction split, ParIS vs MESSI.
///
/// Paper: "MESSI is 3.5x faster than ParIS … the performance improvement
/// that both algorithms exhibit decreases as the number of cores
/// increases; this trend is more prominent in ParIS."
pub fn fig09(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let mut table = Table::new(
        "fig09",
        "index creation vs cores, stacked phases (random, 100GB-equiv)",
        "MESSI ~3.5x faster than ParIS at 24 cores; both curves flatten, ParIS sooner",
        &[
            "cores",
            "paris_sax",
            "paris_tree",
            "paris_total",
            "messi_sax",
            "messi_tree",
            "messi_total",
        ],
    );
    for &cores in &[2usize, 4, 6, 8, 10, 12, 18, 24] {
        let config = config_with_workers(scale, data.len(), cores);
        let (_, p) = build_paris(Arc::clone(&data), &config, ParisBuildVariant::Locked);
        let (_, m) = MessiIndex::build(Arc::clone(&data), &config);
        table.row(vec![
            cores.into(),
            p.summarize_time.into(),
            p.tree_time.into(),
            p.total_time.into(),
            m.summarize_time.into(),
            m.tree_time.into(),
            m.total_time.into(),
        ]);
    }
    table
}

/// Fig. 10 — index creation vs dataset size (ParIS vs MESSI).
///
/// Paper: "MESSI performs up to 4.2x faster than ParIS (for the 200GB
/// dataset), with the improvement becoming larger with the dataset size."
pub fn fig10(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig10",
        "index creation vs dataset size (random)",
        "MESSI 3.5–4.2x faster; gap grows with size",
        &["paper_gb", "series", "paris", "messi", "speedup"],
    );
    for &gb in &[50.0f64, 100.0, 150.0, 200.0] {
        let count = scale.series_for_gb(DatasetKind::RandomWalk, gb);
        let data = dataset(DatasetKind::RandomWalk, count);
        let config = scale.index_config(count);
        let (_, p) = build_paris(Arc::clone(&data), &config, ParisBuildVariant::Locked);
        let (_, m) = MessiIndex::build(Arc::clone(&data), &config);
        let speedup = p.total_time.as_secs_f64() / m.total_time.as_secs_f64().max(1e-12);
        table.row(vec![
            (gb as u64).into(),
            count.into(),
            p.total_time.into(),
            m.total_time.into(),
            speedup.into(),
        ]);
    }
    table
}

/// Fig. 15 — index creation on the real datasets (ParIS vs MESSI).
///
/// Paper: "MESSI is 3.6x faster than ParIS on SALD and 3.7x faster than
/// ParIS on Seismic, for a 100GB dataset."
pub fn fig15(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig15",
        "index creation on real datasets (100GB-equiv)",
        "MESSI ~3.6–3.7x faster than ParIS on SALD and Seismic",
        &["dataset", "series", "paris", "messi", "speedup"],
    );
    for kind in [DatasetKind::Sald, DatasetKind::Seismic] {
        let count = scale.default_series(kind);
        let data = dataset(kind, count);
        let config = scale.index_config(count);
        let (_, p) = build_paris(Arc::clone(&data), &config, ParisBuildVariant::Locked);
        let (_, m) = MessiIndex::build(Arc::clone(&data), &config);
        let speedup = p.total_time.as_secs_f64() / m.total_time.as_secs_f64().max(1e-12);
        table.row(vec![
            kind.name().into(),
            count.into(),
            p.total_time.into(),
            m.total_time.into(),
            speedup.into(),
        ]);
    }
    table
}
