//! Figures 5, 6, 8: index-construction parameter tuning.

use crate::datasets::dataset;
use crate::report::Table;
use crate::scale::Scale;
use messi_baselines::paris::{build_paris, ParisBuildVariant};
use messi_core::{IndexConfig, MessiIndex};
use messi_series::gen::DatasetKind;
use std::sync::Arc;

/// Fig. 5 — index creation time vs chunk size (MESSI vs ParIS-no-synch).
///
/// Paper: "the required time to build the index decreases when the chunk
/// size is small and does not have any big influence in performance after
/// the value of 1K … smaller chunk sizes than 1K result in high
/// contention when accessing the fetch&increment object."
pub fn fig05(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let mut table = Table::new(
        "fig05",
        "index creation vs chunk size (random, 100GB-equiv)",
        "flat after ~1K-series chunks; tiny chunks pay Fetch&Inc contention; \
         MESSI below ParIS-no-synch at its 20K default",
        &["chunk_size", "messi", "paris_no_synch"],
    );
    // ParIS-no-synch splits the input per worker (no chunking): one value,
    // repeated as the paper's flat reference line.
    let paris_time = {
        let (_, stats) = build_paris(
            Arc::clone(&data),
            &scale.index_config(data.len()),
            ParisBuildVariant::NoSynch,
        );
        stats.total_time
    };
    for &chunk in &[
        10usize, 100, 500, 1_000, 10_000, 20_000, 50_000, 100_000, 1_000_000, 2_000_000, 4_000_000,
    ] {
        let config = IndexConfig {
            chunk_size: chunk,
            ..scale.index_config(data.len())
        };
        let (_, stats) = MessiIndex::build(Arc::clone(&data), &config);
        table.row(vec![
            chunk.into(),
            stats.total_time.into(),
            paris_time.into(),
        ]);
        if chunk >= data.len() {
            break; // larger chunks are all the single-chunk degenerate case
        }
    }
    table
}

/// Fig. 6 — index creation time vs leaf size.
///
/// Paper: "the larger the leaf size is, the faster index creation
/// becomes. However, once the leaf size becomes 5K or more, this time
/// improvement is insignificant."
pub fn fig06(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let mut table = Table::new(
        "fig06",
        "index creation vs leaf size (random, 100GB-equiv)",
        "build time falls as leaves grow; flat beyond ~5K",
        &["leaf_size", "messi"],
    );
    for &leaf in &[
        50usize, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    ] {
        let config = IndexConfig {
            leaf_capacity: leaf,
            ..scale.index_config(data.len())
        };
        let (_, stats) = MessiIndex::build(Arc::clone(&data), &config);
        table.row(vec![leaf.into(), stats.total_time.into()]);
    }
    table
}

/// Fig. 8 — index creation time vs initial iSAX buffer (part) capacity.
///
/// Paper: "smaller initial sizes for the buffers result in better
/// performance" (2^w buffers × Nw parts make eager allocation costly).
pub fn fig08(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let mut table = Table::new(
        "fig08",
        "index creation vs initial iSAX buffer size (random, 100GB-equiv)",
        "monotonically slower with larger initial allocations",
        &["initial_buffer", "messi"],
    );
    for &init in &[2usize, 5, 10, 20, 50, 100, 200, 500, 1_000] {
        let config = IndexConfig {
            initial_buffer_capacity: init,
            ..scale.index_config(data.len())
        };
        let (_, stats) = MessiIndex::build(Arc::clone(&data), &config);
        table.row(vec![init.into(), stats.total_time.into()]);
    }
    table
}
