//! Figure 17: number of lower-bound and real distance calculations,
//! ParIS vs MESSI, per dataset family.

use crate::datasets::{dataset, queries_for};
use crate::measure_queries;
use crate::report::Table;
use crate::scale::Scale;
use messi_baselines::paris::query::sims_search;
use messi_baselines::paris::{build_paris, ParisBuildVariant};
use messi_core::{MessiIndex, QueryConfig};
use messi_series::gen::DatasetKind;
use std::sync::Arc;

fn gather(scale: &Scale) -> Vec<(&'static str, f64, f64, f64, f64)> {
    let kinds = [
        DatasetKind::RandomWalk,
        DatasetKind::Seismic,
        DatasetKind::Sald,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let data = dataset(kind, scale.default_series(kind));
        let config = scale.index_config(data.len());
        let (messi, _) = MessiIndex::build(Arc::clone(&data), &config);
        let (paris, _) = build_paris(Arc::clone(&data), &config, ParisBuildVariant::Locked);
        let qs = queries_for(kind, &data, scale.queries);
        let qc = QueryConfig::default();
        let (_, paris_agg) = measure_queries(&|q| sims_search(&paris, q, &qc), &qs, 0);
        let (_, messi_agg) = measure_queries(&|q| messi.search(q, &qc), &qs, 0);
        rows.push((
            kind.name(),
            paris_agg.mean_lb_calcs(),
            messi_agg.mean_lb_calcs(),
            paris_agg.mean_real_calcs(),
            messi_agg.mean_real_calcs(),
        ));
    }
    rows
}

/// Fig. 17a — mean lower-bound distance calculations per query.
///
/// Paper: "MESSI performs no more than 15% of the lower bound distance
/// calculations performed by ParIS" (ParIS computes one per series in the
/// collection).
pub fn fig17a(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig17a",
        "lower-bound distance calculations per query (ParIS vs MESSI)",
        "MESSI ≤ 15% of ParIS on every dataset",
        &["dataset", "paris_lb", "messi_lb", "messi_over_paris_pct"],
    );
    for (name, paris_lb, messi_lb, _, _) in gather(scale) {
        table.row(vec![
            name.into(),
            paris_lb.into(),
            messi_lb.into(),
            (100.0 * messi_lb / paris_lb.max(1.0)).into(),
        ]);
    }
    table
}

/// Fig. 17b — mean real distance calculations per query.
///
/// Paper: the priority queues make the BSF converge faster, so MESSI's
/// candidate set is much smaller than ParIS's on every dataset.
pub fn fig17b(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig17b",
        "real distance calculations per query (ParIS vs MESSI)",
        "MESSI well below ParIS on every dataset",
        &[
            "dataset",
            "paris_real",
            "messi_real",
            "messi_over_paris_pct",
        ],
    );
    for (name, _, _, paris_real, messi_real) in gather(scale) {
        table.row(vec![
            name.into(),
            paris_real.into(),
            messi_real.into(),
            (100.0 * messi_real / paris_real.max(1.0)).into(),
        ]);
    }
    table
}
