//! Figure 19: exact DTW query answering vs dataset size.

use crate::datasets::{dataset, queries_for};
use crate::report::Table;
use crate::scale::Scale;
use crate::{assert_same_answer, measure_queries, QueryFn};
use messi_baselines::ucr;
use messi_core::{MessiIndex, QueryConfig};
use messi_series::distance::dtw::DtwParams;
use messi_series::gen::DatasetKind;
use std::sync::Arc;

/// Fig. 19 — MESSI query answering with the DTW distance (10% warping
/// window) vs the UCR Suite DTW scans, across dataset sizes.
///
/// Paper: "MESSI-DTW is up to 34x faster than UCR Suite-p DTW (and more
/// than 3 orders of magnitude faster than the non-parallel version of UCR
/// Suite DTW)."
pub fn fig19(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig19",
        "DTW query answering vs dataset size (random, 10% warping)",
        "MESSI-DTW ≪ UCR-P DTW ≪ serial UCR DTW at every size",
        &["paper_gb", "ucr_dtw_serial", "ucr_suite_p_dtw", "messi_dtw"],
    );
    for &gb in &[50.0f64, 100.0, 150.0, 200.0] {
        let count = scale.series_for_gb(DatasetKind::RandomWalk, gb);
        let data = dataset(DatasetKind::RandomWalk, count);
        let (index, _) = MessiIndex::build(Arc::clone(&data), &scale.index_config(count));
        let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
        let params = DtwParams::paper_default(data.series_len());
        let qc = QueryConfig::default();

        let serial: Box<QueryFn<'_>> = Box::new(|q| ucr::ucr_serial_dtw(&data, q, params));
        let parallel: Box<QueryFn<'_>> = Box::new(|q| ucr::ucr_parallel_dtw(&data, q, params, &qc));
        let messi: Box<QueryFn<'_>> =
            Box::new(|q| messi_core::dtw::exact_search_dtw(&index, q, params, &qc));

        // All three must return the same (exact) DTW nearest neighbor.
        let reference = serial(qs.series(0)).0;
        assert_same_answer(&parallel(qs.series(0)).0, &reference, "ucr_p_dtw");
        assert_same_answer(&messi(qs.series(0)).0, &reference, "messi_dtw");

        let (t_serial, _) = measure_queries(&serial, &qs, 0);
        let (t_parallel, _) = measure_queries(&parallel, &qs, scale.warmup);
        let (t_messi, _) = measure_queries(&messi, &qs, scale.warmup);
        table.row(vec![
            (gb as u64).into(),
            t_serial.into(),
            t_parallel.into(),
            t_messi.into(),
        ]);
    }
    table
}
