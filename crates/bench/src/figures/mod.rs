//! One module per evaluation figure of the paper.
//!
//! Every function takes a [`Scale`] and returns a [`Table`]; the `figNN`
//! binaries print one figure each, `all` prints every figure. The table's
//! `paper_expectation` line quotes what §IV reports, so the printed
//! output is directly comparable.

pub mod ablations;
pub mod build_scaling;
pub mod build_tuning;
pub mod counts;
pub mod dtw;
pub mod query_scaling;
pub mod query_tuning;

use crate::report::Table;
use crate::scale::Scale;

/// Runs every figure at the given scale, in paper order. The dataset
/// cache is cleared between figures with different dataset needs to bound
/// peak memory at large scales.
pub fn run_all(scale: &Scale) -> Vec<Table> {
    let runners: Vec<fn(&Scale) -> Table> = vec![
        build_tuning::fig05,
        build_tuning::fig06,
        query_tuning::fig07,
        build_tuning::fig08,
        build_scaling::fig09,
        build_scaling::fig10,
        query_scaling::fig11,
        query_scaling::fig12,
        query_tuning::fig13,
        query_tuning::fig14,
        build_scaling::fig15,
        query_scaling::fig16,
        counts::fig17a,
        counts::fig17b,
        query_scaling::fig18,
        dtw::fig19,
        ablations::ablation_build,
        ablations::ablation_query,
        ablations::ablation_approx_quality,
    ];
    let mut out = Vec::new();
    for run in runners {
        out.push(run(scale));
        crate::datasets::clear_cache();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every figure must run end to end at the test scale and produce a
    /// non-empty table. (This is the harness's own integration test; the
    /// real runs happen through the binaries.)
    #[test]
    fn every_figure_runs_at_tiny_scale() {
        let scale = Scale::for_tests();
        let tables = run_all(&scale);
        assert_eq!(tables.len(), 19);
        for t in &tables {
            assert!(!t.is_empty(), "{} produced no rows", t.id);
            // Render must not panic and must mention the figure id.
            assert!(t.render().contains(&t.id));
        }
    }
}
