//! Figures 11, 12, 16, 18: query-answering comparisons across cores,
//! dataset sizes, real datasets, and the design-benefit breakdown.

use crate::datasets::{dataset, queries_for};
use crate::report::Table;
use crate::scale::Scale;
use crate::{assert_same_answer, measure_queries, query_config, QueryFn};
use messi_baselines::paris::query::sims_search;
use messi_baselines::paris::ts::ts_search;
use messi_baselines::paris::{build_paris, ParisBuildVariant, ParisIndex};
use messi_baselines::ucr;
use messi_core::{MessiIndex, QueryConfig};
use messi_series::distance::Kernel;
use messi_series::gen::DatasetKind;
use messi_series::Dataset;
use std::sync::Arc;
use std::time::Duration;

/// Builds both indexes once for a dataset.
fn build_pair(scale: &Scale, data: &Arc<Dataset>) -> (MessiIndex, ParisIndex) {
    let config = scale.index_config(data.len());
    let (messi, _) = MessiIndex::build(Arc::clone(data), &config);
    let (paris, _) = build_paris(Arc::clone(data), &config, ParisBuildVariant::Locked);
    (messi, paris)
}

/// The five standard competitors at a given worker count, in the paper's
/// legend order.
fn competitors<'a>(
    data: &'a Dataset,
    messi: &'a MessiIndex,
    paris: &'a ParisIndex,
    workers: usize,
) -> Vec<(&'static str, Box<QueryFn<'a>>)> {
    let base = query_config(workers, 24);
    let sq = QueryConfig {
        num_queues: 1,
        ..base.clone()
    };
    let mq = base.clone();
    let pc = base.clone();
    let tc = base.clone();
    let uc = base;
    vec![
        (
            "ucr_suite_p",
            Box::new(move |q: &[f32]| ucr::ucr_parallel(data, q, &uc)) as Box<QueryFn<'a>>,
        ),
        (
            "paris",
            Box::new(move |q: &[f32]| sims_search(paris, q, &pc)),
        ),
        (
            "paris_ts",
            Box::new(move |q: &[f32]| ts_search(paris, q, &tc)),
        ),
        ("messi_sq", Box::new(move |q: &[f32]| messi.search(q, &sq))),
        ("messi_mq", Box::new(move |q: &[f32]| messi.search(q, &mq))),
    ]
}

/// Cross-checks all competitors on the first query, then measures each.
fn measure_competitors(
    algos: &[(&'static str, Box<QueryFn<'_>>)],
    qs: &Dataset,
    warmup: usize,
) -> Vec<Duration> {
    let reference = algos[0].1(qs.series(0)).0;
    for (name, f) in algos.iter().skip(1) {
        assert_same_answer(&f(qs.series(0)).0, &reference, name);
    }
    algos
        .iter()
        .map(|(_, f)| measure_queries(f, qs, warmup).0)
        .collect()
}

/// Fig. 11 — query answering vs number of cores (log-scale in the paper).
///
/// Paper: "MESSI is 55x faster than UCR Suite-P and 6.35x faster than
/// ParIS when we use 48 threads"; MESSI-mq overtakes MESSI-sq beyond 24.
pub fn fig11(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let (messi, paris) = build_pair(scale, &data);
    let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
    let mut table = Table::new(
        "fig11",
        "query answering vs cores (random, 100GB-equiv)",
        "order at 48 threads: UCR-P ≫ ParIS > ParIS-TS > MESSI-sq ≥ MESSI-mq; \
         MESSI ~6–55x faster than ParIS/UCR-P",
        &[
            "cores",
            "ucr_suite_p",
            "paris",
            "paris_ts",
            "messi_sq",
            "messi_mq",
        ],
    );
    for &cores in &[2usize, 4, 6, 8, 12, 18, 24, 48] {
        let algos = competitors(&data, &messi, &paris, cores);
        let times = measure_competitors(&algos, &qs, scale.warmup);
        table.row(vec![
            cores.into(),
            times[0].into(),
            times[1].into(),
            times[2].into(),
            times[3].into(),
            times[4].into(),
        ]);
    }
    table
}

/// Fig. 12 — query answering vs dataset size (five competitors).
///
/// Paper: "MESSI is up to 61x faster than UCR Suite-p (200GB), up to
/// 6.35x faster than ParIS (100GB), up to 7.4x faster than ParIS-TS
/// (50GB)."
pub fn fig12(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig12",
        "query answering vs dataset size (random)",
        "MESSI fastest at every size; gap to UCR-P grows with size",
        &[
            "paper_gb",
            "ucr_suite_p",
            "paris",
            "paris_ts",
            "messi_sq",
            "messi_mq",
        ],
    );
    for &gb in &[50.0f64, 100.0, 150.0, 200.0] {
        let count = scale.series_for_gb(DatasetKind::RandomWalk, gb);
        let data = dataset(DatasetKind::RandomWalk, count);
        let (messi, paris) = build_pair(scale, &data);
        let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
        let workers = QueryConfig::default().num_workers;
        let algos = competitors(&data, &messi, &paris, workers);
        let times = measure_competitors(&algos, &qs, scale.warmup);
        table.row(vec![
            (gb as u64).into(),
            times[0].into(),
            times[1].into(),
            times[2].into(),
            times[3].into(),
            times[4].into(),
        ]);
    }
    table
}

/// Fig. 16 — query answering on the real datasets (five competitors).
///
/// Paper: "for SALD, MESSI query answering is 60x faster than UCR Suite-P
/// and 8.4x faster than ParIS, whereas for Seismic, it is 80x faster than
/// UCR Suite-P, and almost 11x faster than ParIS."
pub fn fig16(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig16",
        "query answering on real datasets (100GB-equiv)",
        "same ordering as random data but smaller margins (worse pruning on real data)",
        &[
            "dataset",
            "ucr_suite_p",
            "paris",
            "paris_ts",
            "messi_sq",
            "messi_mq",
        ],
    );
    for kind in [DatasetKind::Sald, DatasetKind::Seismic] {
        let data = dataset(kind, scale.default_series(kind));
        let (messi, paris) = build_pair(scale, &data);
        let qs = queries_for(kind, &data, scale.queries);
        let workers = QueryConfig::default().num_workers;
        let algos = competitors(&data, &messi, &paris, workers);
        let times = measure_competitors(&algos, &qs, scale.warmup);
        table.row(vec![
            kind.name().into(),
            times[0].into(),
            times[1].into(),
            times[2].into(),
            times[3].into(),
            times[4].into(),
        ]);
    }
    table
}

/// Fig. 18 — the query-answering benefit breakdown: each bar adds one of
/// MESSI's design elements to the previous configuration.
///
/// Paper: SIMD makes ParIS 60% faster than ParIS-SISD; ParIS-TS ~10%
/// faster than ParIS; MESSI-mq 83% faster than ParIS-TS.
pub fn fig18(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let (messi, paris) = build_pair(scale, &data);
    let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
    let workers = QueryConfig::default().num_workers;
    let mut table = Table::new(
        "fig18",
        "query answering benefit breakdown (random, 100GB-equiv)",
        "each step faster: ParIS-SISD → ParIS → ParIS-TS → MESSI-sq → MESSI-mq",
        &["configuration", "mean_query_time"],
    );
    let sisd = QueryConfig {
        kernel: Kernel::Scalar,
        ..query_config(workers, 24)
    };
    let simd = query_config(workers, 24);
    let sq = QueryConfig {
        num_queues: 1,
        ..query_config(workers, 24)
    };
    let steps: Vec<(&'static str, Box<QueryFn<'_>>)> = vec![
        (
            "paris_sisd",
            Box::new(|q: &[f32]| sims_search(&paris, q, &sisd)) as Box<QueryFn<'_>>,
        ),
        ("paris", Box::new(|q: &[f32]| sims_search(&paris, q, &simd))),
        (
            "paris_ts",
            Box::new(|q: &[f32]| ts_search(&paris, q, &simd)),
        ),
        ("messi_sq", Box::new(|q: &[f32]| messi.search(q, &sq))),
        ("messi_mq", Box::new(|q: &[f32]| messi.search(q, &simd))),
    ];
    let times = measure_competitors(&steps, &qs, scale.warmup);
    for ((name, _), time) in steps.iter().zip(times) {
        table.row(vec![(*name).into(), time.into()]);
    }
    table
}
