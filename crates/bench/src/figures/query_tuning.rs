//! Figures 7, 13, 14: query-answering parameter tuning (leaf size, queue
//! type breakdown, queue count).

use crate::datasets::{dataset, queries_for};
use crate::report::Table;
use crate::scale::Scale;
use crate::{measure_queries, query_config};
use messi_core::{IndexConfig, MessiIndex, QueryConfig, TimeBreakdown};
use messi_series::gen::DatasetKind;
use std::sync::Arc;

/// Fig. 7 — query answering vs leaf size, MESSI-sq and MESSI-mq
/// (log-scale y in the paper).
///
/// Paper: "the time goes down as the leaf size increases, it reaches its
/// minimum value for leaf size 2K series, and then it goes up again."
pub fn fig07(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
    let mut table = Table::new(
        "fig07",
        "query answering vs leaf size (random, 100GB-equiv)",
        "U-shape with the minimum near 2K; sq and mq track each other",
        &["leaf_size", "messi_sq", "messi_mq"],
    );
    for &leaf in &[
        50usize, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    ] {
        let config = IndexConfig {
            leaf_capacity: leaf,
            ..scale.index_config(data.len())
        };
        let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
        let sq = QueryConfig {
            num_queues: 1,
            ..QueryConfig::default()
        };
        let mq = QueryConfig::default();
        let (t_sq, _) = measure_queries(&|q| index.search(q, &sq), &qs, scale.warmup);
        let (t_mq, _) = measure_queries(&|q| index.search(q, &mq), &qs, scale.warmup);
        table.row(vec![leaf.into(), t_sq.into(), t_mq.into()]);
    }
    table
}

/// Fig. 13 — query-time breakdown for MESSI-sq vs MESSI-mq: queue
/// insert/remove, distance calculation, tree pass, initialization (and
/// the percentage view).
///
/// Paper: "in MESSI-mq, the time needed to insert and remove nodes from
/// the list is significantly reduced … the time needed for the distance
/// calculations becomes the dominant factor."
pub fn fig13(scale: &Scale) -> Table {
    let data = dataset(
        DatasetKind::RandomWalk,
        scale.default_series(DatasetKind::RandomWalk),
    );
    let (index, _) = MessiIndex::build(Arc::clone(&data), &scale.index_config(data.len()));
    let qs = queries_for(DatasetKind::RandomWalk, &data, scale.queries);
    let mut table = Table::new(
        "fig13",
        "query time breakdown, MESSI-sq vs MESSI-mq",
        "mq slashes PQ insert/remove time; distance calculation dominates mq",
        &["component", "sq_time", "sq_pct", "mq_time", "mq_pct"],
    );
    let collect = |queues: usize| -> TimeBreakdown {
        let config = QueryConfig {
            num_queues: queues,
            collect_breakdown: true,
            ..QueryConfig::default()
        };
        let mut acc = TimeBreakdown::default();
        for q in qs.iter() {
            let (_, stats) = index.search(q, &config);
            let b = stats.breakdown.expect("breakdown requested");
            acc.init_ns += b.init_ns;
            acc.tree_pass_ns += b.tree_pass_ns;
            acc.pq_insert_ns += b.pq_insert_ns;
            acc.pq_remove_ns += b.pq_remove_ns;
            acc.dist_calc_ns += b.dist_calc_ns;
        }
        acc
    };
    let sq = collect(1);
    let mq = collect(QueryConfig::default().num_queues);
    type BreakdownField = fn(&TimeBreakdown) -> u64;
    let rows: [(&str, BreakdownField); 5] = [
        ("initialization", |b| b.init_ns),
        ("messi_tree_pass", |b| b.tree_pass_ns),
        ("pq_insert_node", |b| b.pq_insert_ns),
        ("pq_remove_node", |b| b.pq_remove_ns),
        ("distance_calculation", |b| b.dist_calc_ns),
    ];
    let (sq_total, mq_total) = (sq.total_ns().max(1), mq.total_ns().max(1));
    for (name, get) in rows {
        table.row(vec![
            name.into(),
            std::time::Duration::from_nanos(get(&sq) / scale.queries.max(1) as u64).into(),
            (100.0 * get(&sq) as f64 / sq_total as f64).into(),
            std::time::Duration::from_nanos(get(&mq) / scale.queries.max(1) as u64).into(),
            (100.0 * get(&mq) as f64 / mq_total as f64).into(),
        ]);
    }
    table
}

/// Fig. 14 — query answering vs number of priority queues, on all three
/// dataset families.
///
/// Paper: "as the number of priority queues increases, the time goes
/// down, and it takes its minimum value when this number becomes 24."
pub fn fig14(scale: &Scale) -> Table {
    let mut table = Table::new(
        "fig14",
        "query answering vs number of queues (SALD, Random, Seismic)",
        "decreasing in Nq, minimum around 24",
        &["queues", "sald", "random", "seismic"],
    );
    let kinds = [
        DatasetKind::Sald,
        DatasetKind::RandomWalk,
        DatasetKind::Seismic,
    ];
    let mut indexes = Vec::new();
    for kind in kinds {
        let data = dataset(kind, scale.default_series(kind));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &scale.index_config(data.len()));
        indexes.push((data, index));
    }
    for &nq in &[1usize, 2, 4, 6, 8, 12, 16, 24, 48] {
        let mut cells = vec![nq.into()];
        for (kind, (data, index)) in kinds.iter().zip(&indexes) {
            let qs = queries_for(*kind, data, scale.queries);
            let config = query_config(QueryConfig::default().num_workers, nq);
            let (t, _) = measure_queries(&|q| index.search(q, &config), &qs, scale.warmup);
            cells.push(t.into());
        }
        table.row(cells);
    }
    table
}
