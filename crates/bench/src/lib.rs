//! Reproduction harness for the MESSI paper's evaluation (§IV).
//!
//! One binary per evaluation figure (`fig05` … `fig19`, plus `all`), each
//! regenerating the same rows/series the paper plots, at a laptop-scale
//! dataset size. Absolute numbers differ from the paper's 100 GB testbed
//! by construction; the *shape* — who wins, by what factor, where the
//! knees are — is the reproduction target, and `EXPERIMENTS.md` records
//! both side by side.
//!
//! ## Scaling
//!
//! The paper's default dataset is 100 GB = 100 M series of 256 floats.
//! The harness maps "paper gigabytes" to series counts through
//! [`Scale`]: by default 100 GB ↦ 100 K series (100 MB), overridable with
//! `MESSI_BENCH_SERIES` (series per 100 paper-GB) and `MESSI_BENCH_QUERIES`
//! (queries per measurement, default 10; the paper uses 100).
//!
//! Every figure module returns a [`report::Table`] that prints aligned
//! text and writes a CSV under `target/bench-results/`.

#![warn(missing_docs)]

pub mod datasets;
pub mod figures;
pub mod report;
pub mod scale;

pub use report::Table;
pub use scale::Scale;

use messi_core::{QueryAnswer, QueryConfig, QueryStats};
use messi_series::Dataset;
use std::time::Duration;

/// A query algorithm under measurement: maps a query series to an answer
/// and its statistics.
pub type QueryFn<'a> = dyn Fn(&[f32]) -> (QueryAnswer, QueryStats) + 'a;

/// Runs `queries` through `algorithm` sequentially (the paper: "queries
/// were always run in a sequential fashion, one after the other, in order
/// to simulate an exploratory analysis scenario") and returns the mean
/// wall time per query plus accumulated stats.
pub fn measure_queries(
    algorithm: &QueryFn<'_>,
    queries: &Dataset,
    warmup: usize,
) -> (Duration, messi_core::stats::QueryStatsAggregate) {
    for q in queries.iter().take(warmup) {
        let _ = algorithm(q);
    }
    let mut agg = messi_core::stats::QueryStatsAggregate::default();
    let t = std::time::Instant::now();
    for q in queries.iter() {
        let (_, stats) = algorithm(q);
        agg.add(&stats);
    }
    let mean = t.elapsed() / queries.len().max(1) as u32;
    (mean, agg)
}

/// Sanity guard used by every figure: the algorithm's answer must equal
/// the reference algorithm's answer on the first query (all algorithms
/// are exact; a mismatch means the measurement is meaningless).
pub fn assert_same_answer(a: &QueryAnswer, b: &QueryAnswer, what: &str) {
    let tol = 1e-3 * a.dist_sq.max(1.0);
    assert!(
        (a.dist_sq - b.dist_sq).abs() <= tol,
        "{what}: exact algorithms disagree ({} vs {})",
        a.dist_sq,
        b.dist_sq
    );
}

/// A standard `QueryConfig` with the worker/queue counts used by a figure.
pub fn query_config(workers: usize, queues: usize) -> QueryConfig {
    QueryConfig {
        num_workers: workers,
        num_queues: queues,
        ..QueryConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    #[test]
    fn measure_queries_counts_all_queries() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 200, 1));
        let (index, _) =
            messi_core::MessiIndex::build(Arc::clone(&data), &messi_core::IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 1);
        let qc = query_config(2, 2);
        let (mean, agg) = measure_queries(&|q| index.search(q, &qc), &queries, 1);
        assert_eq!(agg.queries, 4);
        assert!(mean.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn answer_guard_detects_divergence() {
        let a = QueryAnswer {
            pos: 0,
            dist_sq: 1.0,
        };
        let b = QueryAnswer {
            pos: 0,
            dist_sq: 9.0,
        };
        assert_same_answer(&a, &b, "test");
    }
}
