//! Result tables: aligned text to stdout + CSV files for plotting.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// A cell value.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Free-form text.
    Text(String),
    /// Integer count.
    Int(u64),
    /// Floating-point value, 3 significant decimals.
    Float(f64),
    /// A duration, printed in adaptive units.
    Time(Duration),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.3}"),
            Cell::Time(d) => format_duration(*d),
        }
    }

    fn csv(&self) -> String {
        match self {
            Cell::Text(s) => s.replace(',', ";"),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v}"),
            Cell::Time(d) => format!("{}", d.as_secs_f64()),
        }
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}
impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}
impl From<Duration> for Cell {
    fn from(v: Duration) -> Self {
        Cell::Time(v)
    }
}

/// Adaptive duration formatting (`412µs`, `3.2ms`, `1.84s`).
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// A figure's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure id, e.g. `"fig11"` (used for the CSV filename).
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// What the paper reports for this figure (one line).
    pub paper_expectation: String,
    header: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_expectation: impl Into<String>,
        header: &[&str],
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            paper_expectation: paper_expectation.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "paper: {}", self.paper_expectation);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Prints the table and writes `target/bench-results/<id>.csv`.
    pub fn emit(&self) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv() {
            eprintln!("warning: could not write CSV for {}: {e}", self.id);
        }
    }

    /// Writes the CSV form; returns the path written.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir =
            PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
                .join("bench-results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut csv = self.header.join(",");
        csv.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Cell::csv).collect();
            csv.push_str(&line.join(","));
            csv.push('\n');
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("figX", "demo", "expectation", &["a", "bbbb"]);
        t.row(vec![1u64.into(), Duration::from_millis(3).into()]);
        t.row(vec![100u64.into(), "text".into()]);
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("expectation"));
        assert!(s.contains("3.00ms"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("f", "t", "p", &["a"]);
        t.row(vec![1u64.into(), 2u64.into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("test_csv_roundtrip", "t", "p", &["x", "y"]);
        t.row(vec![1u64.into(), 2.5f64.into()]);
        let path = t.write_csv().expect("csv written");
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "x,y\n1,2.5\n");
    }
}
