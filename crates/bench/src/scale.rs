//! Scaling between the paper's dataset sizes and bench-machine sizes.

use messi_core::IndexConfig;
use messi_series::gen::DatasetKind;

/// The paper's operating point: 100 M series under a 2^16-way root gives
/// ~1526 series per root subtree. Figures keep that occupancy when
/// scaling the dataset down (otherwise every tree is a flat forest of
/// 15-entry leaves and no algorithm behaves as published).
pub const PAPER_SUBTREE_OCCUPANCY: usize = 1500;

/// Maps "paper gigabytes" to local series counts and fixes the query
/// workload size.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Series standing in for the paper's 100 GB (100 M series) default.
    pub series_per_100gb: usize,
    /// Queries per measured point (paper: 100).
    pub queries: usize,
    /// Warmup queries before measurement.
    pub warmup: usize,
}

impl Scale {
    /// Reads the scale from the environment:
    /// `MESSI_BENCH_SERIES` (default 250 000), `MESSI_BENCH_QUERIES`
    /// (default 10), `MESSI_BENCH_WARMUP` (default 2).
    ///
    /// The recorded EXPERIMENTS.md runs use `MESSI_BENCH_SERIES=1000000`
    /// (1 GB of raw series standing in for the paper's 100 GB).
    pub fn from_env() -> Self {
        let get = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self {
            series_per_100gb: get("MESSI_BENCH_SERIES", 250_000),
            queries: get("MESSI_BENCH_QUERIES", 10),
            warmup: get("MESSI_BENCH_WARMUP", 2),
        }
    }

    /// A tiny scale for the harness's own tests.
    pub fn for_tests() -> Self {
        Self {
            series_per_100gb: 2_000,
            queries: 2,
            warmup: 0,
        }
    }

    /// Local series count standing in for `gb` paper-gigabytes of the
    /// given dataset family (SALD series are half as long, so the paper
    /// packs twice as many per GB).
    pub fn series_for_gb(&self, kind: DatasetKind, gb: f64) -> usize {
        let base = match kind {
            DatasetKind::Sald => self.series_per_100gb * 2,
            _ => self.series_per_100gb,
        };
        ((gb / 100.0) * base as f64).round().max(1.0) as usize
    }

    /// The default ("100 GB") dataset size for a family.
    pub fn default_series(&self, kind: DatasetKind) -> usize {
        self.series_for_gb(kind, 100.0)
    }

    /// Segment count that keeps the paper's root-subtree occupancy
    /// (~[`PAPER_SUBTREE_OCCUPANCY`] series per subtree) at dataset size
    /// `count`. The paper's 100 M-series default maps to its fixed w=16.
    pub fn segments_for(count: usize) -> usize {
        let mut w = 4usize;
        while w < 16 && (count >> w) > PAPER_SUBTREE_OCCUPANCY {
            w += 1;
        }
        w
    }

    /// The `IndexConfig` a figure should build with at dataset size
    /// `count`: paper defaults with occupancy-preserving segments.
    pub fn index_config(&self, count: usize) -> IndexConfig {
        IndexConfig {
            segments: Self::segments_for(count),
            ..IndexConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gb_mapping_is_linear_and_family_aware() {
        let s = Scale {
            series_per_100gb: 1000,
            queries: 1,
            warmup: 0,
        };
        assert_eq!(s.series_for_gb(DatasetKind::RandomWalk, 100.0), 1000);
        assert_eq!(s.series_for_gb(DatasetKind::RandomWalk, 50.0), 500);
        assert_eq!(s.series_for_gb(DatasetKind::RandomWalk, 200.0), 2000);
        // SALD: length 128 ⇒ twice the series per GB.
        assert_eq!(s.series_for_gb(DatasetKind::Sald, 100.0), 2000);
        assert_eq!(s.default_series(DatasetKind::Seismic), 1000);
    }

    #[test]
    fn env_defaults() {
        let s = Scale::from_env();
        assert!(s.series_per_100gb > 0);
        assert!(s.queries > 0);
    }

    #[test]
    fn segments_preserve_paper_occupancy() {
        // The paper's own scale maps back to its fixed w = 16.
        assert_eq!(Scale::segments_for(100_000_000), 16);
        // Scaled-down defaults keep ~750..1500 series per subtree.
        for count in [10_000usize, 100_000, 1_000_000, 4_000_000] {
            let w = Scale::segments_for(count);
            let occupancy = count >> w;
            assert!(occupancy <= 1500, "count={count}: {occupancy}");
            assert!((4..=16).contains(&w));
        }
        // Tiny datasets floor at w = 4.
        assert_eq!(Scale::segments_for(100), 4);
    }
}
