//! Approximate 1-NN search with error bounds (ng- and δ-ε-approximate).
//!
//! The journal version of the paper (*Fast Data Series Indexing for
//! In-Memory Data*, VLDBJ) presents approximate search not as a new
//! algorithm but as the same traversal skeleton with a relaxed contract,
//! and that is exactly how it is implemented here: a fourth
//! `SearchObjective` over the unified [`crate::engine`] driver.
//!
//! * **ng-approximate** (`delta = 0`, "no guarantees"): the answer is the
//!   best series of the query's *home leaf* — the leaf its iSAX summary
//!   descends to. This is the operation exact search uses to seed its
//!   BSF (Fig. 4a), promoted to a query mode; the engine never runs.
//! * **δ-ε-approximate** (`0 < delta <= 1`): the full traversal runs, but
//!   pruning uses the inflated bound `bsf/(1+ε)²` (all internal values
//!   are *squared* distances) — any pruned candidate has true squared
//!   distance at least `bsf_final/(1+ε)²`, i.e. true distance at least
//!   `dist(bsf_final)/(1+ε)`, so on completion the answer is within
//!   `(1+ε)` of the true nearest neighbor *in distance terms* — and, for
//!   `delta < 1`, queue processing stops once a
//!   δ-derived leaf-visit budget (`ceil(delta · total leaves)`) is spent.
//!   Each queue is drained best-bound-first, so the budget goes to the
//!   most promising leaves (exactly so with one queue; approximately
//!   under the default multi-queue configuration, where workers hop
//!   between queues in randomized order) and the guarantee holds with
//!   probability calibrated by δ (measured and asserted by
//!   `tests/approximate.rs`).
//!   At `delta = 1` there is no budget and the `(1+ε)` bound is
//!   deterministic; at `epsilon = 0` *and* `delta = 1` every comparison
//!   is bit-identical to exact search.
//!
//! Both metrics compose: Euclidean ([`approx_search`]) and banded DTW
//! ([`approx_search_dtw`]) share every line of driver code, exactly like
//! the exact objectives.

use crate::config::QueryConfig;
use crate::engine::ShardSlot;
use crate::engine::{
    self, ApproxObjective, DtwMetric, Engine, EuclideanMetric, QueryContext, TableSpec,
};
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::shard::global_pos;
use crate::stats::{QueryStats, SharedQueryStats, StopReason, TimeBreakdown};
use messi_series::distance::dtw::DtwParams;
use messi_series::distance::lb_keogh::Envelope;
use messi_series::paa::paa;
use std::time::Instant;

/// Validates the δ-ε parameter pair.
///
/// # Panics
///
/// Panics if `epsilon` is negative or non-finite, or `delta` is NaN or
/// outside `[0, 1]`.
pub(crate) fn validate_params(epsilon: f32, delta: f32) {
    assert!(
        epsilon >= 0.0 && epsilon.is_finite(),
        "epsilon must be a finite non-negative number"
    );
    assert!((0.0..=1.0).contains(&delta), "delta must be within [0, 1]");
}

/// The queue-phase leaf-visit budget for `delta`: `None` (unlimited) at
/// `delta = 1`, else `ceil(delta · total leaves)`. Each leaf enters the
/// queues at most once, so an unlimited budget can never terminate a
/// query early. Under sharding each shard derives its budget from its
/// *own* leaf count, so the δ fraction of visited leaves is preserved
/// collection-wide.
fn budget_for(index: &MessiIndex, delta: f32) -> Option<u64> {
    if delta >= 1.0 {
        None
    } else {
        Some((delta as f64 * index.num_leaves() as f64).ceil() as u64)
    }
}

/// The ng-approximate short circuit (`delta = 0`): the home-leaf seed
/// *is* the answer. Assembles the stats for a query whose whole life was
/// its initialization phase.
fn ng_answer(
    dist_sq: f32,
    pos: u64,
    t_start: Instant,
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    let total_time = t_start.elapsed();
    let stats = QueryStats {
        total_time,
        initial_bsf_dist_sq: dist_sq,
        stop_reason: Some(StopReason::HomeLeafOnly),
        breakdown: config.collect_breakdown.then(|| TimeBreakdown {
            init_ns: total_time.as_nanos() as u64,
            ..TimeBreakdown::default()
        }),
        ..QueryStats::default()
    };
    (QueryAnswer { pos, dist_sq }, stats)
}

/// δ-ε-approximate 1-NN search under Euclidean distance.
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 5));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 5);
///
/// // ε = 0.1, δ = 1: deterministically within 1.1× of the true NN.
/// let (approx, _) = messi_core::approximate::approx_search(
///     &index, queries.series(0), 0.1, 1.0, &QueryConfig::for_tests());
/// let (_, true_nn) = data.nearest_neighbor_brute_force(queries.series(0));
/// assert!(approx.dist_sq <= 1.1 * 1.1 * true_nn * (1.0 + 1e-3));
/// ```
///
/// # Panics
///
/// Panics if `epsilon` is negative or non-finite, `delta` is outside
/// `[0, 1]`, the query length mismatches, or the configuration is
/// invalid.
pub fn approx_search(
    index: &MessiIndex,
    query: &[f32],
    epsilon: f32,
    delta: f32,
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    approx_search_with(
        index,
        query,
        epsilon,
        delta,
        config,
        &mut QueryContext::new(),
    )
}

/// [`approx_search`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`approx_search`].
pub fn approx_search_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon: f32,
    delta: f32,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (QueryAnswer, QueryStats) {
    approx_search_sharded(index, query, epsilon, delta, config, ctx, ShardSlot::solo())
}

/// [`approx_search_with`] as one shard of a sharded scatter: positions
/// are globalized through `slot.offset`, and the ε-inflated pruning
/// bound composes with the cross-shard BSF when `slot.shared` is set
/// (the shared bound holds raw distances; inflation is applied at read
/// time). In ng mode (`delta = 0`) every shard scans its *own* home
/// leaf and the gather step keeps the best — a (free) strengthening of
/// the single-index ng answer. [`ShardSlot::solo`] *is* the
/// single-index search, byte for byte.
#[allow(clippy::too_many_arguments)]
pub(crate) fn approx_search_sharded<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon: f32,
    delta: f32,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    slot: ShardSlot<'_>,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    validate_params(epsilon, delta);
    let t_start = Instant::now();

    // Seed from the home leaf — for ng mode this is the whole query.
    let (query_sax, query_paa) = index.summarize_query(query);
    if delta == 0.0 {
        let entries = index.home_leaf_entries(&query_sax, &query_paa);
        let (d0, p0) = index.scan_entries_ed(entries, query, config.kernel);
        let mut out = ng_answer(d0, global_pos(slot.offset, p0), t_start, config);
        // The mode's entire work is the leaf scan: one early-abandoning
        // real distance per entry — report it, matching the DTW ng path
        // (exact search deliberately leaves its seed scan uncounted, so
        // this stays out of `seed_approximate` itself).
        out.1.real_distance_calcs = entries.len() as u64;
        return out;
    }
    let (d0, p0) = index.seed_approximate(query, &query_sax, &query_paa, config.kernel);
    if let Some(shared) = slot.shared {
        shared.update_min(d0);
    }

    let objective = ApproxObjective::new(
        config.bsf,
        d0,
        p0,
        epsilon,
        budget_for(index, delta),
        slot.shared,
    );
    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Point(&query_paa),
        Some(config),
    );
    let metric = EuclideanMetric::new(index, query, &query_paa, scratch.table, config.kernel);
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let (dist_sq, pos) = objective.answer();
    let mut stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    stats.initial_bsf_dist_sq = d0;
    stats.approx_inflation_prunes = objective.inflation_prunes();
    stats.stop_reason = Some(objective.stop_reason());
    (
        QueryAnswer {
            pos: global_pos(slot.offset, pos),
            dist_sq,
        },
        stats,
    )
}

/// δ-ε-approximate 1-NN search under banded DTW: the same contract as
/// [`approx_search`], with the `(1+ε)` guarantee measured in DTW
/// distance and the usual `mindist_env ≤ LB_Keogh ≤ DTW` cascade doing
/// the pruning.
///
/// # Panics
///
/// As [`approx_search`].
pub fn approx_search_dtw(
    index: &MessiIndex,
    query: &[f32],
    epsilon: f32,
    delta: f32,
    params: DtwParams,
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    approx_search_dtw_with(
        index,
        query,
        epsilon,
        delta,
        params,
        config,
        &mut QueryContext::new(),
    )
}

/// [`approx_search_dtw`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`approx_search`].
pub fn approx_search_dtw_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon: f32,
    delta: f32,
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (QueryAnswer, QueryStats) {
    approx_search_dtw_sharded(
        index,
        query,
        epsilon,
        delta,
        params,
        config,
        ctx,
        ShardSlot::solo(),
    )
}

/// [`approx_search_dtw_with`] as one shard of a sharded scatter; see
/// [`approx_search_sharded`] for the slot contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn approx_search_dtw_sharded<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon: f32,
    delta: f32,
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    slot: ShardSlot<'_>,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    validate_params(epsilon, delta);
    let t_start = Instant::now();
    let segments = index.sax_config().segments;

    let (query_sax, query_paa) = index.summarize_query(query);
    let env = Envelope::new(query, params);

    // Seed from the home leaf through the LB_Keogh → DTW cascade.
    let stats = SharedQueryStats::new();
    let (d0, p0) = crate::dtw::seed_bsf_dtw(
        index,
        query,
        &query_sax,
        &query_paa,
        &env,
        params,
        config.kernel,
        &stats,
    );
    if delta == 0.0 {
        // ng mode still reports the cascade's seed-scan counters.
        let mut out = ng_answer(d0, global_pos(slot.offset, p0), t_start, config);
        out.1.lb_distance_calcs = stats.lb_distance_calcs.get();
        out.1.real_distance_calcs = stats.real_distance_calcs.get();
        return out;
    }
    if let Some(shared) = slot.shared {
        shared.update_min(d0);
    }

    // The envelope PAAs feed the engine's mindist table — only the full
    // traversal needs them, so ng mode above never pays for them.
    let paa_lower = paa(&env.lower, segments);
    let paa_upper = paa(&env.upper, segments);
    let objective = ApproxObjective::new(
        config.bsf,
        d0,
        p0,
        epsilon,
        budget_for(index, delta),
        slot.shared,
    );
    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Envelope(&paa_lower, &paa_upper),
        Some(config),
    );
    let metric = DtwMetric::new(
        index,
        query,
        &env,
        params,
        &paa_lower,
        &paa_upper,
        scratch.table,
        config.kernel,
    );
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let (dist_sq, pos) = objective.answer();
    let mut stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    if d0.is_finite() {
        stats.initial_bsf_dist_sq = d0;
    }
    stats.approx_inflation_prunes = objective.inflation_prunes();
    stats.stop_reason = Some(objective.stop_reason());
    (
        QueryAnswer {
            pos: global_pos(slot.offset, pos),
            dist_sq,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn setup(count: usize, seed: u64) -> (Arc<messi_series::Dataset>, MessiIndex) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        let config = IndexConfig {
            leaf_capacity: 8, // many leaves, so δ budgets actually bite
            ..IndexConfig::for_tests()
        };
        let (index, _) = MessiIndex::build(Arc::clone(&data), &config);
        (data, index)
    }

    #[test]
    fn epsilon_zero_delta_one_is_exact() {
        let (data, index) = setup(400, 91);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 91);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            let (ans, stats) = approx_search(&index, q, 0.0, 1.0, &config);
            let (_, bf) = data.nearest_neighbor_brute_force(q);
            assert!((ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
            assert_eq!(stats.stop_reason, Some(StopReason::Completed));
            assert_eq!(stats.approx_inflation_prunes, 0);
        }
    }

    #[test]
    fn delta_one_guarantee_is_deterministic() {
        let (data, index) = setup(500, 92);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 92);
        let config = QueryConfig::for_tests();
        for epsilon in [0.05f32, 0.3, 1.0] {
            let factor = (1.0 + epsilon) * (1.0 + epsilon);
            for q in queries.iter() {
                let (ans, stats) = approx_search(&index, q, epsilon, 1.0, &config);
                let (_, bf) = data.nearest_neighbor_brute_force(q);
                assert!(
                    ans.dist_sq <= factor * bf * (1.0 + 1e-3),
                    "ε = {epsilon}: {} vs (1+ε)²·{bf}",
                    ans.dist_sq
                );
                assert_eq!(stats.stop_reason, Some(StopReason::Completed));
            }
        }
    }

    #[test]
    fn ng_mode_skips_the_engine_entirely() {
        let (_, index) = setup(300, 93);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 93);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            let (ans, stats) = approx_search(&index, q, 0.0, 0.0, &config);
            assert_eq!(stats.stop_reason, Some(StopReason::HomeLeafOnly));
            assert_eq!(stats.nodes_inserted, 0, "no tree pass ran");
            assert_eq!(stats.nodes_popped, 0);
            // The answer is the home-leaf seed, byte for byte.
            let (sax, paa) = index.summarize_query(q);
            let (d, p) = index.seed_approximate(q, &sax, &paa, config.kernel);
            assert_eq!(ans.dist_sq.to_bits(), d.to_bits());
            assert_eq!(ans.pos, u64::from(p));
        }
    }

    #[test]
    fn small_delta_reports_budget_exhaustion() {
        let (_, index) = setup(600, 94);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 94);
        // Single-worker so the budget is spent in a deterministic order —
        // the exhaustion count must not depend on thread interleaving.
        let config = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            ..QueryConfig::for_tests()
        };
        let mut exhausted = 0;
        for q in queries.iter() {
            let (_, stats) = approx_search(&index, q, 0.0, 0.02, &config);
            match stats.stop_reason {
                Some(StopReason::BudgetExhausted) => exhausted += 1,
                Some(StopReason::Completed) => {}
                other => panic!("unexpected stop reason {other:?}"),
            }
        }
        assert!(
            exhausted > 0,
            "a 2% leaf budget over a deep index should stop early sometimes"
        );
    }

    #[test]
    fn dtw_approx_upper_bounds_dtw_exact() {
        use messi_series::distance::dtw::dtw_sq;
        let (data, index) = setup(250, 95);
        let params = DtwParams::paper_default(256);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 95);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            let (ans, stats) = approx_search_dtw(&index, q, 0.2, 1.0, params, &config);
            let bf = data
                .iter()
                .map(|s| dtw_sq(q, s, params))
                .fold(f32::INFINITY, f32::min);
            assert!(
                ans.dist_sq <= 1.2 * 1.2 * bf * (1.0 + 1e-3),
                "{} vs 1.44·{bf}",
                ans.dist_sq
            );
            assert!(stats.stop_reason.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "delta must be within")]
    fn rejects_out_of_range_delta() {
        let (_, index) = setup(50, 96);
        let q = index.dataset().series(0).to_vec();
        approx_search(&index, &q, 0.0, 1.5, &QueryConfig::for_tests());
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn rejects_negative_epsilon() {
        let (_, index) = setup(50, 97);
        let q = index.dataset().series(0).to_vec();
        approx_search(&index, &q, -0.5, 1.0, &QueryConfig::for_tests());
    }
}
