//! Batch query execution.
//!
//! The paper evaluates queries "in a sequential fashion, one after the
//! other, in order to simulate an exploratory analysis scenario" — each
//! query monopolizing all Ns search workers ([`search_batch`]). A
//! production system also meets the opposite workload: many independent
//! queries arriving together, where throughput matters more than single
//! query latency. [`search_batch_interquery`] serves that case by running
//! the queries concurrently, one single-threaded exact search per pool
//! worker — no per-query coordination at all, at the cost of each query
//! running sequentially inside.
//!
//! Both return exactly the same answers (every search is exact).

use crate::config::QueryConfig;
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::stats::QueryStatsAggregate;
use messi_series::Dataset;
use messi_sync::Dispenser;
use parking_lot::Mutex;

/// Answers all `queries` sequentially (the paper's protocol): each query
/// uses the full worker complement of `config`.
///
/// Returns one answer per query, in query order, plus aggregate stats.
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 4));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 4);
///
/// let (answers, agg) = messi_core::batch::search_batch(&index, &queries, &QueryConfig::for_tests());
/// assert_eq!(answers.len(), 5);
/// assert_eq!(agg.queries, 5);
/// ```
pub fn search_batch(
    index: &MessiIndex,
    queries: &Dataset,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStatsAggregate) {
    let mut answers = Vec::with_capacity(queries.len());
    let mut agg = QueryStatsAggregate::default();
    for q in queries.iter() {
        let (ans, stats) = crate::exact::exact_search(index, q, config);
        agg.add(&stats);
        answers.push(ans);
    }
    (answers, agg)
}

/// Answers all `queries` concurrently: `parallelism` pool workers each
/// run single-threaded exact searches, pulling queries via Fetch&Inc.
///
/// `config.num_workers` and `num_queues` are ignored (each query runs
/// with one worker and one queue); kernel/BSF settings apply.
///
/// # Panics
///
/// Panics if `parallelism == 0` or query lengths mismatch the index.
pub fn search_batch_interquery(
    index: &MessiIndex,
    queries: &Dataset,
    parallelism: usize,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStatsAggregate) {
    assert!(parallelism > 0, "parallelism must be positive");
    let per_query = QueryConfig {
        num_workers: 1,
        num_queues: 1,
        ..config.clone()
    };
    let dispenser = Dispenser::new(queries.len());
    let slots: Vec<Mutex<Option<QueryAnswer>>> =
        (0..queries.len()).map(|_| Mutex::new(None)).collect();
    let agg = Mutex::new(QueryStatsAggregate::default());
    messi_sync::WorkerPool::global().run(parallelism.min(queries.len().max(1)), &|_pid| {
        let mut local_agg = QueryStatsAggregate::default();
        while let Some(qi) = dispenser.next() {
            let (ans, stats) = crate::exact::exact_search(index, queries.series(qi), &per_query);
            local_agg.add(&stats);
            *slots[qi].lock() = Some(ans);
        }
        let mut shared = agg.lock();
        shared.queries += local_agg.queries;
        shared.lb_distance_calcs += local_agg.lb_distance_calcs;
        shared.real_distance_calcs += local_agg.real_distance_calcs;
        shared.bsf_updates += local_agg.bsf_updates;
        shared.total_time += local_agg.total_time;
    });
    let answers = slots
        .into_iter()
        .map(|s| s.into_inner().expect("every query answered"))
        .collect();
    (answers, agg.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn setup() -> (Arc<Dataset>, MessiIndex, Dataset) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 91));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 8, 91);
        (data, index, queries)
    }

    #[test]
    fn sequential_batch_matches_individual_queries() {
        let (_, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let (batch, agg) = search_batch(&index, &queries, &config);
        assert_eq!(batch.len(), 8);
        assert_eq!(agg.queries, 8);
        for (qi, ans) in batch.iter().enumerate() {
            let (single, _) = index.search(queries.series(qi), &config);
            assert_eq!(ans.pos, single.pos);
            assert!((ans.dist_sq - single.dist_sq).abs() <= 1e-4 * single.dist_sq.max(1.0));
        }
    }

    #[test]
    fn interquery_batch_is_exact_and_ordered() {
        let (data, index, queries) = setup();
        for parallelism in [1usize, 3, 8, 32] {
            let (batch, agg) =
                search_batch_interquery(&index, &queries, parallelism, &QueryConfig::for_tests());
            assert_eq!(batch.len(), 8);
            assert_eq!(agg.queries, 8);
            for (qi, ans) in batch.iter().enumerate() {
                let (_, bf) = data.nearest_neighbor_brute_force(queries.series(qi));
                assert!(
                    (ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0),
                    "parallelism={parallelism} query={qi}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn rejects_zero_parallelism() {
        let (_, index, queries) = setup();
        search_batch_interquery(&index, &queries, 0, &QueryConfig::for_tests());
    }
}
