//! Batch query execution — compatibility wrappers over [`crate::exec`].
//!
//! The paper evaluates queries "in a sequential fashion, one after the
//! other, in order to simulate an exploratory analysis scenario" — each
//! query monopolizing all Ns search workers. A production system also
//! meets the opposite workload: many independent queries arriving
//! together, where throughput matters more than single-query latency.
//!
//! Both scheduling modes — and every objective × metric combination, not
//! just the exact 1-NN these two wrappers serve — live in the pooled
//! [`QueryExecutor`](crate::exec::QueryExecutor): this module keeps the
//! historical 1-NN entry points as one-line adapters over
//! [`Schedule::IntraQuery`](crate::exec::Schedule) and
//! [`Schedule::InterQuery`](crate::exec::Schedule). No traversal or
//! objective logic lives here; for batch k-NN, range, or DTW use the
//! executor directly:
//!
//! ```
//! use messi_core::exec::{QuerySpec, Schedule};
//! use messi_core::{IndexConfig, MessiIndex, QueryConfig};
//! use messi_series::gen::{self, DatasetKind};
//! use std::sync::Arc;
//!
//! let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 4));
//! let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
//! let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 4);
//!
//! // A k-NN batch under the throughput schedule — same executor, same
//! // warm contexts, any spec.
//! let (answers, agg) = index.executor().run_batch(
//!     &queries,
//!     &QuerySpec::knn(3),
//!     Schedule::InterQuery { parallelism: 4 },
//!     &QueryConfig::for_tests(),
//! );
//! assert_eq!(answers.len(), 5);
//! assert_eq!(agg.queries, 5);
//! ```
//!
//! All schedules return exactly the same answers (every search is
//! exact), and all reuse per-worker [`QueryContext`] scratch: after the
//! first query of a batch, the hot path performs zero queue or
//! mindist-table allocations (debug builds assert this through
//! [`QueryContext::alloc_events`]).
//!
//! [`QueryContext`]: crate::engine::QueryContext
//! [`QueryContext::alloc_events`]: crate::engine::QueryContext::alloc_events

use crate::config::QueryConfig;
use crate::exact::QueryAnswer;
use crate::exec::{QuerySpec, Schedule};
use crate::index::MessiIndex;
use crate::stats::QueryStatsAggregate;
use messi_series::Dataset;

/// Answers all `queries` sequentially (the paper's protocol): each query
/// uses the full worker complement of `config`.
///
/// Returns one answer per query, in query order, plus aggregate stats.
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 4));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 4);
///
/// let (answers, agg) = messi_core::batch::search_batch(&index, &queries, &QueryConfig::for_tests());
/// assert_eq!(answers.len(), 5);
/// assert_eq!(agg.queries, 5);
/// ```
pub fn search_batch(
    index: &MessiIndex,
    queries: &Dataset,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStatsAggregate) {
    run_exact(index, queries, Schedule::IntraQuery, config)
}

/// Answers all `queries` concurrently: `parallelism` pool workers each
/// run single-threaded exact searches, pulling queries via Fetch&Inc.
/// Each worker owns one reusable query context for its whole share of
/// the batch.
///
/// `config.num_workers` and `num_queues` are ignored (each query runs
/// with one worker and one queue); kernel/BSF settings apply.
///
/// # Panics
///
/// Panics if `parallelism == 0` or query lengths mismatch the index.
pub fn search_batch_interquery(
    index: &MessiIndex,
    queries: &Dataset,
    parallelism: usize,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStatsAggregate) {
    run_exact(index, queries, Schedule::InterQuery { parallelism }, config)
}

/// Shared adapter: run the exact-1-NN spec under `schedule` and unwrap
/// the per-query answer lists (exact search always yields exactly one).
fn run_exact(
    index: &MessiIndex,
    queries: &Dataset,
    schedule: Schedule,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStatsAggregate) {
    let (answers, agg) = index
        .executor()
        .run_batch(queries, &QuerySpec::exact(), schedule, config);
    let answers = answers
        .into_iter()
        .map(|mut a| a.pop().expect("exact search always answers"))
        .collect();
    (answers, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::engine::QueryContext;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn setup() -> (Arc<Dataset>, MessiIndex, Dataset) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 91));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 8, 91);
        (data, index, queries)
    }

    #[test]
    fn sequential_batch_matches_individual_queries() {
        let (_, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let (batch, agg) = search_batch(&index, &queries, &config);
        assert_eq!(batch.len(), 8);
        assert_eq!(agg.queries, 8);
        for (qi, ans) in batch.iter().enumerate() {
            let (single, _) = index.search(queries.series(qi), &config);
            assert_eq!(ans.pos, single.pos);
            assert!((ans.dist_sq - single.dist_sq).abs() <= 1e-4 * single.dist_sq.max(1.0));
        }
    }

    #[test]
    fn interquery_batch_is_exact_and_ordered() {
        let (data, index, queries) = setup();
        for parallelism in [1usize, 3, 8, 32] {
            let (batch, agg) =
                search_batch_interquery(&index, &queries, parallelism, &QueryConfig::for_tests());
            assert_eq!(batch.len(), 8);
            assert_eq!(agg.queries, 8);
            for (qi, ans) in batch.iter().enumerate() {
                let (_, bf) = data.nearest_neighbor_brute_force(queries.series(qi));
                assert!(
                    (ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0),
                    "parallelism={parallelism} query={qi}"
                );
            }
        }
    }

    #[test]
    fn batch_reuses_scratch_across_queries() {
        // The same assertion the executor makes in debug builds, verified
        // explicitly: after the first query, the context's allocation
        // counter is flat for the rest of the batch.
        let (data, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let mut ctx = QueryContext::new();
        let mut events = Vec::new();
        for q in queries.iter() {
            let (ans, _) = crate::exact::exact_search_with(&index, q, &config, &mut ctx);
            let (_, bf) = data.nearest_neighbor_brute_force(q);
            assert!((ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
            events.push(ctx.alloc_events());
        }
        assert!(events[0] > 0, "first query builds the scratch");
        assert!(
            events[1..].iter().all(|&e| e == events[0]),
            "zero per-query allocations after the first query: {events:?}"
        );
    }

    #[test]
    fn aggregate_totals_match_between_batch_modes() {
        // Both paths fold stats through QueryStatsAggregate::merge; the
        // query count and the deterministic counters must agree.
        let (_, index, queries) = setup();
        let sequential_1w = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            ..QueryConfig::for_tests()
        };
        let (_, a) = search_batch(&index, &queries, &sequential_1w);
        let (_, b) = search_batch_interquery(&index, &queries, 4, &sequential_1w);
        assert_eq!(a.queries, b.queries);
        // Single-worker searches are deterministic, so the pruning
        // counters agree exactly between the two execution modes.
        assert_eq!(a.lb_distance_calcs, b.lb_distance_calcs);
        assert_eq!(a.real_distance_calcs, b.real_distance_calcs);
        assert_eq!(a.bsf_updates, b.bsf_updates);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn rejects_zero_parallelism() {
        let (_, index, queries) = setup();
        search_batch_interquery(&index, &queries, 0, &QueryConfig::for_tests());
    }
}
