//! Parallel index construction (Alg. 1–4, Fig. 3).
//!
//! Two phases, separated by a full synchronization of the Nw index
//! workers:
//!
//! 1. **CalculateiSAXSummaries** (Alg. 3): the raw-data array is cut into
//!    `chunk_size`-series chunks handed out by Fetch&Inc; each worker
//!    converts its chunk's series to iSAX and files `(summary, position)`
//!    into *its own part* of the target subtree's buffer — no locks.
//! 2. **TreeConstruction** (Alg. 4): buffers (= root subtrees) are handed
//!    out by Fetch&Inc; each worker drains all parts of its buffer into
//!    that subtree through a reusable [`SubtreeBuilder`], splitting
//!    leaves as needed, then flattens it into a [`TreeArena`] — two
//!    exact-capacity allocations per subtree, however many nodes it has.
//!    Subtree ownership is exclusive, so this phase is also lock-free.
//!
//! The paper's barrier between the phases (Alg. 2 line 2) is realized by
//! ending the first thread scope and opening a second one: joining all
//! workers *is* a barrier, and it converts the buffers from per-worker
//! exclusive (`&mut`) to shared read-only (`&`) access, letting the
//! borrow checker prove the absence of the data races the paper's design
//! carefully avoids. The extra spawn cost (~tens of µs) is negligible at
//! any realistic scale.

use crate::config::IndexConfig;
use crate::index::MessiIndex;
use crate::node::{LeafEntry, SubtreeBuilder, TreeArena};
use crate::stats::BuildStats;
use messi_sax::convert::{SaxConfig, SaxConverter};
use messi_sax::root_key::{node_word_for_root_key, root_key};
use messi_series::Dataset;
use messi_sync::{Dispenser, PartitionedBuffers};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Rejects datasets whose positions would overflow the `u32` stored in
/// every [`LeafEntry`]. Without this, `pos as u32` would silently wrap
/// on collections above 4.29 G series and the index would return wrong
/// answers instead of failing loudly. Shared with
/// [`MessiIndex::from_parts`], the other door an index can enter by.
pub(crate) fn assert_positions_fit(dataset: &Dataset) {
    assert!(
        dataset.len() <= u32::MAX as usize,
        "dataset has {} series but a single MessiIndex stores positions as u32 (max {}); \
         build a sharded index instead (`ShardedIndex::build` / `--shards N`), which splits \
         the collection into independent u32-position shards and reports u64 global positions",
        dataset.len(),
        u32::MAX
    );
}

/// Builds a [`MessiIndex`] over `dataset` (see module docs).
///
/// # Panics
///
/// Panics if the dataset is empty, holds more than `u32::MAX` series, or
/// the configuration is invalid for the dataset shape.
pub fn build_index(dataset: Arc<Dataset>, config: &IndexConfig) -> (MessiIndex, BuildStats) {
    config.validate(dataset.series_len());
    assert!(!dataset.is_empty(), "cannot index an empty dataset");
    assert_positions_fit(&dataset);
    if config.variant == crate::config::BuildVariant::NoBuffers {
        return build_index_no_buffers(dataset, config);
    }

    let sax_config = SaxConfig::new(config.segments, dataset.series_len());
    let segments = sax_config.segments;
    let num_keys = sax_config.num_root_subtrees();
    let n = dataset.len();
    let chunk_size = config.chunk_size.max(1);
    let num_chunks = n.div_ceil(chunk_size);
    let num_workers = config.num_workers;

    // ---- Phase 1: CalculateiSAXSummaries (Alg. 3) ----
    let mut buffers: PartitionedBuffers<LeafEntry> =
        PartitionedBuffers::new(num_keys, num_workers, config.initial_buffer_capacity);
    let chunk_dispenser = Dispenser::new(num_chunks);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for part in buffers.parts_mut().iter_mut() {
            let dataset = &dataset;
            let dispenser = &chunk_dispenser;
            s.spawn(move || {
                let mut conv = SaxConverter::new(sax_config);
                while let Some(chunk) = dispenser.next() {
                    let start = chunk * chunk_size;
                    let end = usize::min(start + chunk_size, n);
                    for pos in start..end {
                        let sax = conv.convert(dataset.series(pos));
                        let key = root_key(&sax, segments);
                        part.push(
                            key,
                            LeafEntry {
                                sax,
                                pos: pos as u32,
                            },
                        );
                    }
                }
            });
        }
    });
    let summarize_time = t0.elapsed();

    // ---- Phase 2: TreeConstruction (Alg. 4) ----
    let t1 = Instant::now();
    // The paper's workers fetch all 2^w buffer ids and skip empty ones;
    // pre-computing the touched list is the same scan done once (the
    // buffers cache it; the index keeps its own copy since it outlives
    // them).
    let touched = buffers.touched_keys().to_vec();
    let tree_dispenser = Dispenser::new(touched.len());
    let built: Mutex<Vec<(usize, TreeArena)>> = Mutex::new(Vec::with_capacity(touched.len()));
    std::thread::scope(|s| {
        for _ in 0..num_workers {
            let buffers = &buffers;
            let touched = &touched;
            let tree_dispenser = &tree_dispenser;
            let built = &built;
            s.spawn(move || {
                // One builder per worker: its scratch is reused across
                // every subtree this worker constructs.
                let mut builder = SubtreeBuilder::new(segments, config.leaf_capacity);
                let mut local = Vec::new();
                while let Some(i) = tree_dispenser.next() {
                    let key = touched[i];
                    builder.begin(node_word_for_root_key(key, segments));
                    for entry in buffers.iter_key(key) {
                        builder.insert(*entry);
                    }
                    local.push((key, builder.finish()));
                }
                built.lock().extend(local);
            });
        }
    });
    let tree_time = t1.elapsed();

    let index = MessiIndex::from_parts(dataset, config.clone(), built.into_inner());
    let stats = BuildStats {
        summarize_time,
        tree_time,
        total_time: t0.elapsed(),
        num_series: n,
        num_leaves: index.num_leaves(),
        num_root_subtrees: index.touched.len(),
        max_height: index.max_height(),
    };
    (index, stats)
}

/// The rejected no-buffer design (§III-A footnote): workers insert each
/// summary straight into its root subtree, taking a per-subtree lock.
/// Kept for the ablation bench — the paper found it "slower … due to the
/// worse cache locality" (every insertion touches a different subtree's
/// nodes, instead of one worker streaming through one subtree at a time).
/// Each subtree's under-construction state is its own [`SubtreeBuilder`],
/// flattened after the insertion scope ends.
fn build_index_no_buffers(dataset: Arc<Dataset>, config: &IndexConfig) -> (MessiIndex, BuildStats) {
    let sax_config = SaxConfig::new(config.segments, dataset.series_len());
    let segments = sax_config.segments;
    let num_keys = sax_config.num_root_subtrees();
    let n = dataset.len();
    let chunk_size = config.chunk_size.max(1);
    let chunk_dispenser = Dispenser::new(n.div_ceil(chunk_size));

    let mut locked_builders: Vec<Mutex<Option<SubtreeBuilder>>> = Vec::with_capacity(num_keys);
    locked_builders.resize_with(num_keys, || Mutex::new(None));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..config.num_workers {
            let dataset = &dataset;
            let dispenser = &chunk_dispenser;
            let locked_builders = &locked_builders;
            s.spawn(move || {
                let mut conv = SaxConverter::new(sax_config);
                while let Some(chunk) = dispenser.next() {
                    let start = chunk * chunk_size;
                    let end = usize::min(start + chunk_size, n);
                    for pos in start..end {
                        let sax = conv.convert(dataset.series(pos));
                        let key = root_key(&sax, segments);
                        let mut guard = locked_builders[key].lock();
                        let builder = guard.get_or_insert_with(|| {
                            let mut b = SubtreeBuilder::new(segments, config.leaf_capacity);
                            b.begin(node_word_for_root_key(key, segments));
                            b
                        });
                        builder.insert(LeafEntry {
                            sax,
                            pos: pos as u32,
                        });
                    }
                }
            });
        }
    });
    let total = t0.elapsed();

    let mut subtrees = Vec::new();
    for (key, slot) in locked_builders.into_iter().enumerate() {
        if let Some(mut builder) = slot.into_inner() {
            subtrees.push((key, builder.finish()));
        }
    }

    let index = MessiIndex::from_parts(dataset, config.clone(), subtrees);
    let stats = BuildStats {
        // The whole build is one interleaved phase.
        summarize_time: total,
        tree_time: std::time::Duration::ZERO,
        total_time: total,
        num_series: n,
        num_leaves: index.num_leaves(),
        num_root_subtrees: index.touched.len(),
        max_height: index.max_height(),
    };
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_series::gen::{self, DatasetKind};

    fn build_with(config: &IndexConfig, count: usize, seed: u64) -> (MessiIndex, BuildStats) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        build_index(data, config)
    }

    #[test]
    fn indexes_every_series_exactly_once() {
        let (index, stats) = build_with(&IndexConfig::for_tests(), 500, 3);
        assert_eq!(stats.num_series, 500);
        let mut seen = vec![false; 500];
        for arena in index.arenas() {
            arena.for_each_leaf(&mut |leaf| {
                for e in leaf.entries {
                    assert!(!seen[e.pos as usize], "pos {} twice", e.pos);
                    seen[e.pos as usize] = true;
                }
            });
        }
        assert!(seen.iter().all(|&b| b), "some series missing from index");
    }

    #[test]
    fn deterministic_structure_across_worker_counts() {
        // The tree content (not build order) must be identical for any
        // worker count: same leaves, same entries per root subtree.
        let base = IndexConfig::for_tests();
        let (i1, _) = build_with(
            &IndexConfig {
                num_workers: 1,
                ..base.clone()
            },
            300,
            9,
        );
        let (i4, _) = build_with(
            &IndexConfig {
                num_workers: 4,
                ..base.clone()
            },
            300,
            9,
        );
        let (i13, _) = build_with(
            &IndexConfig {
                num_workers: 13,
                ..base
            },
            300,
            9,
        );
        for pair in [&i4, &i13] {
            assert_eq!(i1.touched_keys(), pair.touched_keys());
            assert_eq!(i1.num_leaves(), pair.num_leaves());
            for &key in i1.touched_keys() {
                let mut a = Vec::new();
                let mut b = Vec::new();
                i1.root(key)
                    .unwrap()
                    .for_each_leaf(&mut |l| a.extend(l.entries.iter().map(|e| e.pos)));
                pair.root(key)
                    .unwrap()
                    .for_each_leaf(&mut |l| b.extend(l.entries.iter().map(|e| e.pos)));
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "key {key} differs");
            }
        }
    }

    #[test]
    fn respects_leaf_capacity() {
        let config = IndexConfig {
            leaf_capacity: 16,
            ..IndexConfig::for_tests()
        };
        let (index, stats) = build_with(&config, 1000, 5);
        assert!(stats.num_leaves >= 1000 / 16 / 4, "suspiciously few leaves");
        for &key in index.touched_keys() {
            index.root(key).unwrap().for_each_leaf(&mut |leaf| {
                if leaf.entries.len() > 16 {
                    let first = leaf.entries[0].sax;
                    assert!(
                        leaf.entries.iter().all(|e| e.sax == first),
                        "oversized leaf must hold identical summaries only"
                    );
                }
            });
        }
    }

    #[test]
    fn stats_are_plausible() {
        let (index, stats) = build_with(&IndexConfig::for_tests(), 400, 7);
        assert_eq!(stats.num_leaves, index.num_leaves());
        assert_eq!(stats.num_root_subtrees, index.touched_keys().len());
        assert_eq!(stats.max_height, index.max_height());
        assert!(stats.total_time >= stats.tree_time);
    }

    #[test]
    fn tiny_datasets_and_odd_chunks() {
        // chunk_size larger than the dataset, more workers than series.
        let config = IndexConfig {
            num_workers: 8,
            chunk_size: 1_000_000,
            ..IndexConfig::for_tests()
        };
        let (index, stats) = build_with(&config, 3, 1);
        assert_eq!(stats.num_series, 3);
        assert_eq!(index.num_series(), 3);
        // chunk_size 1: maximal dispenser traffic.
        let config = IndexConfig {
            chunk_size: 1,
            ..IndexConfig::for_tests()
        };
        let (index, _) = build_with(&config, 50, 1);
        assert_eq!(index.num_series(), 50);
    }

    #[test]
    fn subtree_storage_is_allocation_flat() {
        // The arena invariant made observable: each subtree's storage is
        // exactly two tight allocations (node array + entry pool), so
        // capacity equals length — no per-node or per-leaf allocations
        // survive into the finished index.
        let (index, _) = build_with(&IndexConfig::for_tests(), 800, 21);
        for (i, arena) in index.arenas().iter().enumerate() {
            assert!(
                arena.allocation_flat(),
                "arena {i}: storage is not capacity-tight"
            );
        }
        // Storage totals are consistent with the per-arena sums.
        assert_eq!(
            index.node_storage_bytes(),
            index.arenas().iter().map(|a| a.node_bytes()).sum::<usize>()
        );
        assert_eq!(index.num_entries(), 800);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let data = Arc::new(Dataset::from_flat(vec![], 256).unwrap());
        build_index(data, &IndexConfig::default());
    }

    #[test]
    fn no_buffers_variant_builds_equivalent_index() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 600, 13));
        let buffered = IndexConfig::for_tests();
        let no_buffers = IndexConfig {
            variant: crate::config::BuildVariant::NoBuffers,
            ..IndexConfig::for_tests()
        };
        let (a, sa) = build_index(Arc::clone(&data), &buffered);
        let (b, sb) = build_index(Arc::clone(&data), &no_buffers);
        assert_eq!(sa.num_series, sb.num_series);
        assert_eq!(a.touched_keys(), b.touched_keys());
        // Same per-subtree position sets (leaf layout may be permuted by
        // the different insertion order).
        for &key in a.touched_keys() {
            let collect = |idx: &MessiIndex| {
                let mut v = Vec::new();
                idx.root(key)
                    .unwrap()
                    .for_each_leaf(&mut |l| v.extend(l.entries.iter().map(|e| e.pos)));
                v.sort_unstable();
                v
            };
            assert_eq!(collect(&a), collect(&b), "key {key}");
        }
        // The no-buffers index is structurally valid and searches exactly.
        let errors = crate::validate::validate(&b);
        assert!(errors.is_empty(), "{errors:?}");
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 13);
        for q in queries.iter() {
            let (ans, _) = b.search(q, &crate::config::QueryConfig::for_tests());
            let (_, bf) = data.nearest_neighbor_brute_force(q);
            assert!((ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
        }
    }
}
