//! Index and query configuration.
//!
//! Defaults follow §IV-B of the paper: 24 index workers, 48 search
//! workers, 20K-series chunks, 2000-series leaves, 24 priority queues,
//! initial iSAX buffer part capacity of 5 — each validated there by a
//! dedicated experiment (Figs. 5–9, 14), all reproduced by the bench
//! crate.

use messi_series::distance::Kernel;

/// Upper bound on index workers used by [`IndexConfig::default`]
/// (the paper fixes Nw = 24; we clamp to the machine).
pub const PAPER_INDEX_WORKERS: usize = 24;

/// Upper bound on search workers used by [`QueryConfig::default`]
/// (the paper fixes Ns = 48, i.e. 2 hyperthreads per core).
pub const PAPER_SEARCH_WORKERS: usize = 48;

pub(crate) fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Adaptive leaf split threshold for `--leaf-target auto`: one leaf per
/// ~512 series, clamped to `[64, 2_000]` (the paper's default stays the
/// upper bound). Small datasets get small leaves so the tree still fans
/// out enough for parallelism and pruning; huge datasets keep the
/// paper's 2_000-entry leaves.
pub fn auto_leaf_capacity(num_series: usize) -> usize {
    (num_series / 512).clamp(64, 2_000)
}

/// Whether the lower-bound tier may coalesce adjacent small leaves into
/// one run-batched scan.
///
/// Coalescing is bit-identical to per-leaf scanning (the SoA kernel
/// accumulates each entry independently), so the only reason to turn it
/// off is ablation: the `MESSI_NO_RUN_BATCH` environment escape hatch
/// (mirroring `MESSI_FORCE_SCALAR`) forces [`RunBatchPolicy::PerLeaf`]
/// process-wide regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunBatchPolicy {
    /// Coalesce queue insertions over leaf runs (default).
    #[default]
    Auto,
    /// Queue and scan one leaf at a time (the pre-run-batching path).
    PerLeaf,
}

/// Cached result of the `MESSI_NO_RUN_BATCH` check: 0 = unknown,
/// 1 = batching allowed, 2 = disabled by the environment.
static RUN_BATCH_STATE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// The `MESSI_NO_RUN_BATCH` escape hatch (checked once, then cached).
pub(crate) fn run_batch_env_allowed() -> bool {
    use std::sync::atomic::Ordering;
    match RUN_BATCH_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let disabled = std::env::var_os("MESSI_NO_RUN_BATCH").is_some_and(|v| v != "0");
            RUN_BATCH_STATE.store(if disabled { 2 } else { 1 }, Ordering::Relaxed);
            !disabled
        }
    }
}

/// Which Best-So-Far implementation the search workers share.
///
/// Applies to the 1-NN objectives (Euclidean and DTW). k-NN carries its
/// bound in the candidate set and range search has a fixed bound, so
/// neither consults this policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BsfPolicy {
    /// Lock-free packed CAS-min (default; see `messi_sync::AtomicBsf`).
    #[default]
    Atomic,
    /// The paper's mutex-protected BSF (Alg. 8 lines 5–7).
    Locked,
}

/// How search workers are assigned to priority queues.
///
/// The paper considered and rejected a per-thread-local-queue design:
/// "using a local queue per thread results in severe load imbalance,
/// since, depending on the workload, the size of the different queues may
/// vary significantly" (§III-B). Both designs are implemented so the
/// ablation bench can reproduce that comparison. The policy is handled
/// by the unified engine driver, so it applies to every queued objective
/// (1-NN and k-NN, Euclidean and DTW) alike; range search runs
/// queue-less and ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// The paper's design: Nq shared queues, round-robin insertion,
    /// workers hop to the next unfinished queue (Alg. 6–7).
    #[default]
    SharedRoundRobin,
    /// The rejected design: one private queue per worker; each worker
    /// inserts into and drains only its own queue (`num_queues` is
    /// ignored; Nq = Ns).
    PerWorkerLocal,
}

/// How the index construction stages summaries before tree construction.
///
/// The paper also tried building without the iSAX buffers: "we also
/// tried a design of MESSI with no iSAX buffers, but this led to slower
/// performance (due to the worse cache locality)" (§III-A). Both designs
/// are implemented so the ablation bench can reproduce that comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildVariant {
    /// The paper's design: summaries staged in per-(subtree × worker)
    /// buffer parts, then each subtree built by one worker (Alg. 3–4).
    #[default]
    Buffered,
    /// The rejected design: summaries inserted straight into the tree as
    /// they are computed, each root subtree protected by a lock.
    NoBuffers,
}

/// Parameters of index construction (Alg. 1–4).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Number of PAA segments, the paper's w (default 16).
    pub segments: usize,
    /// Number of index worker threads, the paper's Nw (default
    /// `min(24, cores)`).
    pub num_workers: usize,
    /// Chunk size, in series, for Fetch&Inc work dispensing during
    /// summarization (default 20_000 = the paper's 20MB of 256-point
    /// series).
    pub chunk_size: usize,
    /// Maximum entries per leaf before it splits (default 2_000).
    pub leaf_capacity: usize,
    /// Initial capacity of each iSAX buffer part, in entries (default 5).
    pub initial_buffer_capacity: usize,
    /// Staging strategy (default: the paper's buffered design).
    pub variant: BuildVariant,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            segments: 16,
            num_workers: PAPER_INDEX_WORKERS.min(available_cores()),
            chunk_size: 20_000,
            leaf_capacity: 2_000,
            initial_buffer_capacity: 5,
            variant: BuildVariant::Buffered,
        }
    }
}

impl IndexConfig {
    /// Validates the configuration against a dataset shape.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations (zero workers, zero leaf capacity,
    /// more segments than points, …).
    pub fn validate(&self, series_len: usize) {
        assert!(self.num_workers > 0, "need at least one index worker");
        assert!(self.chunk_size > 0, "chunk size must be positive");
        assert!(self.leaf_capacity > 0, "leaf capacity must be positive");
        assert!(
            self.segments > 0 && self.segments <= messi_sax::MAX_SEGMENTS,
            "segments must be in 1..={}",
            messi_sax::MAX_SEGMENTS
        );
        assert!(
            self.segments <= series_len,
            "more segments ({}) than points ({series_len})",
            self.segments
        );
    }

    /// A small configuration for unit tests: fewer segments (small root
    /// fan-out), tiny chunks and leaves, deterministic with any worker
    /// count.
    pub fn for_tests() -> Self {
        Self {
            segments: 8,
            num_workers: 4,
            chunk_size: 64,
            leaf_capacity: 32,
            initial_buffer_capacity: 5,
            variant: BuildVariant::Buffered,
        }
    }
}

/// Parameters of exact query answering (Alg. 5–9).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryConfig {
    /// Number of search worker threads, the paper's Ns (default
    /// `min(48, 2 × cores)`).
    pub num_workers: usize,
    /// Number of shared priority queues, the paper's Nq: 1 = MESSI-sq,
    /// >1 = MESSI-mq (default 24).
    pub num_queues: usize,
    /// Distance kernel selection (SIMD vs SISD; Fig. 18's ablation).
    pub kernel: Kernel,
    /// Best-So-Far implementation.
    pub bsf: BsfPolicy,
    /// Queue assignment discipline (default: the paper's shared queues).
    pub queue_policy: QueuePolicy,
    /// Collect the per-phase wall-time breakdown of Fig. 13 (adds two
    /// `Instant::now` calls around each phase transition; off by
    /// default). Collection lives in the engine driver, so every
    /// objective — 1-NN, k-NN, and range, Euclidean or DTW — reports the
    /// same breakdown.
    pub collect_breakdown: bool,
    /// Leaf-run coalescing in the lower-bound tier (default: on).
    pub run_batch: RunBatchPolicy,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            num_workers: PAPER_SEARCH_WORKERS.min(2 * available_cores()),
            num_queues: 24,
            kernel: Kernel::Auto,
            bsf: BsfPolicy::Atomic,
            queue_policy: QueuePolicy::SharedRoundRobin,
            collect_breakdown: false,
            run_batch: RunBatchPolicy::Auto,
        }
    }
}

impl QueryConfig {
    /// MESSI-sq: the single-queue variant.
    pub fn single_queue() -> Self {
        Self {
            num_queues: 1,
            ..Self::default()
        }
    }

    /// MESSI-mq with an explicit queue count.
    pub fn multi_queue(num_queues: usize) -> Self {
        Self {
            num_queues,
            ..Self::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        Self {
            num_workers: 4,
            num_queues: 3,
            kernel: Kernel::Auto,
            bsf: BsfPolicy::Atomic,
            queue_policy: QueuePolicy::SharedRoundRobin,
            collect_breakdown: false,
            run_batch: RunBatchPolicy::Auto,
        }
    }

    /// Whether this configuration coalesces leaf runs, after applying
    /// the `MESSI_NO_RUN_BATCH` environment escape hatch.
    pub fn run_batching(&self) -> bool {
        self.run_batch == RunBatchPolicy::Auto && run_batch_env_allowed()
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero workers or zero queues.
    pub fn validate(&self) {
        assert!(self.num_workers > 0, "need at least one search worker");
        assert!(self.num_queues > 0, "need at least one priority queue");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let ic = IndexConfig::default();
        assert_eq!(ic.segments, 16);
        assert_eq!(ic.chunk_size, 20_000);
        assert_eq!(ic.leaf_capacity, 2_000);
        assert_eq!(ic.initial_buffer_capacity, 5);
        assert!(ic.num_workers >= 1 && ic.num_workers <= 24);
        ic.validate(256);

        let qc = QueryConfig::default();
        assert_eq!(qc.num_queues, 24);
        assert!(qc.num_workers >= 1 && qc.num_workers <= 48);
        qc.validate();
    }

    #[test]
    fn auto_leaf_capacity_scales_with_dataset_size() {
        assert_eq!(auto_leaf_capacity(0), 64);
        assert_eq!(auto_leaf_capacity(10_000), 64);
        assert_eq!(auto_leaf_capacity(100_000), 195);
        assert_eq!(auto_leaf_capacity(1 << 20), 2_000);
        assert_eq!(auto_leaf_capacity(100_000_000), 2_000);
    }

    #[test]
    fn per_leaf_policy_disables_run_batching() {
        let qc = QueryConfig {
            run_batch: RunBatchPolicy::PerLeaf,
            ..QueryConfig::default()
        };
        assert!(!qc.run_batching());
        // Auto defers to the (cached) environment check; absent the env
        // var this is true, but CI also runs with MESSI_NO_RUN_BATCH=1,
        // so only assert consistency with the cached gate.
        let qc = QueryConfig::default();
        assert_eq!(qc.run_batching(), run_batch_env_allowed());
    }

    #[test]
    fn sq_and_mq_presets() {
        assert_eq!(QueryConfig::single_queue().num_queues, 1);
        assert_eq!(QueryConfig::multi_queue(7).num_queues, 7);
    }

    #[test]
    #[should_panic(expected = "more segments")]
    fn rejects_more_segments_than_points() {
        IndexConfig::default().validate(8);
    }

    #[test]
    #[should_panic(expected = "at least one priority queue")]
    fn rejects_zero_queues() {
        let qc = QueryConfig {
            num_queues: 0,
            ..QueryConfig::default()
        };
        qc.validate();
    }
}
