//! Exact DTW 1-NN search via LB_Keogh envelopes (Fig. 19).
//!
//! "We note that no changes are required in the index structure; we just
//! have to build the envelope of the LB_Keogh method around the query
//! series, and then search the index using this envelope" (§IV). In
//! engine terms: the search skeleton is [`crate::engine`]'s, unchanged;
//! only the metric differs, forming the classic three-level cascade:
//!
//! ```text
//! mindist_env(envelope PAA, iSAX) ≤ LB_Keogh(query, c) ≤ DTW(query, c)
//! ```
//!
//! Node pruning and queue priorities use the envelope mindist; leaf
//! entries are filtered by envelope mindist, then LB_Keogh on the raw
//! candidate, and only survivors pay the full banded-DTW cost (with early
//! abandoning against the BSF). The same metric composes with the k-NN
//! and range objectives — see [`crate::knn::exact_knn_dtw`] and
//! [`crate::range::range_search_dtw`].

use crate::config::QueryConfig;
use crate::engine::{
    self, DtwMetric, Engine, NearestObjective, QueryContext, ShardSlot, TableSpec,
};
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::shard::global_pos;
use crate::stats::{QueryStats, SharedQueryStats};
use messi_series::distance::dtw::{dtw_sq_early_abandon, DtwParams};
use messi_series::distance::lb_keogh::{lb_keogh_sq_early_abandon_with, Envelope};
use messi_series::distance::Kernel;
use messi_series::paa::paa;
use std::time::Instant;

/// Exact DTW 1-NN search over `index` with a Sakoe-Chiba band.
///
/// Returns the position of the series minimizing the banded DTW distance
/// to `query`, its squared DTW cost, and query statistics (where
/// `real_distance_calcs` counts full DTW evaluations and
/// `lb_distance_calcs` counts mindist *and* LB_Keogh evaluations).
///
/// # Panics
///
/// Panics if the query length differs from the indexed series length or
/// the configuration is invalid.
pub fn exact_search_dtw(
    index: &MessiIndex,
    query: &[f32],
    params: DtwParams,
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    exact_search_dtw_with(index, query, params, config, &mut QueryContext::new())
}

/// [`exact_search_dtw`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`exact_search_dtw`].
pub fn exact_search_dtw_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (QueryAnswer, QueryStats) {
    exact_search_dtw_sharded(index, query, params, config, ctx, ShardSlot::solo())
}

/// [`exact_search_dtw_with`] as one shard of a sharded scatter; see
/// [`crate::exact::exact_search_sharded`] for the slot contract.
pub(crate) fn exact_search_dtw_sharded<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    slot: ShardSlot<'_>,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    let t_start = Instant::now();
    let segments = index.sax_config().segments;

    // Envelope and its PAA: the "query summary" of DTW search.
    let (query_sax, query_paa) = index.summarize_query(query);
    let env = Envelope::new(query, params);
    let paa_lower = paa(&env.lower, segments);
    let paa_upper = paa(&env.upper, segments);

    // Initial BSF: cascade-scan the query's home leaf.
    let stats = SharedQueryStats::new();
    let (d0, p0) = seed_bsf_dtw(
        index,
        query,
        &query_sax,
        &query_paa,
        &env,
        params,
        config.kernel,
        &stats,
    );
    if let Some(shared) = slot.shared {
        shared.update_min(d0);
    }
    let objective = NearestObjective::new(config.bsf, d0, p0, slot.shared);

    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Envelope(&paa_lower, &paa_upper),
        Some(config),
    );
    let metric = DtwMetric::new(
        index,
        query,
        &env,
        params,
        &paa_lower,
        &paa_upper,
        scratch.table,
        config.kernel,
    );
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let (dist_sq, pos) = objective.answer();
    let mut stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    if d0.is_finite() {
        stats.initial_bsf_dist_sq = d0;
    }
    (
        QueryAnswer {
            pos: global_pos(slot.offset, pos),
            dist_sq,
        },
        stats,
    )
}

/// Scans the query's home leaf with the LB_Keogh → DTW cascade to seed
/// the BSF — the shared [`MessiIndex::home_leaf_entries`] walk (greedy
/// fallback when the home subtree is empty) with DTW's distance cascade.
/// Also the ng-approximate answer under DTW ([`crate::approximate`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn seed_bsf_dtw(
    index: &MessiIndex,
    query: &[f32],
    query_sax: &messi_sax::word::SaxWord,
    query_paa: &[f32],
    env: &Envelope,
    params: DtwParams,
    kernel: Kernel,
    stats: &SharedQueryStats,
) -> (f32, u32) {
    let mut best = (f32::INFINITY, u32::MAX);
    for e in index.home_leaf_entries(query_sax, query_paa) {
        let candidate = index.dataset.series(e.pos as usize);
        stats.lb_distance_calcs.inc();
        if lb_keogh_sq_early_abandon_with(kernel, env, candidate, best.0) >= best.0 {
            continue;
        }
        stats.real_distance_calcs.inc();
        let d = dtw_sq_early_abandon(query, candidate, params, best.0);
        if d < best.0 {
            best = (d, e.pos);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::distance::dtw::dtw_sq;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn brute_force_dtw(
        data: &messi_series::Dataset,
        query: &[f32],
        params: DtwParams,
    ) -> (usize, f32) {
        let mut best = (0usize, f32::INFINITY);
        for (i, s) in data.iter().enumerate() {
            let d = dtw_sq(query, s, params);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    #[test]
    fn dtw_search_matches_brute_force() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 31));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let params = DtwParams::paper_default(256);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 31);
        for q in queries.iter() {
            let (ans, stats) = exact_search_dtw(&index, q, params, &QueryConfig::for_tests());
            let (bf_pos, bf_dist) = brute_force_dtw(&data, q, params);
            assert!(
                (ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                "{} vs {bf_dist}",
                ans.dist_sq
            );
            if ans.pos as usize != bf_pos {
                let d = dtw_sq(q, data.series(ans.pos as usize), params);
                assert!((d - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0));
            }
            assert!(
                stats.real_distance_calcs < data.len() as u64,
                "DTW search should prune"
            );
        }
    }

    #[test]
    fn dtw_search_on_smooth_data() {
        // SALD-like data warps well; exactness must hold regardless.
        let data = Arc::new(gen::generate(DatasetKind::Sald, 200, 8));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let params = DtwParams::paper_default(128);
        let queries = gen::queries::generate_queries(DatasetKind::Sald, 3, 8);
        for q in queries.iter() {
            let (ans, _) = exact_search_dtw(&index, q, params, &QueryConfig::for_tests());
            let (_, bf_dist) = brute_force_dtw(&data, q, params);
            assert!((ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0));
        }
    }

    #[test]
    fn member_query_has_zero_dtw() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 100, 2));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let q = data.series(5).to_vec();
        let params = DtwParams::paper_default(256);
        let (ans, _) = exact_search_dtw(&index, &q, params, &QueryConfig::for_tests());
        assert_eq!(ans.dist_sq, 0.0);
    }

    #[test]
    fn zero_window_dtw_equals_euclidean_search() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 150, 3));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 3);
        for q in queries.iter() {
            let (dtw_ans, _) = exact_search_dtw(
                &index,
                q,
                DtwParams { window: 0 },
                &QueryConfig::for_tests(),
            );
            let (ed_ans, _) = crate::exact::exact_search(&index, q, &QueryConfig::for_tests());
            assert!(
                (dtw_ans.dist_sq - ed_ans.dist_sq).abs() <= 1e-3 * ed_ans.dist_sq.max(1.0),
                "{} vs {}",
                dtw_ans.dist_sq,
                ed_ans.dist_sq
            );
        }
    }

    #[test]
    fn dtw_with_reused_context_stays_exact() {
        // A context can serve ED and DTW queries alternately: the mindist
        // table is refilled from a point PAA or an envelope as needed.
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 200, 41));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let params = DtwParams::paper_default(256);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 41);
        let config = QueryConfig::for_tests();
        let mut ctx = QueryContext::new();
        for q in queries.iter() {
            let (dtw_ans, _) = exact_search_dtw_with(&index, q, params, &config, &mut ctx);
            let (_, bf) = brute_force_dtw(&data, q, params);
            assert!((dtw_ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
            let (ed_ans, _) = crate::exact::exact_search_with(&index, q, &config, &mut ctx);
            let (_, ed_bf) = data.nearest_neighbor_brute_force(q);
            assert!((ed_ans.dist_sq - ed_bf).abs() <= 1e-3 * ed_bf.max(1.0));
        }
    }
}
