//! Reusable per-worker query scratch.
//!
//! Every query needs a set of concurrent priority queues, a barrier, and
//! a per-query mindist lookup table (16 × 256 floats). Allocating these
//! from scratch per query is noise for one interactive query but real
//! overhead on the batch hot path — ParIS+ (PAPERS.md) attributes part
//! of its win to keeping exactly this machinery allocation-free across
//! queries. A [`QueryContext`] owns the scratch and hands the engine
//! freshly *reset* (not reallocated) views each query.
//!
//! The context is tied to the index lifetime `'a` because the queues
//! hold `LeafRun<'a>` views (spans of one or more member leaves of an
//! arena leaf run — the packed entry slice plus the run's SoA symbol
//! block) between the traversal and processing phases. Create one
//! context per batch (or per pool worker for
//! inter-query parallelism) and pass it to the `*_with` query variants —
//! or let the pooled [`crate::exec::QueryExecutor`] manage a whole
//! `SlotPool` of them (contexts are `Send`, so the lock-free checkout/
//! checkin handoff moves them freely between request threads).
//! [`QueryContext::alloc_events`] counts how many times scratch had to
//! be (re)built, so a steady batch shows a flat counter after its first
//! query.

use crate::config::{QueryConfig, QueuePolicy};
use crate::node::LeafRun;
use messi_sax::convert::SaxConfig;
use messi_sax::mindist::MindistTable;
use messi_sync::{QueueSet, SenseBarrier};

/// What the per-query mindist table should be refilled with.
pub(crate) enum TableSpec<'q> {
    /// A point query's PAA (Euclidean search).
    Point(&'q [f32]),
    /// The PAAs of an LB_Keogh envelope's lower and upper series (DTW).
    Envelope(&'q [f32], &'q [f32]),
}

/// Borrowed, query-ready views into a [`QueryContext`]'s scratch.
pub(crate) struct Scratch<'c, 'a> {
    /// Empty, unfinished queues — `None` for queue-less objectives.
    pub(crate) queues: Option<&'c QueueSet<LeafRun<'a>>>,
    /// A barrier armed for the query's worker count — `None` when no
    /// queue phase (and hence no phase transition) exists.
    pub(crate) barrier: Option<&'c SenseBarrier>,
    /// The per-query lower-bound lookup table, freshly refilled.
    pub(crate) table: &'c MindistTable,
}

/// Reusable scratch for the query engine: queue set, barrier, and
/// mindist table, allocated once and reset between queries.
///
/// ```
/// use messi_core::engine::QueryContext;
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 9));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 9);
///
/// let mut ctx = QueryContext::new();
/// let config = QueryConfig::for_tests();
/// let mut warm = None;
/// for q in queries.iter() {
///     let _ = messi_core::exact::exact_search_with(&index, q, &config, &mut ctx);
///     // After the first query the scratch is warm: later queries reuse
///     // the queue set and mindist table instead of reallocating them.
///     match warm {
///         None => warm = Some(ctx.alloc_events()),
///         Some(w) => assert_eq!(ctx.alloc_events(), w),
///     }
/// }
/// ```
#[derive(Default)]
pub struct QueryContext<'a> {
    queues: Option<QueueSet<LeafRun<'a>>>,
    barrier: Option<SenseBarrier>,
    table: Option<MindistTable>,
    alloc_events: u64,
}

impl<'a> QueryContext<'a> {
    /// Creates an empty context. Nothing is allocated until the first
    /// query prepares it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scratch (re)allocation events so far: building or
    /// growing the queue set, or building a mindist table for a new
    /// segment count. A batch that reuses its context sees this counter
    /// stay flat after the first query — the acceptance signal for the
    /// allocation-free batch hot path.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// Readies the scratch for one query: refills the mindist table per
    /// `spec`, and — when `config` demands a queue phase — resets the
    /// queue set to the effective queue count and re-arms the barrier.
    /// Returns borrowed views whose lifetime pins the context for the
    /// duration of the query.
    pub(crate) fn prepare(
        &mut self,
        sax: SaxConfig,
        spec: TableSpec<'_>,
        queued: Option<&QueryConfig>,
    ) -> Scratch<'_, 'a> {
        match &mut self.table {
            Some(table) if table.segments() == sax.segments => match spec {
                TableSpec::Point(paa) => table.refill(paa, sax),
                TableSpec::Envelope(lower, upper) => table.refill_from_envelope(lower, upper, sax),
            },
            slot => {
                *slot = Some(match spec {
                    TableSpec::Point(paa) => MindistTable::new(paa, sax),
                    TableSpec::Envelope(lower, upper) => {
                        MindistTable::from_envelope(lower, upper, sax)
                    }
                });
                self.alloc_events += 1;
            }
        }

        let uses_queues = queued.is_some();
        if let Some(config) = queued {
            let nq = effective_queue_count(config);
            match &mut self.queues {
                Some(queues) if queues.len() == nq => queues.reset(),
                Some(queues) => {
                    if queues.reset_to(nq) {
                        self.alloc_events += 1;
                    }
                }
                slot => {
                    *slot = Some(QueueSet::new(nq));
                    self.alloc_events += 1;
                }
            }
            match &mut self.barrier {
                Some(barrier) if barrier.parties() == config.num_workers => {}
                Some(barrier) => barrier.reset(config.num_workers),
                slot => *slot = Some(SenseBarrier::new(config.num_workers)),
            }
        }

        Scratch {
            queues: if uses_queues {
                self.queues.as_ref()
            } else {
                None
            },
            barrier: if uses_queues {
                self.barrier.as_ref()
            } else {
                None
            },
            table: self.table.as_ref().expect("table prepared above"),
        }
    }
}

impl std::fmt::Debug for QueryContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryContext")
            .field("queues", &self.queues.as_ref().map(QueueSet::len))
            .field("barrier", &self.barrier.as_ref().map(SenseBarrier::parties))
            .field("table", &self.table.as_ref().map(MindistTable::segments))
            .field("alloc_events", &self.alloc_events)
            .finish()
    }
}

/// The number of priority queues a query actually uses: Nq under the
/// paper's shared design, Ns under the rejected per-worker-local design
/// (each worker owns exactly one queue).
pub(crate) fn effective_queue_count(config: &QueryConfig) -> usize {
    match config.queue_policy {
        QueuePolicy::SharedRoundRobin => config.num_queues,
        QueuePolicy::PerWorkerLocal => config.num_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_moves_between_threads() {
        // The exec layer's SlotPool hands contexts across request
        // threads; this is the compile-time `Send` guarantee that makes
        // that handoff sound.
        fn assert_send<T: Send>() {}
        assert_send::<QueryContext<'static>>();
    }

    #[test]
    fn scratch_is_reused_across_preparations() {
        let sax = SaxConfig::new(8, 64);
        let paa = vec![0.25f32; 8];
        let config = QueryConfig {
            num_workers: 3,
            num_queues: 2,
            ..QueryConfig::for_tests()
        };
        let mut ctx = QueryContext::new();
        {
            let scratch = ctx.prepare(sax, TableSpec::Point(&paa), Some(&config));
            assert_eq!(scratch.queues.unwrap().len(), 2);
            assert_eq!(scratch.barrier.unwrap().parties(), 3);
        }
        let after_first = ctx.alloc_events();
        assert!(after_first > 0);
        // Identical shape: zero further allocation events.
        {
            let _ = ctx.prepare(sax, TableSpec::Point(&paa), Some(&config));
        }
        assert_eq!(ctx.alloc_events(), after_first);
        // Queue-less preparation reuses the table and ignores the queues.
        {
            let scratch = ctx.prepare(sax, TableSpec::Point(&paa), None);
            assert!(scratch.queues.is_none());
            assert!(scratch.barrier.is_none());
        }
        assert_eq!(ctx.alloc_events(), after_first);
        // Growing the queue set is an allocation event; shrinking is not.
        let grown = QueryConfig {
            num_queues: 7,
            ..config.clone()
        };
        {
            let _ = ctx.prepare(sax, TableSpec::Point(&paa), Some(&grown));
        }
        assert_eq!(ctx.alloc_events(), after_first + 1);
        {
            let _ = ctx.prepare(sax, TableSpec::Point(&paa), Some(&config));
        }
        assert_eq!(ctx.alloc_events(), after_first + 1);
    }

    #[test]
    fn per_worker_local_policy_sizes_queues_by_workers() {
        let config = QueryConfig {
            num_workers: 5,
            num_queues: 2,
            queue_policy: QueuePolicy::PerWorkerLocal,
            ..QueryConfig::for_tests()
        };
        assert_eq!(effective_queue_count(&config), 5);
        assert_eq!(
            effective_queue_count(&QueryConfig {
                queue_policy: QueuePolicy::SharedRoundRobin,
                ..config
            }),
            2
        );
    }
}
