//! The shared query driver (Alg. 5–9 generalized).
//!
//! One implementation of MESSI's query skeleton, statically specialized
//! over a [`Metric`] × [`SearchObjective`] pair:
//!
//! 1. **Tree pass** — workers claim root subtrees via Fetch&Inc, prune
//!    nodes whose metric lower bound reaches the objective's bound, and
//!    either insert surviving *leaves* into the shared priority queues
//!    (round-robin, Alg. 7) or — in queue-less mode — scan them on the
//!    spot. Adjacent surviving leaves of the same arena leaf run are
//!    coalesced into one queued [`LeafRun`], so the batched mindist
//!    kernel later sees full 8-wide chunks instead of ~6-entry
//!    fragments (disabled by `MESSI_NO_RUN_BATCH`, per-query policy, or
//!    a δ-budgeted objective — see
//!    [`SearchObjective::coalescing_allowed`]).
//! 2. **Barrier** — queued objectives only: insertion must complete
//!    before ordered processing starts (Alg. 6 line 7).
//! 3. **Queue processing** — pop the minimum-bound run, re-check its
//!    bound (*second filtering*), scan it through the metric's
//!    lower-bound → real-distance cascade, and offer survivors to the
//!    objective. A popped bound at or above the objective's bound
//!    finishes the whole queue; workers hop to the next unfinished queue
//!    with randomization to avoid convoying (§III-B).
//!
//! Coalescing preserves the answers bit for bit: a queued run's key is
//! the *minimum* member-leaf mindist, so second filtering never cuts a
//! run whose best member would have survived alone, and any member with
//! a larger mindist that gets scanned anyway is re-pruned entry by entry
//! (each entry's batched lower bound is at least its leaf's word
//! mindist). The per-entry bound re-fetch and pruning counters are
//! unchanged.
//!
//! The paper's three deliberate contrasts with ParIS-TS (§IV-A) live
//! here once, for every objective: the complete lower-bound pass happens
//! *before* any real distance work, only leaves enter the queues, and
//! popped entries are filtered a second time.
//!
//! Per-phase wall-time collection (Fig. 13) is built into the driver, so
//! every objective — not just 1-NN — reports the same breakdown when
//! [`QueryConfig::collect_breakdown`](crate::config::QueryConfig) is set.

use super::context::Scratch;
use super::metric::Metric;
use super::objective::SearchObjective;
use crate::config::QueuePolicy;
use crate::index::MessiIndex;
use crate::node::{LeafRun, NodeId, TreeArena};
use crate::stats::{LocalStats, SharedQueryStats};
use messi_sync::{ConcurrentMinQueue, Dispenser, QueueSet, SenseBarrier};
use std::time::Instant;

/// Everything one engine run shares across its search workers.
pub(crate) struct Engine<'e, 'a> {
    pub(crate) index: &'a MessiIndex,
    pub(crate) scratch: Scratch<'e, 'a>,
    pub(crate) stats: &'e SharedQueryStats,
    pub(crate) queue_policy: QueuePolicy,
    pub(crate) num_workers: usize,
    pub(crate) collect_breakdown: bool,
    /// Whether adjacent surviving leaves of one run may be coalesced
    /// into a single queued/scanned [`LeafRun`] (the per-query
    /// [`RunBatchPolicy`](crate::config::RunBatchPolicy) and the
    /// `MESSI_NO_RUN_BATCH` escape hatch, resolved by the adapter).
    /// The driver additionally honors the objective's veto.
    pub(crate) coalesce: bool,
}

/// A run of consecutive surviving leaves accumulated during the tree
/// pass, not yet queued/scanned. Holds only ordinals, so it is
/// assembled into a borrowed [`LeafRun`] at flush time.
#[derive(Clone, Copy)]
struct PendingRun {
    run_id: u32,
    ord_lo: u32,
    ord_hi: u32,
    /// Minimum member-leaf mindist — the queue key, so second filtering
    /// is exactly as tight as for the best member alone.
    key: f32,
}

/// Per-worker wall-time accumulators, flushed into the shared stats at
/// worker exit. All zero-cost when breakdown collection is disabled.
#[derive(Default)]
struct PhaseTimers {
    enabled: bool,
    tree_pass_ns: u64,
    pq_insert_ns: u64,
    pq_remove_ns: u64,
    dist_calc_ns: u64,
}

impl PhaseTimers {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            ..Self::default()
        }
    }

    #[inline]
    fn timed<R>(&mut self, slot: fn(&mut Self) -> &mut u64, f: impl FnOnce() -> R) -> R {
        if self.enabled {
            let t = Instant::now();
            let r = f();
            *slot(self) += t.elapsed().as_nanos() as u64;
            r
        } else {
            f()
        }
    }

    fn flush(&self, stats: &SharedQueryStats) {
        if self.enabled {
            stats.tree_pass_ns.add(self.tree_pass_ns);
            stats.pq_insert_ns.add(self.pq_insert_ns);
            stats.pq_remove_ns.add(self.pq_remove_ns);
            stats.dist_calc_ns.add(self.dist_calc_ns);
        }
    }
}

/// Runs the search: dispatches `num_workers` workers over the engine's
/// shared state and blocks until the objective's result is final.
///
/// A single-worker search runs inline — no pool dispatch, no barrier
/// wait — which also makes it cheap to issue from within pool workers
/// (the inter-query parallel batch mode relies on this).
pub(crate) fn run<M: Metric, O: SearchObjective>(
    engine: &Engine<'_, '_>,
    metric: &M,
    objective: &O,
) {
    let dispenser = Dispenser::new(engine.index.arenas.len());
    let worker = |pid: usize| {
        let mut local = LocalStats::default();
        let mut timers = PhaseTimers::new(engine.collect_breakdown);
        let mut results = O::Local::default();
        if O::USES_QUEUES {
            queued_worker(
                engine,
                metric,
                objective,
                &dispenser,
                pid,
                &mut local,
                &mut timers,
                &mut results,
            );
        } else {
            scan_worker(
                engine,
                metric,
                objective,
                &dispenser,
                &mut local,
                &mut timers,
                &mut results,
            );
        }
        objective.absorb(results);
        local.flush(engine.stats);
        timers.flush(engine.stats);
    };
    if engine.num_workers == 1 {
        worker(0);
    } else {
        messi_sync::WorkerPool::global().run(engine.num_workers, &worker);
    }
}

/// One search worker with a queue phase (Alg. 6): subtree traversal,
/// barrier, then queue processing until every queue is finished.
#[allow(clippy::too_many_arguments)]
fn queued_worker<'a, M: Metric, O: SearchObjective>(
    engine: &Engine<'_, 'a>,
    metric: &M,
    objective: &O,
    dispenser: &Dispenser,
    pid: usize,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
    results: &mut O::Local,
) {
    let queues: &QueueSet<LeafRun<'a>> = engine
        .scratch
        .queues
        .expect("queued objective requires queue scratch");
    let barrier: &SenseBarrier = engine
        .scratch
        .barrier
        .expect("queued objective requires a barrier");
    let nq = queues.len();
    let coalesce = engine.coalesce && objective.coalescing_allowed();

    // Phase A: tree pass (Alg. 6 lines 3–6). Under the local-queue
    // policy the cursor is pinned to the worker's own queue and the
    // traversal never advances it. Workers own disjoint subtrees, so a
    // pending run never spans two workers' leaves.
    let t_phase = Instant::now();
    let mut cursor = pid % nq;
    while let Some(i) = dispenser.next() {
        let arena = &engine.index.arenas[i];
        let mut pending: Option<PendingRun> = None;
        insert_subtree(
            engine,
            metric,
            objective,
            queues,
            arena,
            TreeArena::ROOT,
            coalesce,
            &mut pending,
            &mut cursor,
            local,
            timers,
            results,
        );
        if let Some(p) = pending {
            push_pending(engine, queues, arena, p, &mut cursor, local, timers);
        }
    }
    if timers.enabled {
        // Tree-pass time excludes the queue insertions counted separately.
        timers.tree_pass_ns +=
            (t_phase.elapsed().as_nanos() as u64).saturating_sub(timers.pq_insert_ns);
    }

    barrier.wait();

    // Phase B: queue processing (Alg. 6 lines 8–13).
    match engine.queue_policy {
        QueuePolicy::SharedRoundRobin => {
            let mut q = pid % nq;
            // Small xorshift for the randomized queue choice (§I: "workers
            // use randomization to choose the priority queues they will
            // work on").
            let mut rng = (pid as u32).wrapping_mul(0x9E37_79B9) | 1;
            loop {
                process_queue(metric, objective, queues.queue(q), local, timers, results);
                rng ^= rng << 13;
                rng ^= rng >> 17;
                rng ^= rng << 5;
                match queues.next_unfinished(rng as usize % nq) {
                    Some(next) => q = next,
                    None => break,
                }
            }
        }
        QueuePolicy::PerWorkerLocal => {
            // The rejected design: drain only your own queue, then stop —
            // no helping, which is exactly where the load imbalance the
            // paper describes comes from.
            process_queue(metric, objective, queues.queue(pid), local, timers, results);
        }
    }
}

/// One search worker in queue-less mode (fixed-bound objectives): the
/// traversal *is* the whole algorithm — surviving leaves are scanned on
/// the spot (coalesced into runs when allowed), no ordering, no barrier.
fn scan_worker<M: Metric, O: SearchObjective>(
    engine: &Engine<'_, '_>,
    metric: &M,
    objective: &O,
    dispenser: &Dispenser,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
    results: &mut O::Local,
) {
    let coalesce = engine.coalesce && objective.coalescing_allowed();
    let t_phase = Instant::now();
    while let Some(i) = dispenser.next() {
        let arena = &engine.index.arenas[i];
        let mut pending: Option<PendingRun> = None;
        scan_subtree(
            metric,
            objective,
            arena,
            TreeArena::ROOT,
            coalesce,
            &mut pending,
            local,
            timers,
            results,
        );
        if let Some(p) = pending {
            scan_pending(metric, objective, arena, p, local, timers, results);
        }
    }
    if timers.enabled {
        // The leaf scans are counted as distance-calculation time.
        timers.tree_pass_ns +=
            (t_phase.elapsed().as_nanos() as u64).saturating_sub(timers.dist_calc_ns);
    }
}

/// Extends `pending` with the surviving leaf `ord` (mindist `d`) when it
/// is the next consecutive member of the same arena run, else returns
/// the pending run to flush and restarts accumulation at `ord`. With
/// coalescing off, every leaf flushes its predecessor — single-leaf
/// runs, the pre-batching behavior.
#[inline]
fn accumulate(
    arena: &TreeArena,
    pending: &mut Option<PendingRun>,
    coalesce: bool,
    ord: u32,
    d: f32,
) -> Option<PendingRun> {
    let run_id = arena.run_of(ord);
    match pending {
        Some(p) if coalesce && p.run_id == run_id && p.ord_hi == ord => {
            p.ord_hi = ord + 1;
            p.key = p.key.min(d);
            None
        }
        _ => pending.replace(PendingRun {
            run_id,
            ord_lo: ord,
            ord_hi: ord + 1,
            key: d,
        }),
    }
}

/// Pushes an accumulated run onto the queues (timed as queue-insertion
/// work, like the per-leaf pushes it replaces). `inserted` counts
/// member leaves, not queue operations, so the counter is independent
/// of coalescing.
#[inline]
fn push_pending<'a>(
    engine: &Engine<'_, 'a>,
    queues: &QueueSet<LeafRun<'a>>,
    arena: &'a TreeArena,
    p: PendingRun,
    cursor: &mut usize,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
) {
    let run = arena.leaf_run(p.ord_lo, p.ord_hi);
    timers.timed(
        |t| &mut t.pq_insert_ns,
        || match engine.queue_policy {
            QueuePolicy::SharedRoundRobin => queues.push_round_robin(cursor, p.key, run),
            QueuePolicy::PerWorkerLocal => queues.queue(*cursor).push(p.key, run),
        },
    );
    local.inserted += u64::from(p.ord_hi - p.ord_lo);
}

/// Scans an accumulated run immediately (queue-less mode), timed as
/// distance-calculation work.
#[inline]
fn scan_pending<M: Metric, O: SearchObjective>(
    metric: &M,
    objective: &O,
    arena: &TreeArena,
    p: PendingRun,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
    results: &mut O::Local,
) {
    let run = arena.leaf_run(p.ord_lo, p.ord_hi);
    timers.timed(
        |t| &mut t.dist_calc_ns,
        || scan_run(metric, objective, run, local, results),
    );
}

/// Recursive subtree traversal (Alg. 7): prune by node lower bound,
/// insert surviving leaves into the queues round-robin. Queue entries
/// are [`LeafRun`]s — one or more consecutive member leaves of an arena
/// leaf run, viewed through the run's SoA symbol block, all a later
/// scan needs, flat in the arena's pools. The preorder walk visits
/// leaves in ascending ordinal order, which is what lets `pending`
/// coalesce neighbors with a plain consecutiveness check.
#[allow(clippy::too_many_arguments)]
fn insert_subtree<'a, M: Metric, O: SearchObjective>(
    engine: &Engine<'_, 'a>,
    metric: &M,
    objective: &O,
    queues: &QueueSet<LeafRun<'a>>,
    arena: &'a TreeArena,
    id: NodeId,
    coalesce: bool,
    pending: &mut Option<PendingRun>,
    cursor: &mut usize,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
    results: &mut O::Local,
) {
    let d = metric.node_lower_bound(arena.word(id));
    local.lb += 1;
    if d >= objective.bound() {
        objective.on_prune(results, d);
        return; // the whole subtree is pruned
    }
    if arena.is_leaf(id) {
        let ord = arena.leaf_ordinal(id);
        if let Some(p) = accumulate(arena, pending, coalesce, ord, d) {
            push_pending(engine, queues, arena, p, cursor, local, timers);
        }
    } else {
        let (left, right) = arena.children(id);
        insert_subtree(
            engine, metric, objective, queues, arena, left, coalesce, pending, cursor, local,
            timers, results,
        );
        insert_subtree(
            engine, metric, objective, queues, arena, right, coalesce, pending, cursor, local,
            timers, results,
        );
    }
}

/// Queue-less traversal: prune by node lower bound, scan surviving
/// leaves immediately (coalesced into runs when allowed).
#[allow(clippy::too_many_arguments)]
fn scan_subtree<M: Metric, O: SearchObjective>(
    metric: &M,
    objective: &O,
    arena: &TreeArena,
    id: NodeId,
    coalesce: bool,
    pending: &mut Option<PendingRun>,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
    results: &mut O::Local,
) {
    let d = metric.node_lower_bound(arena.word(id));
    local.lb += 1;
    if d >= objective.bound() {
        objective.on_prune(results, d);
        return;
    }
    if arena.is_leaf(id) {
        let ord = arena.leaf_ordinal(id);
        if let Some(p) = accumulate(arena, pending, coalesce, ord, d) {
            scan_pending(metric, objective, arena, p, local, timers, results);
        }
    } else {
        let (left, right) = arena.children(id);
        scan_subtree(
            metric, objective, arena, left, coalesce, pending, local, timers, results,
        );
        scan_subtree(
            metric, objective, arena, right, coalesce, pending, local, timers, results,
        );
    }
}

/// Drains one queue (Alg. 8) until it is empty or its minimum reaches
/// the objective's bound; either way the queue ends marked finished.
fn process_queue<M: Metric, O: SearchObjective>(
    metric: &M,
    objective: &O,
    queue: &ConcurrentMinQueue<LeafRun<'_>>,
    local: &mut LocalStats,
    timers: &mut PhaseTimers,
    results: &mut O::Local,
) {
    loop {
        if queue.is_finished() {
            return;
        }
        let popped = timers.timed(|t| &mut t.pq_remove_ns, || queue.pop_min());
        match popped {
            None => {
                // Insertions ended at the barrier, so empty means done.
                queue.mark_finished();
                return;
            }
            Some((dist, run)) => {
                local.popped += 1;
                if dist >= objective.bound() {
                    // Second filtering: every remaining entry is worse.
                    local.filtered += 1;
                    objective.on_prune(results, dist);
                    queue.mark_finished();
                    return;
                }
                // Budgeted objectives admit member leaves one at a time
                // — exactly one charge per leaf, coalesced or not. (With
                // a finite budget coalescing is vetoed, so runs here are
                // single leaves; the prefix path is pure defense.)
                let mut admitted = 0;
                while admitted < run.leaf_count() && objective.admit_leaf(results) {
                    admitted += 1;
                }
                let vetoed = admitted < run.leaf_count();
                if admitted > 0 {
                    let run = if vetoed { run.prefix(admitted) } else { run };
                    timers.timed(
                        |t| &mut t.dist_calc_ns,
                        || scan_run(metric, objective, run, local, results),
                    );
                }
                if vetoed {
                    // Early termination (δ-budgeted objectives): the
                    // visit budget is spent, so this queue — and, via
                    // the same veto, every other — winds down.
                    queue.mark_finished();
                    return;
                }
            }
        }
    }
}

/// Scans one leaf run (Alg. 9): the metric's first lower bound runs
/// *batched*, 8 entries at a time, over the run's struct-of-arrays
/// symbol block — full-width chunks straddle member-leaf boundaries,
/// which is the whole point of coalescing; each survivor then continues
/// through the metric's remaining cascade and its early-abandoning real
/// distance, offered to the objective on survival. The bound is
/// re-fetched per entry, so a concurrent BSF improvement tightens
/// pruning mid-run exactly as the old entry-at-a-time sweep did, and
/// each per-entry lower bound is computed independently of the chunking
/// (bit-identical whether the entry is scanned alone or mid-run).
#[inline]
fn scan_run<M: Metric, O: SearchObjective>(
    metric: &M,
    objective: &O,
    run: LeafRun<'_>,
    local: &mut LocalStats,
    results: &mut O::Local,
) {
    let n = run.entries.len();
    let mut lbs = [0.0f32; 8];
    let mut base = 0;
    while base < n {
        let len = (n - base).min(8);
        metric.leaf_lower_bounds(&run, base, len, &mut lbs);
        for (lb, entry) in lbs[..len].iter().zip(&run.entries[base..base + len]) {
            local.lb += 1;
            let bound = objective.bound();
            if *lb >= bound {
                continue;
            }
            if let Some(d) = metric.entry_distance(entry, bound, local) {
                if d < bound && objective.offer(results, d, entry.pos) {
                    local.bsf_updates += 1;
                }
            }
        }
        base += len;
    }
}
