//! Distance metrics: how bounds and real distances are computed.
//!
//! The second axis of the engine's (metric × objective) matrix. A
//! [`Metric`] supplies the node-level lower bound used for subtree
//! pruning and the per-entry cascade run on leaf contents: a *batched*
//! mindist pass over the leaf's struct-of-arrays symbol columns (8
//! entries per call, SIMD gathers or the bit-identical scalar twin), then
//! per surviving entry the remaining lower bounds and the
//! early-abandoning real distance — exactly the Fig. 4/Alg. 9 structure
//! for Euclidean search and the three-level
//! `mindist_env ≤ LB_Keogh ≤ DTW` cascade of §IV (Fig. 19) for DTW.
//!
//! Any metric composes with any objective, which is what makes DTW k-NN
//! and DTW ε-range queries fall out of the same driver that answers the
//! paper's Euclidean 1-NN benchmark.
//!
//! Both metrics honor the same [`Kernel`] selection for every level of
//! their cascade (batched mindist, LB_Keogh, real distance), so the
//! Fig. 18 SIMD-vs-SISD ablation is symmetric across ED and DTW — and
//! because every SIMD kernel's scalar twin is bit-identical, forcing
//! either kernel returns the same answers.

use crate::index::MessiIndex;
use crate::node::{LeafEntry, LeafRun};
use crate::stats::LocalStats;
use messi_sax::mindist::{mindist_sq_node, mindist_sq_node_env, MindistTable};
use messi_sax::word::NodeWord;
use messi_series::distance::dtw::{dtw_sq_early_abandon, DtwParams};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::distance::lb_keogh::{lb_keogh_sq_early_abandon_with, Envelope};
use messi_series::distance::Kernel;

/// How the engine computes lower bounds and real distances. Statically
/// dispatched; implementations hold per-query read-only state (query,
/// PAA/envelope, mindist table) by reference.
pub(crate) trait Metric: Sync {
    /// Lower bound for a tree node during traversal (Alg. 7 line 1).
    fn node_lower_bound(&self, word: &NodeWord) -> f32;

    /// Mindist lower bounds for the chunk `[base, base + len)` (with
    /// `len <= 8`) of a leaf run's entry span, written into `out[..len]`
    /// — computed from the run's SoA symbol block, one table gather per
    /// segment, so the cascade's first level streams sequential cache
    /// lines across every member leaf of the run.
    fn leaf_lower_bounds(&self, run: &LeafRun<'_>, base: usize, len: usize, out: &mut [f32; 8]);

    /// Continues the cascade for one entry that survived the batched
    /// mindist: any remaining lower bounds against `bound`, then the
    /// early-abandoning real distance. Returns `None` when a lower bound
    /// pruned the entry. Counts every evaluation in `local`.
    fn entry_distance(&self, entry: &LeafEntry, bound: f32, local: &mut LocalStats) -> Option<f32>;
}

/// Euclidean distance with iSAX mindist lower bounds — the paper's
/// default metric. [`Kernel`] selects the SIMD or the scalar-twin path
/// for both the batched per-entry lower bound (Fig. 18's ablation) and
/// the real-distance kernel.
pub(crate) struct EuclideanMetric<'q> {
    index: &'q MessiIndex,
    query: &'q [f32],
    query_paa: &'q [f32],
    table: &'q MindistTable,
    kernel: Kernel,
    use_simd: bool,
}

impl<'q> EuclideanMetric<'q> {
    pub(crate) fn new(
        index: &'q MessiIndex,
        query: &'q [f32],
        query_paa: &'q [f32],
        table: &'q MindistTable,
        kernel: Kernel,
    ) -> Self {
        Self {
            index,
            query,
            query_paa,
            table,
            kernel,
            use_simd: kernel.uses_simd(),
        }
    }
}

impl Metric for EuclideanMetric<'_> {
    #[inline]
    fn node_lower_bound(&self, word: &NodeWord) -> f32 {
        mindist_sq_node(self.query_paa, &self.index.scales, word)
    }

    #[inline]
    fn leaf_lower_bounds(&self, run: &LeafRun<'_>, base: usize, len: usize, out: &mut [f32; 8]) {
        self.table.mindist_sq_soa(
            run.cols,
            run.stride as usize,
            run.base as usize + base,
            len,
            self.use_simd,
            out,
        );
    }

    #[inline]
    fn entry_distance(&self, entry: &LeafEntry, bound: f32, local: &mut LocalStats) -> Option<f32> {
        local.real += 1;
        Some(ed_sq_early_abandon_with(
            self.kernel,
            self.query,
            self.index.dataset.series(entry.pos as usize),
            bound,
        ))
    }
}

/// Banded DTW with the LB_Keogh envelope cascade (§IV, Fig. 19):
/// envelope mindist on the iSAX summary (batched over the SoA columns),
/// LB_Keogh on the raw candidate, then full banded DTW with early
/// abandoning. LB_Keogh honors the [`Kernel`] selection like the
/// Euclidean kernels do.
pub(crate) struct DtwMetric<'q> {
    index: &'q MessiIndex,
    query: &'q [f32],
    env: &'q Envelope,
    params: DtwParams,
    paa_lower: &'q [f32],
    paa_upper: &'q [f32],
    table: &'q MindistTable,
    kernel: Kernel,
    use_simd: bool,
}

impl<'q> DtwMetric<'q> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: &'q MessiIndex,
        query: &'q [f32],
        env: &'q Envelope,
        params: DtwParams,
        paa_lower: &'q [f32],
        paa_upper: &'q [f32],
        table: &'q MindistTable,
        kernel: Kernel,
    ) -> Self {
        Self {
            index,
            query,
            env,
            params,
            paa_lower,
            paa_upper,
            table,
            kernel,
            use_simd: kernel.uses_simd(),
        }
    }
}

impl Metric for DtwMetric<'_> {
    #[inline]
    fn node_lower_bound(&self, word: &NodeWord) -> f32 {
        mindist_sq_node_env(self.paa_lower, self.paa_upper, &self.index.scales, word)
    }

    #[inline]
    fn leaf_lower_bounds(&self, run: &LeafRun<'_>, base: usize, len: usize, out: &mut [f32; 8]) {
        // Level 1: envelope mindist on the iSAX summaries, batched.
        self.table.mindist_sq_soa(
            run.cols,
            run.stride as usize,
            run.base as usize + base,
            len,
            self.use_simd,
            out,
        );
    }

    #[inline]
    fn entry_distance(&self, entry: &LeafEntry, bound: f32, local: &mut LocalStats) -> Option<f32> {
        // Level 2: LB_Keogh on the raw candidate.
        let candidate = self.index.dataset.series(entry.pos as usize);
        local.lb += 1;
        if lb_keogh_sq_early_abandon_with(self.kernel, self.env, candidate, bound) >= bound {
            return None;
        }
        // Level 3: full banded DTW.
        local.real += 1;
        Some(dtw_sq_early_abandon(
            self.query,
            candidate,
            self.params,
            bound,
        ))
    }
}
