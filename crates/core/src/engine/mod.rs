//! The unified query engine.
//!
//! MESSI's query algorithm (Alg. 5–9) is one skeleton — traverse root
//! subtrees handed out by Fetch&Inc, prune by lower bound, order
//! surviving leaves in shared priority queues, drain them with second
//! filtering, and cascade per-entry lower bounds into early-abandoning
//! real distances. The journal follow-up (*Fast Data Series Indexing for
//! In-Memory Data*) presents 1-NN, k-NN, and approximate search
//! explicitly as instances of that skeleton; this module is the
//! skeleton, written once:
//!
//! * [`driver`](self) — the traversal/queue/drain loops, with a
//!   queue-less mode for fixed-bound objectives and built-in per-phase
//!   time collection (Fig. 13).
//! * `Metric` (private) — how bounds and real distances are computed:
//!   Euclidean with iSAX mindists, or banded DTW with the LB_Keogh
//!   envelope cascade (Fig. 19).
//! * `SearchObjective` (private) — what the query is looking for:
//!   1-NN's shrinking BSF, k-NN's k-th-best bound, range search's fixed
//!   ε², or δ-ε-approximate search's inflated `bsf/(1+ε)²` bound with a
//!   δ-derived early-termination budget.
//! * [`QueryContext`] — reusable scratch (queue set, barrier, mindist
//!   table) so batch workloads stop paying per-query allocations.
//!
//! [`crate::exact`], [`crate::knn`], [`crate::range`], [`crate::dtw`],
//! and [`crate::approximate`] are thin adapters that pick a (metric,
//! objective) pair, seed the bound, and hand control to the driver. Any
//! metric composes with any objective — DTW k-NN, DTW range, and DTW
//! δ-ε-approximate queries cost no extra code.

mod context;
mod driver;
mod metric;
mod objective;

pub use context::QueryContext;

pub(crate) use context::TableSpec;
pub(crate) use driver::{run, Engine};
pub(crate) use metric::{DtwMetric, EuclideanMetric};
pub(crate) use objective::{
    ApproxObjective, KnnObjective, NearestObjective, RangeObjective, ShardSlot, SharedBound,
};
