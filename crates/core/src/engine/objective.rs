//! Search objectives: what a query is looking for.
//!
//! The driver in [`super::driver`] is parameterized by a
//! [`SearchObjective`] that supplies the pruning bound and consumes
//! surviving real distances. The three concrete objectives mirror the
//! three similarity-search primitives of the iSAX index family:
//!
//! * [`NearestObjective`] — exact 1-NN: a scalar shrinking Best-So-Far
//!   (Alg. 5–9), in the atomic or locked flavor of
//!   [`BsfPolicy`](crate::config::BsfPolicy).
//! * [`KnnObjective`] — exact k-NN: the bound is the k-th best distance
//!   held by a shared [`KnnSet`](crate::knn::KnnSet).
//! * [`RangeObjective`] — ε-range: a *fixed* bound, so no priority order
//!   (and hence no queues or barrier) is needed — the driver runs in
//!   queue-less mode and matches are collected instead of minimized.
//! * [`ApproxObjective`] — δ-ε-approximate 1-NN (the journal version's
//!   fourth query mode): a shrinking BSF whose *pruning* bound is the
//!   inflated `bsf/(1+ε)²`, with an optional shared leaf-visit budget
//!   derived from δ that vetoes further queue processing once spent.
//!
//! The unification hinges on one discipline shared by all of them: a
//! lower bound `>= bound()` prunes, and a real distance `< bound()` is
//! offered. For range search the strict comparison is arranged by setting
//! the bound to the smallest float *above* ε², so `d <= ε²` acceptance
//! and `lb > ε²` pruning fall out of the same comparisons the
//! shrinking-bound objectives use.

use crate::config::BsfPolicy;
use crate::exact::QueryAnswer;
use crate::knn::KnnSet;
use crate::shard::global_pos;
use crate::stats::StopReason;
use messi_sync::{AtomicBsf, BestSoFar, Counter, LockedBsf};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, Ordering};

/// A cross-shard best-so-far *distance* (no position): the f32 bits of
/// the tightest squared distance any shard has found, shrunk with a
/// single `fetch_min`. Non-negative floats order like their bit
/// patterns, so the atomic integer min *is* the float min.
///
/// This is the one piece of shared state behind sharded scatter-gather
/// pruning ([`crate::shard`]): every shard's 1-NN/approximate objective
/// publishes its BSF improvements here and reads its pruning bound from
/// here, so a tight early answer in one shard prunes every other
/// shard's traversal. Positions stay shard-local (the gather step
/// globalizes the winning shard's position); k-NN shares its
/// [`KnnSet`] instead, and range search has a fixed bound and shares
/// nothing.
#[derive(Debug)]
pub(crate) struct SharedBound(AtomicU32);

impl SharedBound {
    pub(crate) fn new() -> Self {
        Self(AtomicU32::new(f32::INFINITY.to_bits()))
    }

    /// The current global bound.
    #[inline]
    pub(crate) fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Shrinks the bound to `dist_sq` if tighter. `dist_sq` must be a
    /// non-negative, non-NaN squared distance.
    #[inline]
    pub(crate) fn update_min(&self, dist_sq: f32) {
        self.0.fetch_min(dist_sq.to_bits(), Ordering::AcqRel);
    }
}

/// Where one single-index search sits inside a sharded scatter: the
/// shard's global position offset plus the cross-shard bound it shares
/// (if its objective shares one). [`ShardSlot::solo`] — offset 0, no
/// shared bound — makes every adapter byte-for-byte the classic
/// single-index search, so the solo path pays nothing for shardability.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardSlot<'s> {
    /// Global position of this shard's first series
    /// (see [`crate::shard::global_pos`]).
    pub offset: u64,
    /// Cross-shard 1-NN/approximate bound, when part of a scatter.
    pub shared: Option<&'s SharedBound>,
}

impl ShardSlot<'_> {
    /// The single-index (non-sharded) slot.
    pub(crate) fn solo() -> Self {
        Self {
            offset: 0,
            shared: None,
        }
    }
}

/// BSF implementation selected by [`BsfPolicy`], with static dispatch in
/// the hot paths.
#[derive(Debug)]
pub(crate) enum Bsf {
    Atomic(AtomicBsf),
    Locked(LockedBsf),
}

impl Bsf {
    pub(crate) fn new(policy: BsfPolicy, dist: f32, pos: u32) -> Self {
        match policy {
            BsfPolicy::Atomic => Bsf::Atomic(AtomicBsf::with_initial(dist, pos)),
            BsfPolicy::Locked => Bsf::Locked(LockedBsf::with_initial(dist, pos)),
        }
    }

    #[inline]
    pub(crate) fn load(&self) -> f32 {
        match self {
            Bsf::Atomic(b) => b.load(),
            Bsf::Locked(b) => b.load(),
        }
    }

    #[inline]
    pub(crate) fn update_min(&self, dist: f32, pos: u32) -> bool {
        match self {
            Bsf::Atomic(b) => b.update_min(dist, pos),
            Bsf::Locked(b) => b.update_min(dist, pos),
        }
    }

    #[inline]
    pub(crate) fn load_with_pos(&self) -> (f32, u32) {
        match self {
            Bsf::Atomic(b) => b.load_with_pos(),
            Bsf::Locked(b) => b.load_with_pos(),
        }
    }
}

/// What a query is searching for: the pruning bound and the consumer of
/// surviving real distances. Statically dispatched — each objective
/// compiles its own copy of the driver's hot loops.
pub(crate) trait SearchObjective: Sync {
    /// Per-worker result scratch ([`RangeObjective`] batches hits here to
    /// take its result lock once per worker, not once per match).
    type Local: Default + Send;

    /// Whether the ordered queue phase is needed. `false` selects the
    /// driver's queue-less mode: surviving leaves are scanned directly
    /// during traversal, with no priority queues and no barrier.
    const USES_QUEUES: bool;

    /// Current pruning bound: a lower bound `>= bound()` cannot
    /// contribute; a real distance `< bound()` is offered.
    fn bound(&self) -> f32;

    /// Offers a surviving real distance. Returns `true` when the global
    /// result (and therefore the bound) improved — the driver counts
    /// these as BSF updates.
    fn offer(&self, local: &mut Self::Local, dist_sq: f32, pos: u32) -> bool;

    /// Notifies the objective that a candidate (a tree node during
    /// traversal, or a popped queue entry at second filtering) with lower
    /// bound `lb` was pruned by [`SearchObjective::bound`]. Exact
    /// objectives ignore it; the approximate objective uses it to count
    /// prunes that only its ε-inflated bound allowed.
    #[inline]
    fn on_prune(&self, _local: &mut Self::Local, _lb: f32) {}

    /// Asks permission to scan one more leaf during queue processing.
    /// Returning `false` finishes the worker's current queue — the early
    /// termination hook of the δ-budgeted approximate objective. Exact
    /// objectives always proceed. The driver charges one call per
    /// *member leaf* of a popped run, so accounting is independent of
    /// coalescing.
    #[inline]
    fn admit_leaf(&self, _local: &mut Self::Local) -> bool {
        true
    }

    /// Whether the driver may coalesce adjacent surviving leaves into
    /// multi-leaf queued runs for this objective. Exact objectives
    /// always allow it (run keys are member-minimum mindists, so
    /// pruning and answers are unchanged); a δ-budgeted objective
    /// vetoes it, because the budget's *order* of leaf charges — and
    /// hence which leaves a tiny budget reaches — must match the
    /// per-leaf schedule exactly.
    #[inline]
    fn coalescing_allowed(&self) -> bool {
        true
    }

    /// Folds a worker's local results into the shared result at worker
    /// exit.
    fn absorb(&self, local: Self::Local);
}

/// Exact 1-NN: a scalar shrinking BSF seeded by the approximate search.
///
/// Inside a sharded scatter the objective additionally mirrors every BSF
/// improvement into the cross-shard [`SharedBound`] and prunes against
/// it. The shared bound is the min over *all* shards' offers and seeds,
/// so it is always `<=` the local BSF — pruning against it is both
/// correct (it can never undercut the true global answer distance) and
/// strictly tighter than the local bound.
#[derive(Debug)]
pub(crate) struct NearestObjective<'s> {
    bsf: Bsf,
    shared: Option<&'s SharedBound>,
}

impl<'s> NearestObjective<'s> {
    pub(crate) fn new(
        policy: BsfPolicy,
        dist_sq: f32,
        pos: u32,
        shared: Option<&'s SharedBound>,
    ) -> Self {
        Self {
            bsf: Bsf::new(policy, dist_sq, pos),
            shared,
        }
    }

    /// The final shard-local `(squared distance, position)` answer.
    pub(crate) fn answer(&self) -> (f32, u32) {
        self.bsf.load_with_pos()
    }
}

impl SearchObjective for NearestObjective<'_> {
    type Local = ();
    const USES_QUEUES: bool = true;

    #[inline]
    fn bound(&self) -> f32 {
        match self.shared {
            Some(shared) => shared.load(),
            None => self.bsf.load(),
        }
    }

    #[inline]
    fn offer(&self, _local: &mut (), dist_sq: f32, pos: u32) -> bool {
        let improved = self.bsf.update_min(dist_sq, pos);
        if improved {
            if let Some(shared) = self.shared {
                shared.update_min(dist_sq);
            }
        }
        improved
    }

    fn absorb(&self, _local: ()) {}
}

/// Exact k-NN: the bound is the k-th best distance of a shared
/// [`KnnSet`] (`+inf` until k candidates exist).
///
/// Under sharding the *same* `KnnSet` is shared by every shard's
/// objective — the k-th-best bound is then automatically the global one
/// — and `offset` globalizes the shard-local positions on the way in
/// (shard ranges are disjoint, so the set's position dedup still
/// works). Solo searches pass offset 0, making globalization the
/// identity.
pub(crate) struct KnnObjective<'s> {
    set: &'s KnnSet,
    /// Global position of this shard's first series; 0 when solo.
    offset: u64,
}

impl<'s> KnnObjective<'s> {
    pub(crate) fn new(set: &'s KnnSet, offset: u64) -> Self {
        Self { set, offset }
    }
}

impl SearchObjective for KnnObjective<'_> {
    type Local = ();
    const USES_QUEUES: bool = true;

    #[inline]
    fn bound(&self) -> f32 {
        self.set.bound()
    }

    #[inline]
    fn offer(&self, _local: &mut (), dist_sq: f32, pos: u32) -> bool {
        self.set.offer(dist_sq, global_pos(self.offset, pos))
    }

    fn absorb(&self, _local: ()) {}
}

/// ε-range: a fixed bound; every surviving distance is a match.
///
/// Range shares nothing across shards — the bound never moves — so the
/// only shard awareness is `offset`, which globalizes hit positions as
/// they are recorded (identity when solo).
#[derive(Debug)]
pub(crate) struct RangeObjective {
    /// `next_up(ε²)` — fixed for the whole query, so the driver's strict
    /// comparisons accept `d <= ε²` and prune `lb > ε²` exactly.
    bound: f32,
    /// Global position of this shard's first series; 0 when solo.
    offset: u64,
    hits: Mutex<Vec<QueryAnswer>>,
}

impl RangeObjective {
    /// # Panics
    ///
    /// Panics if `epsilon_sq` is negative or NaN.
    pub(crate) fn new(epsilon_sq: f32, offset: u64) -> Self {
        assert!(
            epsilon_sq >= 0.0 && !epsilon_sq.is_nan(),
            "epsilon_sq must be a non-negative number"
        );
        Self {
            bound: next_up(epsilon_sq),
            offset,
            hits: Mutex::new(Vec::new()),
        }
    }

    /// All matches, ascending by distance (position breaks ties).
    pub(crate) fn into_sorted(self) -> Vec<QueryAnswer> {
        let mut answers = self.hits.into_inner();
        answers.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos)));
        answers
    }
}

impl SearchObjective for RangeObjective {
    type Local = Vec<QueryAnswer>;
    const USES_QUEUES: bool = false;

    #[inline]
    fn bound(&self) -> f32 {
        self.bound
    }

    #[inline]
    fn offer(&self, local: &mut Vec<QueryAnswer>, dist_sq: f32, pos: u32) -> bool {
        local.push(QueryAnswer {
            pos: global_pos(self.offset, pos),
            dist_sq,
        });
        // The bound is fixed: finding a match never improves it, so range
        // queries report zero BSF updates (there is no BSF).
        false
    }

    fn absorb(&self, local: Vec<QueryAnswer>) {
        if !local.is_empty() {
            self.hits.lock().extend(local);
        }
    }
}

/// Per-worker scratch of [`ApproxObjective`]: accounting accumulated in
/// plain registers and absorbed into the shared counters at worker exit.
#[derive(Debug, Default)]
pub(crate) struct ApproxLocal {
    /// Prunes that only the ε-inflated bound allowed (`lb < bsf` but
    /// `lb >= bsf/(1+ε)²`).
    inflation_prunes: u64,
}

/// δ-ε-approximate 1-NN: the journal paper's probabilistic query mode as
/// a fourth objective over the same driver.
///
/// Two deviations from [`NearestObjective`], both vanishing at the exact
/// corner `ε = 0, δ = 1`:
///
/// * **ε-inflated pruning** — [`SearchObjective::bound`] returns
///   `bsf/(1+ε)²` instead of the raw BSF (all values squared distances),
///   so any candidate it prunes has true squared distance
///   `>= bsf_final/(1+ε)²`; the returned answer is within
///   `(1+ε)` of the true nearest neighbor *in distance terms* whenever
///   the traversal runs to completion. At `ε = 0` the scale factor is
///   exactly `1.0`, making every comparison bit-identical to exact
///   search.
/// * **δ-derived visit budget** — an optional shared countdown of queue-
///   phase leaf scans. Once spent, [`SearchObjective::admit_leaf`] vetoes
///   further scanning and the queues wind down; the best-so-far at that
///   point is the answer. The budget is `ceil(δ · total leaves)` (chosen
///   by the adapter), so `δ = 1` can never exhaust it — every queued
///   leaf is admitted at most once — and the guarantee degrades
///   gracefully as δ shrinks: each queue is drained best-bound-first, so
///   the budget goes to (approximately, under the multi-queue
///   configuration — exactly, single-queue) the most promising leaves.
///
/// Under sharding the ε-inflation composes with the cross-shard
/// [`SharedBound`]: the pruning bound becomes `shared/(1+ε)²`, and BSF
/// improvements are mirrored into the shared bound (raw, uninflated —
/// the inflation is applied at read time, once). The δ budget stays
/// per-shard: each shard's budget is derived from *its own* leaf count.
pub(crate) struct ApproxObjective<'s> {
    bsf: Bsf,
    /// Cross-shard raw BSF, when part of a sharded scatter.
    shared: Option<&'s SharedBound>,
    /// `(1+ε)⁻²`, multiplied into the BSF to form the pruning bound.
    /// Exactly `1.0` when ε = 0.
    bound_scale: f32,
    /// Remaining queue-phase leaf-visit budget; `None` = unlimited
    /// (δ = 1).
    budget: Option<AtomicI64>,
    /// Set when the budget ran out before the queues drained naturally.
    exhausted: AtomicBool,
    /// Total ε-inflation prunes, folded in at worker exit.
    inflation_prunes: Counter,
}

impl<'s> ApproxObjective<'s> {
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or non-finite.
    pub(crate) fn new(
        policy: BsfPolicy,
        dist_sq: f32,
        pos: u32,
        epsilon: f32,
        budget: Option<u64>,
        shared: Option<&'s SharedBound>,
    ) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon must be a finite non-negative number"
        );
        let one_plus = 1.0 + epsilon;
        Self {
            bsf: Bsf::new(policy, dist_sq, pos),
            shared,
            bound_scale: 1.0 / (one_plus * one_plus),
            budget: budget.map(|b| AtomicI64::new(b.min(i64::MAX as u64) as i64)),
            exhausted: AtomicBool::new(false),
            inflation_prunes: Counter::new(),
        }
    }

    /// The raw (uninflated) BSF this objective prunes relative to: the
    /// cross-shard bound when sharded, the local BSF when solo.
    #[inline]
    fn raw_bound(&self) -> f32 {
        match self.shared {
            Some(shared) => shared.load(),
            None => self.bsf.load(),
        }
    }

    /// The final shard-local `(squared distance, position)` answer.
    pub(crate) fn answer(&self) -> (f32, u32) {
        self.bsf.load_with_pos()
    }

    /// How the queue phase ended.
    pub(crate) fn stop_reason(&self) -> StopReason {
        if self.exhausted.load(Ordering::Acquire) {
            StopReason::BudgetExhausted
        } else {
            StopReason::Completed
        }
    }

    /// Prunes that only the ε-inflated bound allowed (0 when ε = 0).
    pub(crate) fn inflation_prunes(&self) -> u64 {
        self.inflation_prunes.get()
    }
}

impl SearchObjective for ApproxObjective<'_> {
    type Local = ApproxLocal;
    const USES_QUEUES: bool = true;

    #[inline]
    fn bound(&self) -> f32 {
        self.raw_bound() * self.bound_scale
    }

    #[inline]
    fn offer(&self, _local: &mut ApproxLocal, dist_sq: f32, pos: u32) -> bool {
        let improved = self.bsf.update_min(dist_sq, pos);
        if improved {
            if let Some(shared) = self.shared {
                shared.update_min(dist_sq);
            }
        }
        improved
    }

    #[inline]
    fn on_prune(&self, local: &mut ApproxLocal, lb: f32) {
        // The raw BSF would have kept this candidate; only the inflation
        // cut it. Never fires at ε = 0, where bound() == bsf.
        if lb < self.raw_bound() {
            local.inflation_prunes += 1;
        }
    }

    #[inline]
    fn coalescing_allowed(&self) -> bool {
        // A finite δ-budget charges leaves in pop order; coalescing
        // would reorder which leaves a tiny budget reaches. δ = 1
        // (no budget) has nothing to preserve and keeps the batching.
        self.budget.is_none()
    }

    #[inline]
    fn admit_leaf(&self, _local: &mut ApproxLocal) -> bool {
        match &self.budget {
            None => true,
            Some(budget) => {
                if budget.fetch_sub(1, Ordering::AcqRel) > 0 {
                    true
                } else {
                    self.exhausted.store(true, Ordering::Release);
                    false
                }
            }
        }
    }

    fn absorb(&self, local: ApproxLocal) {
        self.inflation_prunes.add(local.inflation_prunes);
    }
}

/// The strict pruning bound for an inclusive radius `x` (non-negative,
/// non-NaN): the smallest f32 whose strict comparisons reproduce the
/// inclusive ones — `d < next_up(x) ⟺ d <= x` for finite distances.
///
/// Edge radii need care: for `x = 0` the result is the smallest positive
/// *subnormal* (so subnormal distances are still excluded, exactly like
/// `d <= 0`), and `x = +inf` maps to itself (incrementing the bit
/// pattern of `+inf` would produce NaN, under which nothing prunes *and*
/// nothing is accepted — an unbounded query would silently return no
/// matches).
#[inline]
fn next_up(x: f32) -> f32 {
    if x == 0.0 {
        f32::from_bits(1)
    } else if x.is_infinite() {
        x
    } else {
        f32::from_bits(x.to_bits() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_up_is_strictly_greater() {
        for x in [0.0f32, 1.0, 123.456, 1e30, f32::MAX] {
            assert!(next_up(x) > x);
        }
    }

    #[test]
    fn next_up_edge_radii() {
        // ε² = 0 must not admit subnormal distances (`d <= 0` semantics).
        let tiny = f32::from_bits(1);
        assert!(tiny >= next_up(0.0), "subnormal admitted at radius 0");
        assert!(0.0 < next_up(0.0));
        // ε² = +inf must keep accepting everything, not become NaN.
        let b = next_up(f32::INFINITY);
        assert!(!b.is_nan());
        assert!(f32::MAX < b, "unbounded radius accepts any finite distance");
    }

    #[test]
    fn range_objective_with_infinite_radius_accepts_everything() {
        let o = RangeObjective::new(f32::INFINITY, 0);
        let mut local = Vec::new();
        assert!(1e30 < o.bound());
        assert!(!o.offer(&mut local, 1e30, 9));
        o.absorb(local);
        assert_eq!(o.into_sorted().len(), 1);
    }

    #[test]
    fn nearest_objective_shrinks_monotonically() {
        let o = NearestObjective::new(BsfPolicy::Atomic, 10.0, 3, None);
        assert_eq!(o.bound(), 10.0);
        assert!(o.offer(&mut (), 4.0, 7));
        assert!(!o.offer(&mut (), 6.0, 9), "worse than bound");
        assert_eq!(o.answer(), (4.0, 7));
    }

    #[test]
    fn range_objective_accepts_boundary_distance() {
        let o = RangeObjective::new(2.0, 0);
        let mut local = Vec::new();
        // `d <= ε²` must pass the driver's strict `d < bound()` test.
        assert!(2.0 < o.bound());
        assert!(2.0f32.to_bits() + 1 >= o.bound().to_bits());
        assert!(!o.offer(&mut local, 2.0, 1), "range has no BSF to update");
        o.absorb(local);
        let hits = o.into_sorted();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pos, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn range_objective_rejects_negative_epsilon() {
        RangeObjective::new(-1.0, 0);
    }

    #[test]
    fn approx_objective_at_exact_corner_matches_nearest() {
        // ε = 0, δ = 1: the bound is the raw BSF bit-for-bit and every
        // leaf is admitted — the NearestObjective contract exactly.
        let o = ApproxObjective::new(BsfPolicy::Atomic, 10.0, 3, 0.0, None, None);
        assert_eq!(o.bound().to_bits(), 10.0f32.to_bits());
        let mut local = ApproxLocal::default();
        assert!(o.admit_leaf(&mut local));
        assert!(o.offer(&mut local, 4.0, 7));
        assert_eq!(o.bound().to_bits(), 4.0f32.to_bits());
        assert!(!o.offer(&mut local, 6.0, 9), "worse than bound");
        o.on_prune(&mut local, 5.0);
        o.absorb(local);
        assert_eq!(o.answer(), (4.0, 7));
        assert_eq!(o.stop_reason(), StopReason::Completed);
        assert_eq!(o.inflation_prunes(), 0, "no inflation at ε = 0");
    }

    #[test]
    fn approx_objective_inflates_the_bound_and_counts_it() {
        let o = ApproxObjective::new(BsfPolicy::Atomic, 9.0, 1, 0.5, None, None);
        // bound = 9 / 1.5² = 4.
        assert!((o.bound() - 4.0).abs() < 1e-6);
        let mut local = ApproxLocal::default();
        // lb in [bound, bsf): pruned only because of the inflation.
        o.on_prune(&mut local, 5.0);
        // lb >= bsf: the raw BSF would have pruned it too.
        o.on_prune(&mut local, 20.0);
        o.absorb(local);
        assert_eq!(o.inflation_prunes(), 1);
    }

    #[test]
    fn approx_objective_budget_vetoes_after_exhaustion() {
        let o = ApproxObjective::new(BsfPolicy::Atomic, 1.0, 0, 0.0, Some(2), None);
        let mut local = ApproxLocal::default();
        assert!(o.admit_leaf(&mut local));
        assert!(o.admit_leaf(&mut local));
        assert!(!o.admit_leaf(&mut local), "budget of 2 spent");
        assert!(!o.admit_leaf(&mut local), "stays vetoed");
        o.absorb(local);
        assert_eq!(o.stop_reason(), StopReason::BudgetExhausted);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn approx_objective_rejects_negative_epsilon() {
        ApproxObjective::new(BsfPolicy::Atomic, 1.0, 0, -0.1, None, None);
    }
}
