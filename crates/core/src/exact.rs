//! Exact 1-NN search (Alg. 5–9, Fig. 4).
//!
//! The MESSI query algorithm in one paragraph: compute the query's iSAX
//! summary; run an *approximate* search down the tree to seed the shared
//! Best-So-Far (BSF); then Ns search workers (1) traverse all root
//! subtrees — handed out by Fetch&Inc — pruning nodes by lower-bound
//! distance and inserting surviving *leaves* into Nq shared priority
//! queues round-robin; (2) after a barrier, repeatedly pop the
//! minimum-bound leaf from a queue, re-check its bound against the BSF
//! (*second filtering*), and scan the leaf: per entry a SIMD lower bound,
//! then a SIMD early-abandoning real distance only if necessary, updating
//! the BSF on improvement. A popped bound ≥ BSF finishes the whole queue
//! (min-heap order); workers then hop to the next unfinished queue,
//! chosen with randomization to avoid convoying. When every queue is
//! finished, the BSF *is* the exact answer.
//!
//! All of that machinery lives in [`crate::engine`], shared with k-NN,
//! range, and DTW search; this module is the thin adapter that pairs the
//! Euclidean metric with the 1-NN objective and seeds the BSF from the
//! approximate search (Fig. 4a).

use crate::config::QueryConfig;
use crate::engine::{
    self, Engine, EuclideanMetric, NearestObjective, QueryContext, ShardSlot, TableSpec,
};
use crate::index::MessiIndex;
use crate::shard::global_pos;
use crate::stats::{QueryStats, SharedQueryStats};
use std::time::Instant;

/// The result of an exact similarity-search query.
///
/// `pos` is a *global* position: u64 so that sharded collections can
/// exceed the per-shard u32 position cap (each shard still stores local
/// u32 positions; see [`crate::shard::global_pos`]). For a single
/// [`MessiIndex`] it is the plain dataset position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// Global position of the nearest series in the dataset.
    pub pos: u64,
    /// Squared distance to it (Euclidean, or DTW for DTW queries).
    pub dist_sq: f32,
}

impl QueryAnswer {
    /// The distance as a metric value (square root of `dist_sq`).
    pub fn distance(&self) -> f32 {
        self.dist_sq.sqrt()
    }
}

/// Exact 1-NN search over `index` (Alg. 5).
///
/// # Panics
///
/// Panics if the query length differs from the indexed series length, or
/// the configuration is invalid.
pub fn exact_search(
    index: &MessiIndex,
    query: &[f32],
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    exact_search_with(index, query, config, &mut QueryContext::new())
}

/// [`exact_search`] with caller-provided scratch: `ctx` is reset (not
/// reallocated) per query, which is how the batch paths run whole
/// workloads without per-query queue or mindist-table allocations.
///
/// # Panics
///
/// As [`exact_search`].
pub fn exact_search_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (QueryAnswer, QueryStats) {
    exact_search_sharded(index, query, config, ctx, ShardSlot::solo())
}

/// [`exact_search_with`] running as one shard of a sharded scatter: hit
/// positions are globalized through `slot.offset` and, when
/// `slot.shared` is set, the BSF is published to / pruned against the
/// cross-shard bound. With [`ShardSlot::solo`] this *is* the
/// single-index search, byte for byte.
pub(crate) fn exact_search_sharded<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    slot: ShardSlot<'_>,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    let t_start = Instant::now();

    // ---- Initialization: summarize the query, seed the BSF (Fig. 4a) ----
    let (query_sax, query_paa) = index.summarize_query(query);
    let (d0, p0) = index.seed_approximate(query, &query_sax, &query_paa, config.kernel);
    if let Some(shared) = slot.shared {
        shared.update_min(d0);
    }
    let objective = NearestObjective::new(config.bsf, d0, p0, slot.shared);
    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Point(&query_paa),
        Some(config),
    );
    let metric = EuclideanMetric::new(index, query, &query_paa, scratch.table, config.kernel);
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    // ---- Search workers (Alg. 6), run by the shared engine ----
    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let (dist_sq, pos) = objective.answer();
    let mut stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    stats.initial_bsf_dist_sq = d0;
    (
        QueryAnswer {
            pos: global_pos(slot.offset, pos),
            dist_sq,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BsfPolicy, IndexConfig};
    use messi_series::distance::Kernel;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn build(count: usize, seed: u64) -> MessiIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        MessiIndex::build(data, &IndexConfig::for_tests()).0
    }

    fn assert_exact(index: &MessiIndex, query: &[f32], config: &QueryConfig) -> QueryStats {
        let (ans, stats) = exact_search(index, query, config);
        let (bf_pos, bf_dist) = index.dataset().nearest_neighbor_brute_force(query);
        assert!(
            (ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
            "dist {} vs brute force {bf_dist}",
            ans.dist_sq
        );
        // Positions may differ only under exact distance ties.
        if ans.pos as usize != bf_pos {
            let d = messi_series::distance::euclidean::ed_sq(
                query,
                index.dataset().series(ans.pos as usize),
            );
            assert!(
                (d - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                "non-tie mismatch"
            );
        }
        stats
    }

    #[test]
    fn exact_on_random_walk_many_queries() {
        let index = build(600, 21);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 10, 21);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            assert_exact(&index, q, &config);
        }
    }

    #[test]
    fn exact_with_single_queue_and_locked_bsf() {
        let index = build(400, 33);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 33);
        let config = QueryConfig {
            num_queues: 1,
            bsf: BsfPolicy::Locked,
            ..QueryConfig::for_tests()
        };
        for q in queries.iter() {
            assert_exact(&index, q, &config);
        }
    }

    #[test]
    fn exact_with_scalar_kernel() {
        let index = build(300, 44);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 44);
        let config = QueryConfig {
            kernel: Kernel::Scalar,
            ..QueryConfig::for_tests()
        };
        for q in queries.iter() {
            assert_exact(&index, q, &config);
        }
    }

    #[test]
    fn exact_across_worker_and_queue_counts() {
        let index = build(500, 55);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 55);
        for workers in [1usize, 2, 7, 16] {
            for queues in [1usize, 2, 5, 31] {
                let config = QueryConfig {
                    num_workers: workers,
                    num_queues: queues,
                    ..QueryConfig::for_tests()
                };
                for q in queries.iter() {
                    assert_exact(&index, q, &config);
                }
            }
        }
    }

    #[test]
    fn member_query_finds_itself() {
        let index = build(200, 66);
        let q = index.dataset().series(17).to_vec();
        let (ans, _) = exact_search(&index, &q, &QueryConfig::for_tests());
        assert_eq!(ans.dist_sq, 0.0);
        assert_eq!(ans.distance(), 0.0);
    }

    #[test]
    fn stats_reflect_pruning() {
        let index = build(800, 77);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 77);
        for q in queries.iter() {
            let stats = assert_exact(&index, q, &QueryConfig::for_tests());
            // Pruning must examine far fewer series than the collection.
            assert!(stats.real_distance_calcs < 800, "no pruning at all?");
            assert!(stats.lb_distance_calcs > 0);
            assert!(stats.total_time.as_nanos() > 0);
            assert!(stats.breakdown.is_none());
        }
    }

    #[test]
    fn breakdown_collection_populates_phases() {
        let index = build(500, 88);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 88);
        let config = QueryConfig {
            collect_breakdown: true,
            ..QueryConfig::for_tests()
        };
        let (_, stats) = exact_search(&index, queries.series(0), &config);
        let b = stats.breakdown.expect("breakdown requested");
        assert!(b.init_ns > 0);
        assert!(b.total_ns() > 0);
    }

    #[test]
    fn duplicate_heavy_dataset_is_searched_exactly() {
        // Many identical series (overflowing leaves) + a few distinct.
        let base = gen::generate(DatasetKind::RandomWalk, 4, 99);
        let mut values = Vec::new();
        for _ in 0..50 {
            values.extend_from_slice(base.series(0));
        }
        for i in 1..4 {
            values.extend_from_slice(base.series(i));
        }
        let data = Arc::new(messi_series::Dataset::from_flat(values, base.series_len()).unwrap());
        let config = IndexConfig {
            leaf_capacity: 8,
            ..IndexConfig::for_tests()
        };
        let (index, _) = MessiIndex::build(data, &config);
        let q = base.series(1).to_vec();
        let (ans, _) = exact_search(&index, &q, &QueryConfig::for_tests());
        assert_eq!(ans.dist_sq, 0.0);
    }

    #[test]
    fn reused_context_answers_stay_exact_and_allocation_free() {
        let index = build(500, 111);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 111);
        let config = QueryConfig::for_tests();
        let mut ctx = QueryContext::new();
        let mut warm = None;
        for q in queries.iter() {
            let (ans, _) = exact_search_with(&index, q, &config, &mut ctx);
            let (_, bf) = index.dataset().nearest_neighbor_brute_force(q);
            assert!((ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
            match warm {
                None => warm = Some(ctx.alloc_events()),
                Some(w) => assert_eq!(
                    ctx.alloc_events(),
                    w,
                    "no scratch allocation after the first query"
                ),
            }
        }
        // The same context serves a different query shape by resetting.
        let wide = QueryConfig {
            num_workers: 2,
            num_queues: 5,
            ..config
        };
        let (ans, _) = exact_search_with(&index, queries.series(0), &wide, &mut ctx);
        let (_, bf) = index
            .dataset()
            .nearest_neighbor_brute_force(queries.series(0));
        assert!((ans.dist_sq - bf).abs() <= 1e-3 * bf.max(1.0));
    }
}
