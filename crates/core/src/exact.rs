//! Exact 1-NN search (Alg. 5–9, Fig. 4).
//!
//! The MESSI query algorithm in one paragraph: compute the query's iSAX
//! summary; run an *approximate* search down the tree to seed the shared
//! Best-So-Far (BSF); then Ns search workers (1) traverse all root
//! subtrees — handed out by Fetch&Inc — pruning nodes by lower-bound
//! distance and inserting surviving *leaves* into Nq shared priority
//! queues round-robin; (2) after a barrier, repeatedly pop the
//! minimum-bound leaf from a queue, re-check its bound against the BSF
//! (*second filtering*), and scan the leaf: per entry a SIMD lower bound,
//! then a SIMD early-abandoning real distance only if necessary, updating
//! the BSF on improvement. A popped bound ≥ BSF finishes the whole queue
//! (min-heap order); workers then hop to the next unfinished queue,
//! chosen with randomization to avoid convoying. When every queue is
//! finished, the BSF *is* the exact answer.
//!
//! The three deliberate contrasts with ParIS-TS (§IV-A) are visible in
//! the code: the complete lower-bound pass happens *before* any real
//! distance work, only leaves enter the queues, and popped entries are
//! filtered a second time.

use crate::config::{BsfPolicy, QueryConfig, QueuePolicy};
use crate::index::MessiIndex;
use crate::node::{LeafNode, Node};
use crate::stats::{LocalStats, QueryStats, SharedQueryStats};
use messi_sax::mindist::{mindist_sq_leaf_scalar, mindist_sq_node, MindistTable};
use messi_sax::word::SaxWord;
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::distance::Kernel;
use messi_sync::{AtomicBsf, BestSoFar, Dispenser, LockedBsf, QueueSet, SenseBarrier};
use std::time::Instant;

/// The result of an exact similarity-search query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// Position of the nearest series in the dataset.
    pub pos: u32,
    /// Squared distance to it (Euclidean, or DTW for DTW queries).
    pub dist_sq: f32,
}

impl QueryAnswer {
    /// The distance as a metric value (square root of `dist_sq`).
    pub fn distance(&self) -> f32 {
        self.dist_sq.sqrt()
    }
}

/// BSF implementation selected by [`BsfPolicy`], with static dispatch in
/// the hot paths.
#[derive(Debug)]
pub(crate) enum Bsf {
    Atomic(AtomicBsf),
    Locked(LockedBsf),
}

impl Bsf {
    pub(crate) fn new(policy: BsfPolicy, dist: f32, pos: u32) -> Self {
        match policy {
            BsfPolicy::Atomic => Bsf::Atomic(AtomicBsf::with_initial(dist, pos)),
            BsfPolicy::Locked => Bsf::Locked(LockedBsf::with_initial(dist, pos)),
        }
    }

    #[inline]
    pub(crate) fn load(&self) -> f32 {
        match self {
            Bsf::Atomic(b) => b.load(),
            Bsf::Locked(b) => b.load(),
        }
    }

    #[inline]
    pub(crate) fn update_min(&self, dist: f32, pos: u32) -> bool {
        match self {
            Bsf::Atomic(b) => b.update_min(dist, pos),
            Bsf::Locked(b) => b.update_min(dist, pos),
        }
    }

    #[inline]
    pub(crate) fn load_with_pos(&self) -> (f32, u32) {
        match self {
            Bsf::Atomic(b) => b.load_with_pos(),
            Bsf::Locked(b) => b.load_with_pos(),
        }
    }
}

/// Per-worker wall-time accumulators, flushed into the shared stats at
/// worker exit. All zero-cost when breakdown collection is disabled.
#[derive(Default)]
struct PhaseTimers {
    enabled: bool,
    tree_pass_ns: u64,
    pq_insert_ns: u64,
    pq_remove_ns: u64,
    dist_calc_ns: u64,
}

impl PhaseTimers {
    #[inline]
    fn timed<R>(&mut self, slot: fn(&mut Self) -> &mut u64, f: impl FnOnce() -> R) -> R {
        if self.enabled {
            let t = Instant::now();
            let r = f();
            *slot(self) += t.elapsed().as_nanos() as u64;
            r
        } else {
            f()
        }
    }
}

/// Everything one query's search workers share.
struct SearchContext<'a> {
    index: &'a MessiIndex,
    query: &'a [f32],
    query_paa: Vec<f32>,
    /// Per-query lower-bound lookup table (SIMD path).
    table: MindistTable,
    bsf: Bsf,
    queues: QueueSet<&'a LeafNode>,
    barrier: SenseBarrier,
    subtree_dispenser: Dispenser,
    stats: SharedQueryStats,
    kernel: Kernel,
    queue_policy: QueuePolicy,
    collect_breakdown: bool,
}

/// Exact 1-NN search over `index` (Alg. 5).
///
/// # Panics
///
/// Panics if the query length differs from the indexed series length, or
/// the configuration is invalid.
pub fn exact_search(
    index: &MessiIndex,
    query: &[f32],
    config: &QueryConfig,
) -> (QueryAnswer, QueryStats) {
    config.validate();
    let t_start = Instant::now();

    // ---- Initialization: summarize the query, seed the BSF (Fig. 4a) ----
    let (query_sax, query_paa) = index.summarize_query(query);
    let (d0, p0) = index.approximate_search(query, &query_sax, &query_paa, config.kernel);
    let table = MindistTable::new(&query_paa, index.sax_config());
    // Local queues (the rejected design) give every worker its own queue.
    let num_queues = match config.queue_policy {
        QueuePolicy::SharedRoundRobin => config.num_queues,
        QueuePolicy::PerWorkerLocal => config.num_workers,
    };
    let ctx = SearchContext {
        index,
        query,
        query_paa,
        table,
        bsf: Bsf::new(config.bsf, d0, p0),
        queues: QueueSet::new(num_queues),
        barrier: SenseBarrier::new(config.num_workers),
        subtree_dispenser: Dispenser::new(index.touched.len()),
        stats: SharedQueryStats::new(),
        kernel: config.kernel,
        queue_policy: config.queue_policy,
        collect_breakdown: config.collect_breakdown,
    };
    let init_ns = t_start.elapsed().as_nanos() as u64;

    // ---- Search workers (Alg. 6) ----
    // Long-lived pool workers instead of per-query spawns: see
    // `messi_sync::pool` for why this preserves the algorithm. A
    // single-worker search runs inline — no dispatch, no barrier wait —
    // which also makes it cheap to issue from within pool workers
    // (the inter-query parallel batch mode relies on this).
    if config.num_workers == 1 {
        search_worker(&ctx, 0);
    } else {
        messi_sync::WorkerPool::global().run(config.num_workers, &|pid| search_worker(&ctx, pid));
    }

    let (dist_sq, pos) = ctx.bsf.load_with_pos();
    let mut stats = ctx.stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    stats.initial_bsf_dist_sq = d0;
    (QueryAnswer { pos, dist_sq }, stats)
}

/// One search worker (Alg. 6): subtree traversal phase, barrier, then
/// queue processing until every queue is finished.
fn search_worker(ctx: &SearchContext<'_>, pid: usize) {
    let nq = ctx.queues.len();
    let mut counters = LocalStats::default();
    let mut timers = PhaseTimers {
        enabled: ctx.collect_breakdown,
        ..PhaseTimers::default()
    };
    // Phase A: tree pass (Alg. 6 lines 3–6). Under the local-queue
    // policy the cursor is pinned to the worker's own queue and the
    // traversal never advances it.
    let t_phase = Instant::now();
    let mut cursor = pid % nq;
    while let Some(i) = ctx.subtree_dispenser.next() {
        let key = ctx.index.touched[i];
        let node = ctx.index.roots[key].as_deref().expect("touched ⇒ present");
        traverse_root_subtree(ctx, node, &mut cursor, &mut counters, &mut timers);
    }
    if ctx.collect_breakdown {
        // Tree-pass time excludes the queue insertions counted separately.
        timers.tree_pass_ns +=
            (t_phase.elapsed().as_nanos() as u64).saturating_sub(timers.pq_insert_ns);
    }

    ctx.barrier.wait();

    // Phase B: queue processing (Alg. 6 lines 8–13).
    match ctx.queue_policy {
        QueuePolicy::SharedRoundRobin => {
            let mut q = pid % nq;
            // Small xorshift for the randomized queue choice (§I: "workers
            // use randomization to choose the priority queues they will
            // work on").
            let mut rng = (pid as u32).wrapping_mul(0x9E37_79B9) | 1;
            loop {
                process_queue(ctx, q, &mut counters, &mut timers);
                rng ^= rng << 13;
                rng ^= rng >> 17;
                rng ^= rng << 5;
                match ctx.queues.next_unfinished(rng as usize % nq) {
                    Some(next) => q = next,
                    None => break,
                }
            }
        }
        QueuePolicy::PerWorkerLocal => {
            // The rejected design: drain only your own queue, then stop —
            // no helping, which is exactly where the load imbalance the
            // paper describes comes from.
            process_queue(ctx, pid, &mut counters, &mut timers);
        }
    }

    // Flush per-worker counters and timers.
    counters.flush(&ctx.stats);
    if ctx.collect_breakdown {
        ctx.stats.tree_pass_ns.add(timers.tree_pass_ns);
        ctx.stats.pq_insert_ns.add(timers.pq_insert_ns);
        ctx.stats.pq_remove_ns.add(timers.pq_remove_ns);
        ctx.stats.dist_calc_ns.add(timers.dist_calc_ns);
    }
}

/// Recursive subtree traversal (Alg. 7): prune by node mindist, insert
/// surviving leaves into the queues round-robin.
fn traverse_root_subtree<'a>(
    ctx: &SearchContext<'a>,
    node: &'a Node,
    cursor: &mut usize,
    counters: &mut LocalStats,
    timers: &mut PhaseTimers,
) {
    let d = mindist_sq_node(&ctx.query_paa, &ctx.index.scales, node.word());
    counters.lb += 1;
    if d >= ctx.bsf.load() {
        return; // the whole subtree is pruned
    }
    match node {
        Node::Leaf(leaf) => {
            timers.timed(
                |t| &mut t.pq_insert_ns,
                || match ctx.queue_policy {
                    QueuePolicy::SharedRoundRobin => {
                        ctx.queues.push_round_robin(cursor, d, leaf);
                    }
                    QueuePolicy::PerWorkerLocal => ctx.queues.queue(*cursor).push(d, leaf),
                },
            );
            counters.inserted += 1;
        }
        Node::Inner(inner) => {
            traverse_root_subtree(ctx, &inner.left, cursor, counters, timers);
            traverse_root_subtree(ctx, &inner.right, cursor, counters, timers);
        }
    }
}

/// Drains queue `q` (Alg. 8) until it is empty or its minimum exceeds the
/// BSF; either way the queue ends marked finished.
fn process_queue(
    ctx: &SearchContext<'_>,
    q: usize,
    counters: &mut LocalStats,
    timers: &mut PhaseTimers,
) {
    let queue = ctx.queues.queue(q);
    loop {
        if queue.is_finished() {
            return;
        }
        let popped = timers.timed(|t| &mut t.pq_remove_ns, || queue.pop_min());
        match popped {
            None => {
                // Insertions ended at the barrier, so empty means done.
                queue.mark_finished();
                return;
            }
            Some((dist, leaf)) => {
                counters.popped += 1;
                if dist >= ctx.bsf.load() {
                    // Second filtering: every remaining entry is worse.
                    counters.filtered += 1;
                    queue.mark_finished();
                    return;
                }
                timers.timed(
                    |t| &mut t.dist_calc_ns,
                    || calculate_real_distance(ctx, leaf, counters),
                );
            }
        }
    }
}

/// Scans one leaf (Alg. 9): per entry, a lower bound against the
/// full-cardinality summary, then an early-abandoning real distance only
/// when the bound does not prune.
fn calculate_real_distance(ctx: &SearchContext<'_>, leaf: &LeafNode, counters: &mut LocalStats) {
    let use_simd = ctx.kernel.uses_simd();
    for e in &leaf.entries {
        counters.lb += 1;
        let bound = ctx.bsf.load();
        let lb = leaf_lower_bound(ctx, &e.sax, use_simd);
        if lb >= bound {
            continue;
        }
        counters.real += 1;
        let d = ed_sq_early_abandon_with(
            ctx.kernel,
            ctx.query,
            ctx.index.dataset.series(e.pos as usize),
            bound,
        );
        if d < bound && ctx.bsf.update_min(d, e.pos) {
            counters.bsf_updates += 1;
        }
    }
}

/// Lower bound of one leaf entry: table lookups (SIMD path) or the
/// branchy per-segment computation (SISD path).
#[inline]
fn leaf_lower_bound(ctx: &SearchContext<'_>, sax: &SaxWord, use_simd: bool) -> f32 {
    if use_simd {
        ctx.table.mindist_sq(sax)
    } else {
        mindist_sq_leaf_scalar(&ctx.query_paa, &ctx.index.scales, sax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn build(count: usize, seed: u64) -> MessiIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        MessiIndex::build(data, &IndexConfig::for_tests()).0
    }

    fn assert_exact(index: &MessiIndex, query: &[f32], config: &QueryConfig) -> QueryStats {
        let (ans, stats) = exact_search(index, query, config);
        let (bf_pos, bf_dist) = index.dataset().nearest_neighbor_brute_force(query);
        assert!(
            (ans.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
            "dist {} vs brute force {bf_dist}",
            ans.dist_sq
        );
        // Positions may differ only under exact distance ties.
        if ans.pos as usize != bf_pos {
            let d = messi_series::distance::euclidean::ed_sq(
                query,
                index.dataset().series(ans.pos as usize),
            );
            assert!(
                (d - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                "non-tie mismatch"
            );
        }
        stats
    }

    #[test]
    fn exact_on_random_walk_many_queries() {
        let index = build(600, 21);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 10, 21);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            assert_exact(&index, q, &config);
        }
    }

    #[test]
    fn exact_with_single_queue_and_locked_bsf() {
        let index = build(400, 33);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 33);
        let config = QueryConfig {
            num_queues: 1,
            bsf: BsfPolicy::Locked,
            ..QueryConfig::for_tests()
        };
        for q in queries.iter() {
            assert_exact(&index, q, &config);
        }
    }

    #[test]
    fn exact_with_scalar_kernel() {
        let index = build(300, 44);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 44);
        let config = QueryConfig {
            kernel: Kernel::Scalar,
            ..QueryConfig::for_tests()
        };
        for q in queries.iter() {
            assert_exact(&index, q, &config);
        }
    }

    #[test]
    fn exact_across_worker_and_queue_counts() {
        let index = build(500, 55);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 55);
        for workers in [1usize, 2, 7, 16] {
            for queues in [1usize, 2, 5, 31] {
                let config = QueryConfig {
                    num_workers: workers,
                    num_queues: queues,
                    ..QueryConfig::for_tests()
                };
                for q in queries.iter() {
                    assert_exact(&index, q, &config);
                }
            }
        }
    }

    #[test]
    fn member_query_finds_itself() {
        let index = build(200, 66);
        let q = index.dataset().series(17).to_vec();
        let (ans, _) = exact_search(&index, &q, &QueryConfig::for_tests());
        assert_eq!(ans.dist_sq, 0.0);
        assert_eq!(ans.distance(), 0.0);
    }

    #[test]
    fn stats_reflect_pruning() {
        let index = build(800, 77);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 77);
        for q in queries.iter() {
            let stats = assert_exact(&index, q, &QueryConfig::for_tests());
            // Pruning must examine far fewer series than the collection.
            assert!(stats.real_distance_calcs < 800, "no pruning at all?");
            assert!(stats.lb_distance_calcs > 0);
            assert!(stats.total_time.as_nanos() > 0);
            assert!(stats.breakdown.is_none());
        }
    }

    #[test]
    fn breakdown_collection_populates_phases() {
        let index = build(500, 88);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 88);
        let config = QueryConfig {
            collect_breakdown: true,
            ..QueryConfig::for_tests()
        };
        let (_, stats) = exact_search(&index, queries.series(0), &config);
        let b = stats.breakdown.expect("breakdown requested");
        assert!(b.init_ns > 0);
        assert!(b.total_ns() > 0);
    }

    #[test]
    fn duplicate_heavy_dataset_is_searched_exactly() {
        // Many identical series (overflowing leaves) + a few distinct.
        let base = gen::generate(DatasetKind::RandomWalk, 4, 99);
        let mut values = Vec::new();
        for _ in 0..50 {
            values.extend_from_slice(base.series(0));
        }
        for i in 1..4 {
            values.extend_from_slice(base.series(i));
        }
        let data = Arc::new(messi_series::Dataset::from_flat(values, base.series_len()).unwrap());
        let config = IndexConfig {
            leaf_capacity: 8,
            ..IndexConfig::for_tests()
        };
        let (index, _) = MessiIndex::build(data, &config);
        let q = base.series(1).to_vec();
        let (ans, _) = exact_search(&index, &q, &QueryConfig::for_tests());
        assert_eq!(ans.dist_sq, 0.0);
    }
}
