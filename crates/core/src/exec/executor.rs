//! The pooled query executor.

use super::spec::{MetricSpec, Objective, QuerySpec, Schedule};
use crate::config::QueryConfig;
use crate::engine::QueryContext;
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::stats::{QueryStats, QueryStatsAggregate};
use messi_series::Dataset;
use messi_sync::{Dispenser, SlotPool, WorkerPool};
use parking_lot::Mutex;

/// A pooled query-execution frontend over one [`MessiIndex`].
///
/// The executor owns a [`SlotPool`] of warm [`QueryContext`]s — one per
/// concurrent query worker, checked out and in without locks — and
/// answers single queries ([`QueryExecutor::run_one`]) and batches
/// ([`QueryExecutor::run_batch`]) for every cell of the
/// [`QuerySpec`] matrix under either [`Schedule`]. After warm-up, the
/// per-query hot path performs zero queue or mindist-table allocations
/// (debug builds assert this through [`QueryContext::alloc_events`]).
///
/// ```
/// use messi_core::exec::{QuerySpec, Schedule};
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 3));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 3);
/// let config = QueryConfig::for_tests();
///
/// let exec = index.executor();
/// // A k-NN batch, queries dispensed across 4 single-threaded workers.
/// let (answers, agg) = exec.run_batch(
///     &queries,
///     &QuerySpec::knn(3),
///     Schedule::InterQuery { parallelism: 4 },
///     &config,
/// );
/// assert_eq!(answers.len(), 6);
/// assert!(answers.iter().all(|a| a.len() == 3));
/// assert_eq!(agg.queries, 6);
///
/// // The same executor serves single-shot queries as a batch of one.
/// let (top1, _) = exec.run_one(queries.series(0), &QuerySpec::exact(), &config);
/// assert_eq!(top1[0], answers[0][0]);
/// ```
#[derive(Debug)]
pub struct QueryExecutor<'a> {
    index: &'a MessiIndex,
    contexts: SlotPool<QueryContext<'a>>,
}

impl<'a> QueryExecutor<'a> {
    /// Creates an executor whose context pool matches the process worker
    /// pool (2 × cores), the capacity a saturating inter-query batch or
    /// server frontend needs.
    pub fn new(index: &'a MessiIndex) -> Self {
        Self::with_capacity(index, 2 * crate::config::available_cores())
    }

    /// Creates an executor holding at most `capacity` warm contexts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(index: &'a MessiIndex, capacity: usize) -> Self {
        Self {
            index,
            contexts: SlotPool::new(capacity),
        }
    }

    /// The index this executor serves.
    pub fn index(&self) -> &'a MessiIndex {
        self.index
    }

    /// Number of currently parked warm contexts.
    pub fn warm_contexts(&self) -> usize {
        self.contexts.parked()
    }

    /// Sum of [`QueryContext::alloc_events`] over the parked contexts —
    /// the observable behind the zero-allocation-after-warm-up tests
    /// (requires exclusive access so no checkout can race the count).
    pub fn warm_alloc_events(&mut self) -> u64 {
        self.contexts.iter_mut().map(|c| c.alloc_events()).sum()
    }

    /// Answers one query: checkout a warm context (or build one cold),
    /// dispatch the spec through the engine, check the context back in.
    ///
    /// Exact 1-NN returns exactly one answer; k-NN up to `k`, ascending;
    /// range every match, ascending.
    ///
    /// # Panics
    ///
    /// Panics if the query length mismatches the index, the configuration
    /// is invalid, `k == 0`, or `epsilon_sq` is negative or NaN.
    pub fn run_one(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats) {
        let mut ctx = self.contexts.checkout().unwrap_or_default();
        let out = answer_one(self.index, query, spec, config, &mut ctx);
        self.contexts.checkin(ctx);
        out
    }

    /// As [`QueryExecutor::run_one`], additionally reporting the
    /// context's allocation-event delta across this query — the
    /// zero-allocation-after-warm-up invariant as a live per-query
    /// observable (0 on a warm context). The serve daemon sums it into
    /// its `messi_query_alloc_events_total` metric, so a dashboard shows
    /// scratch churn the moment a regression ships.
    pub fn run_one_traced(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats, u64) {
        let mut ctx = self.contexts.checkout().unwrap_or_default();
        let before = ctx.alloc_events();
        let (answers, stats) = answer_one(self.index, query, spec, config, &mut ctx);
        let delta = ctx.alloc_events().saturating_sub(before);
        self.contexts.checkin(ctx);
        (answers, stats, delta)
    }

    /// Answers a whole batch of queries under `schedule`.
    ///
    /// Returns one answer list per query, in query order, plus the
    /// aggregate statistics (including the summed Fig. 13 breakdown when
    /// `config.collect_breakdown` is set).
    ///
    /// Under [`Schedule::IntraQuery`] each query uses the full worker
    /// complement of `config`; under [`Schedule::InterQuery`] the queries
    /// are dispensed across `parallelism` pool workers and
    /// `config.num_workers`/`num_queues` are ignored (each query runs
    /// with one worker and one queue).
    ///
    /// # Panics
    ///
    /// As [`QueryExecutor::run_one`]; additionally if an inter-query
    /// schedule's `parallelism` is zero.
    pub fn run_batch(
        &self,
        queries: &Dataset,
        spec: &QuerySpec,
        schedule: Schedule,
        config: &QueryConfig,
    ) -> (Vec<Vec<QueryAnswer>>, QueryStatsAggregate) {
        match schedule {
            Schedule::IntraQuery => self.run_batch_intra(queries, spec, config),
            Schedule::InterQuery { parallelism } => {
                self.run_batch_inter(queries, spec, parallelism, config)
            }
        }
    }

    /// Warms every pool slot: runs `query` once per slot under `spec`,
    /// holding the contexts so each slot is visited exactly once, then
    /// parks them all. A server frontend calls this at startup so the
    /// first real queries already run allocation-free; the zero-alloc
    /// tests use it to make warm-up deterministic.
    pub fn prewarm(&self, query: &[f32], spec: &QuerySpec, config: &QueryConfig) {
        let mut held = Vec::with_capacity(self.contexts.capacity());
        for _ in 0..self.contexts.capacity() {
            let mut ctx = self.contexts.checkout().unwrap_or_default();
            let _ = answer_one(self.index, query, spec, config, &mut ctx);
            held.push(ctx);
        }
        for ctx in held {
            self.contexts.checkin(ctx);
        }
    }

    /// Intra-query scheduling: queries sequential, each parallel inside.
    fn run_batch_intra(
        &self,
        queries: &Dataset,
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<Vec<QueryAnswer>>, QueryStatsAggregate) {
        let mut answers = Vec::with_capacity(queries.len());
        let mut agg = QueryStatsAggregate::default();
        let mut ctx = self.contexts.checkout().unwrap_or_default();
        let mut warm = WarmupCheck::default();
        for q in queries.iter() {
            let (ans, stats) = answer_one(self.index, q, spec, config, &mut ctx);
            warm.observe(&ctx);
            agg.add(&stats);
            answers.push(ans);
        }
        self.contexts.checkin(ctx);
        (answers, agg)
    }

    /// Inter-query scheduling: queries parallel, each sequential inside.
    fn run_batch_inter(
        &self,
        queries: &Dataset,
        spec: &QuerySpec,
        parallelism: usize,
        config: &QueryConfig,
    ) -> (Vec<Vec<QueryAnswer>>, QueryStatsAggregate) {
        assert!(parallelism > 0, "parallelism must be positive");
        let per_query = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            ..config.clone()
        };
        let dispenser = Dispenser::new(queries.len());
        let slots: Vec<Mutex<Option<Vec<QueryAnswer>>>> =
            (0..queries.len()).map(|_| Mutex::new(None)).collect();
        let agg = Mutex::new(QueryStatsAggregate::default());
        WorkerPool::global().run(parallelism.min(queries.len().max(1)), &|_pid| {
            let mut local_agg = QueryStatsAggregate::default();
            let mut ctx = self.contexts.checkout().unwrap_or_default();
            let mut warm = WarmupCheck::default();
            while let Some(qi) = dispenser.next() {
                let (ans, stats) =
                    answer_one(self.index, queries.series(qi), spec, &per_query, &mut ctx);
                warm.observe(&ctx);
                local_agg.add(&stats);
                *slots[qi].lock() = Some(ans);
            }
            agg.lock().merge(&local_agg);
            self.contexts.checkin(ctx);
        });
        let answers = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every query answered"))
            .collect();
        (answers, agg.into_inner())
    }
}

/// The single Metric × Objective dispatch chokepoint: every query in the
/// repository — single-shot or batched, either schedule — funnels through
/// this match into the engine adapters. Adding a metric or an objective
/// means adding one arm here, not a new traversal.
fn answer_one<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    spec: &QuerySpec,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (Vec<QueryAnswer>, QueryStats) {
    match (spec.metric, spec.objective) {
        (MetricSpec::Euclidean, Objective::Exact) => {
            let (ans, stats) = crate::exact::exact_search_with(index, query, config, ctx);
            (vec![ans], stats)
        }
        (MetricSpec::Euclidean, Objective::Knn { k }) => {
            crate::knn::exact_knn_with(index, query, k, config, ctx)
        }
        (MetricSpec::Euclidean, Objective::Range { epsilon_sq }) => {
            crate::range::range_search_with(index, query, epsilon_sq, config, ctx)
        }
        (MetricSpec::Dtw(params), Objective::Exact) => {
            let (ans, stats) = crate::dtw::exact_search_dtw_with(index, query, params, config, ctx);
            (vec![ans], stats)
        }
        (MetricSpec::Dtw(params), Objective::Knn { k }) => {
            crate::knn::exact_knn_dtw_with(index, query, k, params, config, ctx)
        }
        (MetricSpec::Dtw(params), Objective::Range { epsilon_sq }) => {
            crate::range::range_search_dtw_with(index, query, epsilon_sq, params, config, ctx)
        }
        (MetricSpec::Euclidean, Objective::Approx { epsilon, delta }) => {
            let (ans, stats) =
                crate::approximate::approx_search_with(index, query, epsilon, delta, config, ctx);
            (vec![ans], stats)
        }
        (MetricSpec::Dtw(params), Objective::Approx { epsilon, delta }) => {
            let (ans, stats) = crate::approximate::approx_search_dtw_with(
                index, query, epsilon, delta, params, config, ctx,
            );
            (vec![ans], stats)
        }
    }
}

/// Debug-build guard for the pooled zero-allocation invariant: the first
/// observed query may (re)build scratch; every later query in the same
/// checkout must leave the context's allocation counter untouched.
#[derive(Default)]
struct WarmupCheck(Option<u64>);

impl WarmupCheck {
    #[inline]
    fn observe(&mut self, ctx: &QueryContext<'_>) {
        match self.0 {
            None => self.0 = Some(ctx.alloc_events()),
            Some(warm) => debug_assert_eq!(
                ctx.alloc_events(),
                warm,
                "per-query scratch allocation after pooled warm-up"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::distance::dtw::DtwParams;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn setup() -> (Arc<Dataset>, MessiIndex, Dataset) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 350, 17));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 6, 17);
        (data, index, queries)
    }

    fn all_specs(series_len: usize, epsilon_sq: f32) -> Vec<QuerySpec> {
        let params = DtwParams::paper_default(series_len);
        vec![
            QuerySpec::exact(),
            QuerySpec::knn(4),
            QuerySpec::range(epsilon_sq),
            QuerySpec::exact().with_dtw(params),
            QuerySpec::knn(4).with_dtw(params),
            QuerySpec::range(epsilon_sq).with_dtw(params),
        ]
    }

    #[test]
    fn both_schedules_agree_for_every_spec() {
        let (data, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let exec = index.executor();
        // A radius around the first query's 1-NN keeps range non-trivial.
        let (_, nn) = data.nearest_neighbor_brute_force(queries.series(0));
        for spec in all_specs(data.series_len(), nn * 2.0) {
            let (intra, agg_a) = exec.run_batch(&queries, &spec, Schedule::IntraQuery, &config);
            let (inter, agg_b) = exec.run_batch(
                &queries,
                &spec,
                Schedule::InterQuery { parallelism: 4 },
                &config,
            );
            assert_eq!(agg_a.queries, queries.len() as u64);
            assert_eq!(agg_b.queries, queries.len() as u64);
            assert_eq!(intra.len(), inter.len());
            for (qi, (a, b)) in intra.iter().zip(&inter).enumerate() {
                assert_eq!(a.len(), b.len(), "{spec:?} query {qi}");
                for (x, y) in a.iter().zip(b) {
                    assert!(
                        (x.dist_sq - y.dist_sq).abs() <= 1e-3 * y.dist_sq.max(1.0),
                        "{spec:?} query {qi}: {} vs {}",
                        x.dist_sq,
                        y.dist_sq
                    );
                }
            }
        }
    }

    #[test]
    fn run_one_matches_batch_of_one() {
        let (_, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let exec = index.executor();
        for spec in [QuerySpec::exact(), QuerySpec::knn(3)] {
            let (single, _) = exec.run_one(queries.series(0), &spec, &config);
            let one =
                messi_series::Dataset::from_flat(queries.series(0).to_vec(), queries.series_len())
                    .unwrap();
            let (batch, agg) = exec.run_batch(&one, &spec, Schedule::IntraQuery, &config);
            assert_eq!(agg.queries, 1);
            assert_eq!(batch[0].len(), single.len());
            for (a, b) in single.iter().zip(&batch[0]) {
                assert!((a.dist_sq - b.dist_sq).abs() <= 1e-3 * b.dist_sq.max(1.0));
            }
        }
    }

    #[test]
    fn contexts_are_pooled_across_runs() {
        let (_, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let exec = QueryExecutor::with_capacity(&index, 2);
        assert_eq!(exec.warm_contexts(), 0);
        let _ = exec.run_one(queries.series(0), &QuerySpec::exact(), &config);
        assert_eq!(exec.warm_contexts(), 1, "context parked after the query");
        let _ = exec.run_batch(
            &queries,
            &QuerySpec::exact(),
            Schedule::InterQuery { parallelism: 2 },
            &config,
        );
        // Between 1 and `parallelism` contexts end up parked: a worker
        // that starts after another already finished its whole share
        // reuses the same context instead of warming a second one.
        let parked = exec.warm_contexts();
        assert!((1..=2).contains(&parked), "parked {parked} contexts");
    }

    #[test]
    fn prewarm_fills_the_pool_and_later_batches_stay_allocation_free() {
        let (data, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let parallelism = 3;
        let mut exec = QueryExecutor::with_capacity(&index, parallelism);
        exec.prewarm(queries.series(0), &QuerySpec::exact(), &config);
        assert_eq!(exec.warm_contexts(), parallelism);
        let warmed = exec.warm_alloc_events();
        assert!(warmed > 0, "prewarm builds the scratch");

        // Every spec × schedule: the second identical batch must not
        // touch the allocator (the first may reshape queue sets).
        let (_, nn) = data.nearest_neighbor_brute_force(queries.series(0));
        for spec in all_specs(data.series_len(), nn * 2.0) {
            for schedule in [Schedule::IntraQuery, Schedule::InterQuery { parallelism }] {
                let _ = exec.run_batch(&queries, &spec, schedule, &config);
                let after_first = exec.warm_alloc_events();
                let _ = exec.run_batch(&queries, &spec, schedule, &config);
                assert_eq!(
                    exec.warm_alloc_events(),
                    after_first,
                    "{spec:?} {schedule:?}: repeat batch allocated scratch"
                );
            }
        }
    }

    #[test]
    fn traced_queries_report_their_alloc_delta() {
        let (_, index, queries) = setup();
        let config = QueryConfig::for_tests();
        let exec = QueryExecutor::with_capacity(&index, 1);
        // Cold context: the first query builds its scratch.
        let (ans, _, cold_delta) =
            exec.run_one_traced(queries.series(0), &QuerySpec::exact(), &config);
        assert_eq!(ans.len(), 1);
        assert!(cold_delta > 0, "cold query must report its allocations");
        // Warm repeat of the same spec: zero allocations, observable live.
        let (_, _, warm_delta) =
            exec.run_one_traced(queries.series(1), &QuerySpec::exact(), &config);
        assert_eq!(warm_delta, 0, "warm query allocated scratch");
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn rejects_zero_parallelism() {
        let (_, index, queries) = setup();
        let exec = index.executor();
        exec.run_batch(
            &queries,
            &QuerySpec::exact(),
            Schedule::InterQuery { parallelism: 0 },
            &QueryConfig::for_tests(),
        );
    }

    #[test]
    fn executor_is_shareable_across_threads() {
        // The executor (and therefore the slot pool of contexts) must be
        // Sync: a server frontend answers queries from many request
        // threads over one executor.
        fn assert_sync<T: Sync>(_: &T) {}
        let (_, index, queries) = setup();
        let exec = index.executor();
        assert_sync(&exec);
        let config = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            ..QueryConfig::for_tests()
        };
        std::thread::scope(|s| {
            for t in 0..4 {
                let exec = &exec;
                let queries = &queries;
                let config = &config;
                s.spawn(move || {
                    for qi in 0..queries.len() {
                        let (ans, _) = exec.run_one(queries.series(qi), &QuerySpec::knn(2), config);
                        assert_eq!(ans.len(), 2, "thread {t} query {qi}");
                    }
                });
            }
        });
    }
}
