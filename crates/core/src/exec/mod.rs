//! The pooled query-execution layer: one batch/concurrency frontend over
//! the Metric × Objective matrix.
//!
//! MESSI's evaluation measures throughput over *streams* of queries, and
//! the journal follow-up (*Fast Data Series Indexing for In-Memory Data*,
//! VLDBJ) together with ParIS+ frame query answering as a reusable
//! worker-pool **service** with per-worker scratch. This module is that
//! service, layered over the [`crate::engine`] driver:
//!
//! * [`QuerySpec`] — *what* one query computes: an [`Objective`] (exact
//!   1-NN, k-NN, ε-range, or δ-ε-approximate 1-NN) × a [`MetricSpec`]
//!   (Euclidean, banded DTW).
//! * [`Schedule`] — *how* a batch maps onto the workers: intra-query
//!   (the paper's protocol — queries sequential, each using all Ns
//!   workers) or inter-query (queries dispensed across workers, each
//!   answered single-threadedly for throughput).
//! * [`QueryExecutor`] — owns the index handle plus a lock-free
//!   [`messi_sync::SlotPool`] of warm [`crate::engine::QueryContext`]s,
//!   and dispatches any spec under any schedule through **one**
//!   chokepoint. After warm-up the per-query hot path performs zero
//!   queue or mindist-table allocations; [`QueryExecutor::prewarm`]
//!   makes that state reachable before the first real query.
//!
//! Everything above this layer is thin: [`crate::batch`] is two
//! compatibility wrappers, the `MessiIndex::search*` methods are batches
//! of one, and the CLI's `bench-query` subcommand is a command-line
//! spelling of `(QuerySpec, Schedule)`. Everything below is shared: the
//! executor adds **no** traversal logic of its own — each dispatch arm
//! calls the corresponding `*_with` engine adapter.

mod executor;
mod spec;

pub use executor::QueryExecutor;
pub use spec::{MetricSpec, Objective, QuerySpec, Schedule};
