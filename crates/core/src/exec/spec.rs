//! What to run and how to run it: the executor's request vocabulary.
//!
//! A [`QuerySpec`] names a cell of the Metric × Objective matrix the
//! unified engine serves — *what* one query computes. A [`Schedule`]
//! names how a *batch* of such queries maps onto the worker pool. The
//! two axes are deliberately independent: every objective runs under
//! every metric under every schedule, because the executor dispatches
//! them through one chokepoint ([`super::QueryExecutor`]).

use messi_series::distance::dtw::DtwParams;

/// What a query is looking for (the engine's objective axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Exact 1-NN: the single nearest series.
    Exact,
    /// Exact k-NN: the `k` nearest series, ascending by distance.
    Knn {
        /// Number of neighbors (must be positive).
        k: usize,
    },
    /// Exact ε-range: every series with squared distance `<= epsilon_sq`,
    /// ascending.
    Range {
        /// The squared radius (non-negative, non-NaN).
        epsilon_sq: f32,
    },
    /// Approximate 1-NN with error bounds (the journal paper's
    /// ng-approximate and δ-ε-approximate modes): the answer is within
    /// `(1+epsilon)` of the true nearest-neighbor distance with
    /// probability calibrated by `delta`. `delta = 0` is ng-approximate
    /// (the home-leaf answer, no guarantee); `delta = 1` makes the
    /// `(1+epsilon)` bound deterministic; in between, the traversal stops
    /// once a δ-derived leaf-visit budget is spent. At
    /// `epsilon = 0, delta = 1` this is exact search bit-for-bit.
    Approx {
        /// Relative error bound ε ≥ 0 (finite), in *distance* (not
        /// squared) terms.
        epsilon: f32,
        /// Confidence δ ∈ [0, 1].
        delta: f32,
    },
}

/// How distances are measured (the engine's metric axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricSpec {
    /// Euclidean distance with iSAX mindist lower bounds.
    Euclidean,
    /// Banded DTW with the `mindist_env ≤ LB_Keogh ≤ DTW` cascade.
    Dtw(DtwParams),
}

/// One cell of the Metric × Objective matrix: a complete description of
/// what a single query computes.
///
/// ```
/// use messi_core::exec::QuerySpec;
/// use messi_series::distance::dtw::DtwParams;
///
/// let knn_under_dtw = QuerySpec::knn(5).with_dtw(DtwParams::paper_default(256));
/// let radius = QuerySpec::range(2.5);
/// assert_ne!(knn_under_dtw, radius);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// What the query is looking for.
    pub objective: Objective,
    /// How distances are measured.
    pub metric: MetricSpec,
}

impl QuerySpec {
    /// Exact 1-NN under Euclidean distance.
    pub fn exact() -> Self {
        Self {
            objective: Objective::Exact,
            metric: MetricSpec::Euclidean,
        }
    }

    /// Exact k-NN under Euclidean distance.
    pub fn knn(k: usize) -> Self {
        Self {
            objective: Objective::Knn { k },
            metric: MetricSpec::Euclidean,
        }
    }

    /// Exact ε-range under Euclidean distance (`epsilon_sq` is the
    /// *squared* radius).
    pub fn range(epsilon_sq: f32) -> Self {
        Self {
            objective: Objective::Range { epsilon_sq },
            metric: MetricSpec::Euclidean,
        }
    }

    /// δ-ε-approximate 1-NN under Euclidean distance (`epsilon` is the
    /// relative error in distance terms; `delta` the confidence —
    /// see [`Objective::Approx`]).
    pub fn approximate(epsilon: f32, delta: f32) -> Self {
        Self {
            objective: Objective::Approx { epsilon, delta },
            metric: MetricSpec::Euclidean,
        }
    }

    /// The same objective under banded DTW instead of Euclidean distance.
    pub fn with_dtw(self, params: DtwParams) -> Self {
        Self {
            metric: MetricSpec::Dtw(params),
            ..self
        }
    }
}

/// How a batch of queries maps onto the search workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The paper's protocol (§V): queries run one after the other, each
    /// monopolizing the full worker complement of the `QueryConfig` —
    /// minimal single-query latency, the exploratory-analysis scenario.
    IntraQuery,
    /// The throughput protocol: `parallelism` pool workers each answer
    /// whole queries single-threadedly, pulling work via Fetch&Inc from
    /// a shared dispenser — no per-query coordination at all.
    InterQuery {
        /// Number of concurrent single-threaded query workers (must be
        /// positive; capped at the batch size).
        parallelism: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_cover_the_matrix() {
        assert_eq!(QuerySpec::exact().objective, Objective::Exact);
        assert_eq!(QuerySpec::knn(7).objective, Objective::Knn { k: 7 });
        assert_eq!(
            QuerySpec::range(1.5).objective,
            Objective::Range { epsilon_sq: 1.5 }
        );
        assert_eq!(
            QuerySpec::approximate(0.1, 0.9).objective,
            Objective::Approx {
                epsilon: 0.1,
                delta: 0.9
            }
        );
        assert_eq!(QuerySpec::exact().metric, MetricSpec::Euclidean);
        let p = DtwParams { window: 9 };
        let spec = QuerySpec::knn(3).with_dtw(p);
        assert_eq!(spec.metric, MetricSpec::Dtw(p));
        assert_eq!(spec.objective, Objective::Knn { k: 3 }, "objective kept");
        let spec = QuerySpec::approximate(0.2, 0.5).with_dtw(p);
        assert_eq!(spec.metric, MetricSpec::Dtw(p));
        assert_eq!(
            spec.objective,
            Objective::Approx {
                epsilon: 0.2,
                delta: 0.5
            },
            "objective kept"
        );
    }
}
