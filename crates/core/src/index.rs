//! The [`MessiIndex`] handle: the finished tree plus approximate search.

use crate::config::IndexConfig;
use crate::node::{
    assemble_forest, forest_groups, LeafEntry, NodeId, NodeRecord, SubtreeBuilder, TreeArena,
};
use crate::stats::BuildStats;
use messi_sax::convert::{SaxConfig, SaxConverter};
use messi_sax::mindist::mindist_sq_node;
use messi_sax::root_key::{node_word_for_root_key, root_key};
use messi_sax::word::SaxWord;
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::distance::Kernel;
use messi_series::Dataset;
use std::sync::Arc;

/// `slots` sentinel for "this root key has no subtree".
pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// The MESSI in-memory data-series index.
///
/// Holds (an `Arc` to) the raw dataset, the iSAX configuration, and the
/// index tree: up to 2^w root subtrees, each flattened into a
/// [`TreeArena`] (contiguous preorder node records + one packed
/// leaf-entry pool — see [`crate::node`]). Built with
/// [`MessiIndex::build`]; queried with [`MessiIndex::search`] (exact
/// 1-NN), [`MessiIndex::search_knn`], [`MessiIndex::search_range`],
/// [`MessiIndex::search_approximate_bounded`] (δ-ε-approximate 1-NN),
/// or [`crate::dtw`] (exact DTW 1-NN) — all answered by the unified
/// [`crate::engine`] driver. [`crate::persist`] saves and reloads the
/// whole structure as a snapshot file.
#[derive(Debug)]
pub struct MessiIndex {
    pub(crate) dataset: Arc<Dataset>,
    pub(crate) config: IndexConfig,
    pub(crate) sax_config: SaxConfig,
    /// Segment lengths as f32 (mindist scale factors).
    pub(crate) scales: Vec<f32>,
    /// The forest arenas, in ascending key order. Consecutive sparse
    /// root subtrees share one arena under a synthetic trie spine (see
    /// [`crate::node`]'s forest docs); a dense subtree gets its own.
    pub(crate) arenas: Vec<TreeArena>,
    /// Root key → index into `arenas` ([`EMPTY_SLOT`] = empty subtree).
    /// Several member keys of one forest map to the same arena.
    pub(crate) slots: Vec<u32>,
    /// Keys of the non-empty root subtrees, ascending.
    pub(crate) touched: Vec<usize>,
}

impl MessiIndex {
    /// Builds the index over `dataset` (Alg. 1–4). Returns the index and
    /// its construction statistics.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, holds more than `u32::MAX` series
    /// (positions are stored as `u32`), or the configuration is invalid
    /// for its shape.
    pub fn build(dataset: Arc<Dataset>, config: &IndexConfig) -> (Self, BuildStats) {
        crate::build::build_index(dataset, config)
    }

    /// Assembles an index from externally built root subtrees.
    ///
    /// This exists for the ParIS baseline (`messi-baselines`), which
    /// shares the tree *structure* with MESSI but constructs it with its
    /// own (locked-buffer) algorithm, and for [`crate::persist`]'s
    /// snapshot loader. `subtrees` pairs each root key with its arena, in
    /// any order; empty keys are simply absent.
    ///
    /// This is the single grouping chokepoint: consecutive sparse
    /// subtrees are regrouped here into forest arenas by the
    /// deterministic rule shared with validation, so every construction
    /// path (parallel build, baselines, snapshot load) produces the same
    /// forests for the same per-key trees.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate keys, or an invalid
    /// configuration.
    #[doc(hidden)]
    pub fn from_parts(
        dataset: Arc<Dataset>,
        config: IndexConfig,
        mut subtrees: Vec<(usize, TreeArena)>,
    ) -> Self {
        config.validate(dataset.series_len());
        crate::build::assert_positions_fit(&dataset);
        let sax_config = SaxConfig::new(config.segments, dataset.series_len());
        let num_keys = sax_config.num_root_subtrees();
        subtrees.sort_by_key(|(key, _)| *key);
        let mut slots = vec![EMPTY_SLOT; num_keys];
        let mut touched = Vec::with_capacity(subtrees.len());
        for &(key, _) in &subtrees {
            assert!(key < num_keys, "root key {key} out of range (< {num_keys})");
            assert!(touched.last() != Some(&key), "subtree {key} provided twice");
            touched.push(key);
        }
        let counts: Vec<usize> = subtrees.iter().map(|(_, a)| a.num_entries()).collect();
        let groups = forest_groups(&counts);
        let mut arenas = Vec::with_capacity(groups.len());
        let mut remaining = subtrees.into_iter();
        for range in groups {
            let group: Vec<(usize, TreeArena)> = remaining.by_ref().take(range.len()).collect();
            for &(key, _) in &group {
                slots[key] = arenas.len() as u32;
            }
            let arena = if group.len() == 1 {
                group.into_iter().next().expect("one member").1
            } else {
                let parts = group
                    .into_iter()
                    .map(|(key, arena)| {
                        let (nodes, entries) = arena.into_raw();
                        (key, nodes, entries)
                    })
                    .collect();
                assemble_forest(parts, config.segments)
            };
            arenas.push(arena);
        }
        Self {
            scales: messi_sax::mindist::segment_scales(sax_config),
            dataset,
            config,
            sax_config,
            arenas,
            slots,
            touched,
        }
    }

    /// A grown copy of this index over `grown`: the same collection with
    /// `grown.len() - start` new series appended at local positions
    /// `start..grown.len()`, where `start` is the number of series this
    /// index already covers.
    ///
    /// Only root subtrees that receive new entries are rebuilt (through
    /// a [`SubtreeBuilder`], exactly as at build time); every untouched
    /// subtree's nodes and packed entries are carried over verbatim, and
    /// the result is reassembled by [`MessiIndex::from_parts`] so forest
    /// grouping, leaf runs, and SoA columns keep working identically to
    /// a fresh build over the grown collection.
    ///
    /// ## Append-safety invariant (audited for live ingest)
    ///
    /// `grown` must be a **new** `Dataset` whose backing buffer starts
    /// with this index's series bit-for-bit — growth is always
    /// copy-on-grow (see [`Dataset::concat`]). Existing leaf entries
    /// keep their `u32` local positions and simply re-resolve against
    /// `grown`; the old dataset's buffer, and every outstanding query
    /// view pinned to it, stays untouched and valid until its last
    /// `Arc` drops. No code path in this crate grows a `Dataset` buffer
    /// in place, so an in-flight query on the old epoch can never
    /// observe a reallocation.
    ///
    /// Returns [`IngestError::PositionOverflow`] when the grown
    /// collection would exceed the per-index `u32` local-position
    /// ceiling — the runtime (typed) counterpart of the build-time
    /// `assert_positions_fit` panic.
    ///
    /// # Panics
    ///
    /// Panics if `grown` changes the series length or holds fewer than
    /// `start` series.
    ///
    /// [`IngestError::PositionOverflow`]: crate::ingest::IngestError::PositionOverflow
    pub fn insert_batch(
        &self,
        grown: Arc<Dataset>,
        start: usize,
    ) -> Result<Self, crate::ingest::IngestError> {
        use crate::ingest::IngestError;
        assert_eq!(
            grown.series_len(),
            self.dataset.series_len(),
            "grown dataset changes series_len"
        );
        assert!(
            start <= grown.len(),
            "start {start} beyond grown dataset ({})",
            grown.len()
        );
        crate::ingest::check_position_ceiling(start as u64, (grown.len() - start) as u64)?;

        let segments = self.sax_config.segments;
        let mut conv = SaxConverter::new(self.sax_config);
        let mut fresh: std::collections::BTreeMap<usize, Vec<LeafEntry>> =
            std::collections::BTreeMap::new();
        for pos in start..grown.len() {
            let sax = conv.convert(grown.series(pos));
            let key = root_key(&sax, segments);
            fresh.entry(key).or_default().push(LeafEntry {
                sax,
                pos: pos as u32,
            });
        }

        let mut builder = SubtreeBuilder::new(segments, self.config.leaf_capacity);
        let mut subtrees: Vec<(usize, TreeArena)> =
            Vec::with_capacity(self.touched.len() + fresh.len());
        for &key in &self.touched {
            let (nodes, entries) = self.key_raw_parts(key).expect("touched key has a subtree");
            match fresh.remove(&key) {
                // Untouched subtree: re-wrap the existing records and
                // entries verbatim.
                None => {
                    let arena = TreeArena::from_raw(nodes, entries.to_vec())
                        .map_err(IngestError::Corrupt)?;
                    subtrees.push((key, arena));
                }
                // Touched subtree: rebuild from old + new entries.
                Some(new_entries) => {
                    let arena = builder.build_subtree(
                        node_word_for_root_key(key, segments),
                        entries.iter().copied().chain(new_entries),
                    );
                    subtrees.push((key, arena));
                }
            }
        }
        for (key, entries) in fresh {
            let arena = builder.build_subtree(node_word_for_root_key(key, segments), entries);
            subtrees.push((key, arena));
        }
        Ok(Self::from_parts(grown, self.config.clone(), subtrees))
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The build configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The iSAX summarization parameters.
    pub fn sax_config(&self) -> SaxConfig {
        self.sax_config
    }

    /// Mindist scale factors (segment lengths), shared with search code.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of indexed series.
    pub fn num_series(&self) -> usize {
        self.dataset.len()
    }

    /// Keys of non-empty root subtrees.
    pub fn touched_keys(&self) -> &[usize] {
        &self.touched
    }

    /// The arena holding `key`'s subtree, if non-empty. With forest
    /// grouping this may be shared by several member keys — walks that
    /// must stay per-key use [`MessiIndex::key_root`] instead.
    pub fn root(&self, key: usize) -> Option<&TreeArena> {
        match self.slots.get(key) {
            Some(&slot) if slot != EMPTY_SLOT => Some(&self.arenas[slot as usize]),
            _ => None,
        }
    }

    /// All arenas, in ascending key order — the iteration unit for
    /// whole-index sweeps (each leaf appears exactly once, whereas
    /// iterating [`MessiIndex::root`] per touched key revisits a shared
    /// forest arena once per member).
    pub fn arenas(&self) -> &[TreeArena] {
        &self.arenas
    }

    /// The per-key subtree root of `key`, if non-empty: its arena plus
    /// the node id of the first fully refined word on `key`'s path —
    /// the arena root itself for a solo subtree, or the member root
    /// below the synthetic spine of a forest.
    pub fn key_root(&self, key: usize) -> Option<(&TreeArena, NodeId)> {
        let arena = self.root(key)?;
        let segments = self.sax_config.segments;
        let mut id = TreeArena::ROOT;
        loop {
            let word = arena.word(id);
            if (0..segments).all(|s| word.bits(s) >= 1) {
                return Some((arena, id));
            }
            // Synthetic spine nodes are always inner (a group has at
            // least two members); route by the key's bit on the split
            // segment.
            let split = arena.split_segment(id);
            let (left, right) = arena.children(id);
            id = if (key >> (segments - 1 - split)) & 1 == 1 {
                right
            } else {
                left
            };
        }
    }

    /// `key`'s subtree as standalone raw parts (rebased node records +
    /// pool entry slice) — what [`crate::persist`] serializes, sliced
    /// back out of the forest so the on-disk format stays per-key.
    pub(crate) fn key_raw_parts(&self, key: usize) -> Option<(Vec<NodeRecord>, &[LeafEntry])> {
        let (arena, root) = self.key_root(key)?;
        Some(arena.key_subtree_raw(root))
    }

    /// Total leaves in the index.
    pub fn num_leaves(&self) -> usize {
        self.arenas.iter().map(TreeArena::num_leaves).sum()
    }

    /// Total entries stored across all leaf pools (equals
    /// [`MessiIndex::num_series`] for a valid index).
    pub fn num_entries(&self) -> usize {
        self.arenas.iter().map(TreeArena::num_entries).sum()
    }

    /// Height of the tallest root subtree.
    pub fn max_height(&self) -> usize {
        self.arenas.iter().map(TreeArena::height).max().unwrap_or(0)
    }

    /// Per-run shapes across every root subtree, in arena order:
    /// `(member leaves, entries)`. Feeds `messi info`'s run-length
    /// histogram and the layout probe.
    pub fn run_shapes(&self) -> Vec<(usize, usize)> {
        self.arenas.iter().flat_map(TreeArena::run_shapes).collect()
    }

    /// Bytes held by all node arenas (the flat per-subtree node arrays).
    pub fn node_storage_bytes(&self) -> usize {
        self.arenas.iter().map(TreeArena::node_bytes).sum()
    }

    /// Bytes held by all leaf-entry pools.
    pub fn entry_storage_bytes(&self) -> usize {
        self.arenas.iter().map(TreeArena::entry_bytes).sum()
    }

    /// Mean leaf fill factor: stored entries over total leaf capacity.
    pub fn leaf_fill_factor(&self) -> f64 {
        let leaves = self.num_leaves();
        if leaves == 0 {
            return 0.0;
        }
        self.num_entries() as f64 / (leaves * self.config.leaf_capacity) as f64
    }

    /// Creates a pooled [`QueryExecutor`](crate::exec::QueryExecutor)
    /// over this index — the batch/concurrency frontend serving every
    /// objective × metric combination with warm per-worker contexts.
    /// Hold one executor for a whole workload (batches, a server loop);
    /// the `search*` convenience methods below create a transient one
    /// per call.
    pub fn executor(&self) -> crate::exec::QueryExecutor<'_> {
        crate::exec::QueryExecutor::new(self)
    }

    /// Exact 1-NN search (Alg. 5–9): a batch of one through the
    /// [`crate::exec`] layer. Returns the answer and per-query
    /// statistics.
    pub fn search(
        &self,
        query: &[f32],
        config: &crate::config::QueryConfig,
    ) -> (crate::exact::QueryAnswer, crate::stats::QueryStats) {
        let (mut answers, stats) = self.run_single(query, &crate::exec::QuerySpec::exact(), config);
        (answers.pop().expect("exact search always answers"), stats)
    }

    /// Exact k-NN search: the `k` nearest series, ascending by distance.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, the query length mismatches, or the
    /// configuration is invalid.
    pub fn search_knn(
        &self,
        query: &[f32],
        k: usize,
        config: &crate::config::QueryConfig,
    ) -> (Vec<crate::exact::QueryAnswer>, crate::stats::QueryStats) {
        self.run_single(query, &crate::exec::QuerySpec::knn(k), config)
    }

    /// Exact ε-range search: every series with squared distance
    /// `<= epsilon_sq`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon_sq` is negative or NaN, the query length
    /// mismatches, or the configuration is invalid.
    pub fn search_range(
        &self,
        query: &[f32],
        epsilon_sq: f32,
        config: &crate::config::QueryConfig,
    ) -> (Vec<crate::exact::QueryAnswer>, crate::stats::QueryStats) {
        self.run_single(query, &crate::exec::QuerySpec::range(epsilon_sq), config)
    }

    /// Exact DTW 1-NN search with a Sakoe-Chiba band (Fig. 19).
    ///
    /// # Panics
    ///
    /// Panics if the query length mismatches or the configuration is
    /// invalid.
    pub fn search_dtw(
        &self,
        query: &[f32],
        params: messi_series::distance::dtw::DtwParams,
        config: &crate::config::QueryConfig,
    ) -> (crate::exact::QueryAnswer, crate::stats::QueryStats) {
        let spec = crate::exec::QuerySpec::exact().with_dtw(params);
        let (mut answers, stats) = self.run_single(query, &spec, config);
        (answers.pop().expect("exact search always answers"), stats)
    }

    /// Exact k-NN search under banded DTW.
    ///
    /// # Panics
    ///
    /// As [`MessiIndex::search_knn`].
    pub fn search_knn_dtw(
        &self,
        query: &[f32],
        k: usize,
        params: messi_series::distance::dtw::DtwParams,
        config: &crate::config::QueryConfig,
    ) -> (Vec<crate::exact::QueryAnswer>, crate::stats::QueryStats) {
        self.run_single(
            query,
            &crate::exec::QuerySpec::knn(k).with_dtw(params),
            config,
        )
    }

    /// Exact ε-range search under banded DTW.
    ///
    /// # Panics
    ///
    /// As [`MessiIndex::search_range`].
    pub fn search_range_dtw(
        &self,
        query: &[f32],
        epsilon_sq: f32,
        params: messi_series::distance::dtw::DtwParams,
        config: &crate::config::QueryConfig,
    ) -> (Vec<crate::exact::QueryAnswer>, crate::stats::QueryStats) {
        self.run_single(
            query,
            &crate::exec::QuerySpec::range(epsilon_sq).with_dtw(params),
            config,
        )
    }

    /// One query as a batch of one: a single-slot executor answers it so
    /// every public search method funnels through the exec dispatch.
    fn run_single(
        &self,
        query: &[f32],
        spec: &crate::exec::QuerySpec,
        config: &crate::config::QueryConfig,
    ) -> (Vec<crate::exact::QueryAnswer>, crate::stats::QueryStats) {
        crate::exec::QueryExecutor::with_capacity(self, 1).run_one(query, spec, config)
    }

    /// *ng-approximate* 1-NN search ("no guarantees"): one descent to the
    /// query's home leaf and a scan of that leaf only — the operation
    /// MESSI uses to seed its BSF (Alg. 5 line 3 / Fig. 4a), exposed as a
    /// public query mode in the tradition of the iSAX family (ADS+ and
    /// progressive-search front-ends answer from exactly this leaf).
    /// Typically within a few percent of the exact answer (§III-B: "the
    /// initial value of BSF is very close to its final value") at a tiny
    /// fraction of the cost.
    ///
    /// When the query's root subtree is empty, the descent falls back to
    /// the subtree with the smallest node mindist, descending greedily —
    /// the answer is always a real series, never empty.
    ///
    /// This is the `δ = 0` instance of the approximate objective — see
    /// [`MessiIndex::search_approximate_bounded`] for the δ-ε family with
    /// error bounds and statistics (it answers identically at
    /// `epsilon = 0, delta = 0`; this entry point skips the executor
    /// machinery, keeping the cheapest query mode allocation-light).
    /// Callers that already hold the query's iSAX word and PAA (the
    /// exact-search seeding path, the ParIS baselines) use the
    /// `#[doc(hidden)]` [`MessiIndex::seed_approximate`] variant to skip
    /// re-summarizing.
    pub fn search_approximate(&self, query: &[f32], kernel: Kernel) -> crate::exact::QueryAnswer {
        let (sax, paa) = self.summarize_query(query);
        let (dist_sq, pos) = self.seed_approximate(query, &sax, &paa, kernel);
        crate::exact::QueryAnswer {
            pos: u64::from(pos),
            dist_sq,
        }
    }

    /// δ-ε-approximate 1-NN search (journal version of the paper): the
    /// answer is within `(1+epsilon)` of the true nearest-neighbor
    /// *distance* with probability calibrated by `delta`.
    ///
    /// * `delta = 0` — ng-approximate: the home-leaf answer, nothing
    ///   else (no guarantee).
    /// * `0 < delta < 1` — the traversal prunes with the inflated bound
    ///   `bsf/(1+ε)²` and stops once a δ-derived leaf-visit budget
    ///   (`ceil(delta · total leaves)`, spent best-bound-first) runs out.
    /// * `delta = 1` — no early stop: the `(1+epsilon)` guarantee is
    ///   deterministic, and `epsilon = 0` degenerates to exact search
    ///   bit-for-bit.
    ///
    /// `tests/approximate.rs` measures and asserts the guarantee against
    /// brute force. See [`crate::approximate`] for the underlying
    /// adapters and [`QueryStats`](crate::stats::QueryStats) fields
    /// `stop_reason` / `approx_inflation_prunes` for the early-
    /// termination accounting.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or non-finite, `delta` is outside
    /// `[0, 1]`, the query length mismatches, or the configuration is
    /// invalid.
    pub fn search_approximate_bounded(
        &self,
        query: &[f32],
        epsilon: f32,
        delta: f32,
        config: &crate::config::QueryConfig,
    ) -> (crate::exact::QueryAnswer, crate::stats::QueryStats) {
        let spec = crate::exec::QuerySpec::approximate(epsilon, delta);
        let (mut answers, stats) = self.run_single(query, &spec, config);
        (
            answers.pop().expect("approximate search always answers"),
            stats,
        )
    }

    /// δ-ε-approximate 1-NN search under banded DTW: the same contract as
    /// [`MessiIndex::search_approximate_bounded`], with distances (and
    /// the `(1+epsilon)` guarantee) measured in DTW terms.
    ///
    /// # Panics
    ///
    /// As [`MessiIndex::search_approximate_bounded`].
    pub fn search_approximate_bounded_dtw(
        &self,
        query: &[f32],
        epsilon: f32,
        delta: f32,
        params: messi_series::distance::dtw::DtwParams,
        config: &crate::config::QueryConfig,
    ) -> (crate::exact::QueryAnswer, crate::stats::QueryStats) {
        let spec = crate::exec::QuerySpec::approximate(epsilon, delta).with_dtw(params);
        let (mut answers, stats) = self.run_single(query, &spec, config);
        (
            answers.pop().expect("approximate search always answers"),
            stats,
        )
    }

    /// Converts a query series to `(iSAX word, PAA)` using this index's
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the query length differs from the indexed series length.
    pub fn summarize_query(&self, query: &[f32]) -> (SaxWord, Vec<f32>) {
        assert_eq!(
            query.len(),
            self.dataset.series_len(),
            "query length must match indexed series length"
        );
        let mut conv = SaxConverter::new(self.sax_config);
        let (word, paa) = conv.convert_with_paa(query);
        (word, paa.to_vec())
    }

    /// Low-level ng-approximate search for callers that already computed
    /// the query's iSAX word and PAA: returns
    /// `(squared distance, position)` — the initial BSF of Alg. 5. This is
    /// the single objective-backed home-leaf path; the exact-search
    /// seeding, the ParIS baselines, and every approximate mode all
    /// funnel through it (via [`MessiIndex::home_leaf_entries`]).
    #[doc(hidden)]
    pub fn seed_approximate(
        &self,
        query: &[f32],
        query_sax: &SaxWord,
        query_paa: &[f32],
        kernel: Kernel,
    ) -> (f32, u32) {
        self.scan_entries_ed(self.home_leaf_entries(query_sax, query_paa), query, kernel)
    }

    /// Scans a slice of leaf entries with the early-abandoning Euclidean
    /// kernel, returning the best `(squared distance, position)`.
    pub(crate) fn scan_entries_ed(
        &self,
        entries: &[LeafEntry],
        query: &[f32],
        kernel: Kernel,
    ) -> (f32, u32) {
        let mut best = (f32::INFINITY, u32::MAX);
        for e in entries {
            let d = ed_sq_early_abandon_with(
                kernel,
                query,
                self.dataset.series(e.pos as usize),
                best.0,
            );
            if d < best.0 {
                best = (d, e.pos);
            }
        }
        best
    }

    /// The packed entries of the query's *home leaf*: one descent from
    /// the query's root subtree following its summary bits. When the home
    /// subtree is empty the walk falls back to the subtree with the
    /// smallest node mindist and descends greedily by mindist — the
    /// returned leaf always holds real series. This is the one home-leaf
    /// walk in the repository: ED and DTW seeding and all approximate
    /// modes scan exactly this slice (each with its own distance
    /// cascade).
    pub(crate) fn home_leaf_entries(&self, query_sax: &SaxWord, query_paa: &[f32]) -> &[LeafEntry] {
        let segments = self.sax_config.segments;
        let key = root_key(query_sax, segments);
        if let Some(arena) = self.root(key) {
            // The query's key is a member of this arena, so containment
            // holds down the whole walk — through the synthetic spine
            // (whose refined bits are bits all member keys share) and
            // the per-key subtree alike.
            let id = arena.descend_by_sax(TreeArena::ROOT, query_sax, segments);
            return arena.leaf_entries(id);
        }
        // Empty home subtree: greedy-best entry point instead.
        let arena = self
            .arenas
            .iter()
            .min_by(|a, b| {
                let da = mindist_sq_node(query_paa, &self.scales, a.word(TreeArena::ROOT));
                let db = mindist_sq_node(query_paa, &self.scales, b.word(TreeArena::ROOT));
                da.total_cmp(&db)
            })
            .expect("index is never empty");
        let mut id = TreeArena::ROOT;
        while !arena.is_leaf(id) {
            let (left, right) = arena.children(id);
            id = if arena.word(id).contains(query_sax, segments) {
                // On the query's path at this node: follow its summary
                // bit. The step is re-checked every iteration because a
                // path-compressed forest child can refine bits the query
                // disagrees on — the walk then degrades to mindist.
                if arena.word(id).child_of(query_sax, arena.split_segment(id)) {
                    right
                } else {
                    left
                }
            } else {
                // Off the query's own path (fallback entry): pick the
                // closer child by node mindist.
                let dl = mindist_sq_node(query_paa, &self.scales, arena.word(left));
                let dr = mindist_sq_node(query_paa, &self.scales, arena.word(right));
                if dl <= dr {
                    left
                } else {
                    right
                }
            };
        }
        arena.leaf_entries(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};

    fn small_index() -> MessiIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 11));
        let (index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
        index
    }

    #[test]
    fn accessors_are_consistent() {
        let index = small_index();
        assert_eq!(index.num_series(), 400);
        assert!(index.num_leaves() >= 1);
        assert!(index.max_height() >= 1);
        assert!(!index.touched_keys().is_empty());
        for &k in index.touched_keys() {
            assert!(index.root(k).is_some());
        }
        assert_eq!(index.sax_config().segments, 8);
        assert_eq!(index.scales().len(), 8);
        // Arena bookkeeping: every stored entry is accounted for, storage
        // sizes are plausible, fill factor lands in (0, 1].
        assert_eq!(index.num_entries(), 400);
        assert!(index.node_storage_bytes() > 0);
        assert!(index.entry_storage_bytes() >= 400 * std::mem::size_of::<LeafEntry>());
        let fill = index.leaf_fill_factor();
        assert!(fill > 0.0 && fill <= 1.0, "fill factor {fill}");
    }

    #[test]
    fn approximate_search_returns_a_real_series() {
        let index = small_index();
        let queries = gen::queries::generate_queries_with_len(DatasetKind::RandomWalk, 5, 11, 256);
        for q in queries.iter() {
            let (sax, paa) = index.summarize_query(q);
            let (d, pos) = index.seed_approximate(q, &sax, &paa, Kernel::Auto);
            assert!(pos != u32::MAX && (pos as usize) < index.num_series());
            // The approximate answer upper-bounds the true NN distance.
            let (_, true_d) = index.dataset().nearest_neighbor_brute_force(q);
            assert!(d >= true_d - 1e-4, "approx {d} below exact {true_d}?");
            // And it equals the distance to the returned series.
            let check =
                messi_series::distance::euclidean::ed_sq(q, index.dataset().series(pos as usize));
            assert!((check - d).abs() <= 1e-3 * check.max(1.0));
        }
    }

    #[test]
    fn public_approximate_search_upper_bounds_exact() {
        let index = small_index();
        let queries = gen::queries::generate_queries_with_len(DatasetKind::RandomWalk, 4, 12, 256);
        for q in queries.iter() {
            let approx = index.search_approximate(q, Kernel::Auto);
            let (exact, _) = index.search(q, &crate::config::QueryConfig::for_tests());
            assert!(
                approx.dist_sq >= exact.dist_sq - 1e-4 * exact.dist_sq.max(1.0),
                "approximate ({}) must never beat exact ({})",
                approx.dist_sq,
                exact.dist_sq
            );
            assert!((approx.pos as usize) < index.num_series());
        }
    }

    #[test]
    fn approximate_search_finds_exact_match_for_member_query() {
        let index = small_index();
        // A dataset member's approximate search must find distance 0 (its
        // own leaf contains it).
        let q = index.dataset().series(7).to_vec();
        let (sax, paa) = index.summarize_query(&q);
        let (d, pos) = index.seed_approximate(&q, &sax, &paa, Kernel::Auto);
        assert_eq!(d, 0.0);
        // Possibly a different position if duplicates exist; distance must
        // still be exactly zero.
        let check =
            messi_series::distance::euclidean::ed_sq(&q, index.dataset().series(pos as usize));
        assert_eq!(check, 0.0);
    }

    #[test]
    #[should_panic(expected = "query length")]
    fn rejects_wrong_query_length() {
        let index = small_index();
        index.summarize_query(&[0.0; 10]);
    }
}
