//! The [`DeltaIndex`]: an epoch/RCU seam over a
//! [`ShardedIndex`](crate::shard::ShardedIndex) that absorbs appended
//! series while queries keep reading immutable published state.
//!
//! ## The seam
//!
//! At any instant the live index is one **epoch**: an immutable
//! `(index + executor, sealed overlay)` pair behind an `Arc`. Queries
//! clone the current epoch's `Arc` (a brief `RwLock` read for the
//! pointer itself — never held across query work) and run entirely
//! against that snapshot; writers build a *successor* epoch and swap
//! the pointer. Two successor shapes exist:
//!
//! * **Ingest** — the batch is sealed as its own immutable segment and
//!   pushed onto the overlay; the heavy index core is shared with the
//!   previous epoch untouched. O(batch) work, no arena rebuild.
//! * **Republish** — the overlay is flattened: the base collection is
//!   copy-on-grown ([`Dataset::concat`]), only the root subtrees that
//!   received entries are rebuilt
//!   ([`MessiIndex::insert_batch`](crate::MessiIndex::insert_batch) via
//!   [`ShardedIndex::absorb`](crate::shard::ShardedIndex::absorb)), and
//!   a fresh prewarmed executor is published. Old epochs stay valid —
//!   and allocation-free to query — until their last reader drops.
//!
//! Overlay segments are answered by a brute-force scan with the *same*
//! distance kernels the engine uses at an infinite abandon bound, so
//! merged answers are bit-identical to a fresh build over the grown
//! collection (`tests/ingest_equivalence.rs` pins this across the whole
//! objective × metric × schedule matrix).

use super::log::{dataset_fingerprint, DeltaLog, ReplayReport};
use super::{check_position_ceiling, IngestError};
use crate::config::QueryConfig;
use crate::exact::QueryAnswer;
use crate::exec::{MetricSpec, Objective, QuerySpec};
use crate::shard::{ShardedExecutor, ShardedIndex};
use crate::stats::QueryStats;
use messi_series::distance::dtw::dtw_sq_early_abandon;
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::Dataset;
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of the live-ingest layer.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Overlay size (in series) that triggers an inline republish right
    /// after the insert that crossed it. `0` disables the size trigger
    /// (republish only manually or by cadence).
    pub republish_after: usize,
    /// Cadence trigger: when the published core is older than this and
    /// the overlay is non-empty, [`DeltaIndex::maybe_republish`]
    /// flattens it. `None` disables the cadence trigger.
    pub max_epoch_age: Option<Duration>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            republish_after: 4096,
            max_epoch_age: Some(Duration::from_secs(5)),
        }
    }
}

/// What [`DeltaIndex::insert_batch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Series accepted from the batch.
    pub accepted: usize,
    /// Total live series after the insert (base + overlay).
    pub total_series: u64,
    /// Epoch id now published.
    pub epoch: u64,
    /// Whether the insert tripped the size trigger and the overlay was
    /// flattened inline.
    pub republished: bool,
}

/// A point-in-time snapshot of the ingest layer's accounting, the
/// source for the `/metrics` ingest families. `Default` is the all-zero
/// snapshot a daemon without ingest enabled exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Published epoch id (bumps on every insert and republish).
    pub epoch: u64,
    /// Age of the published index core (resets on republish).
    pub epoch_age: Duration,
    /// Series currently in the sealed overlay (not yet flattened).
    pub overlay_series: u64,
    /// Total live series (base + overlay).
    pub total_series: u64,
    /// Ingest batches accepted since boot.
    pub batches: u64,
    /// Series ingested since boot.
    pub series_ingested: u64,
    /// Republishes (overlay flattens) since boot.
    pub republishes: u64,
    /// Total wall-clock spent republishing since boot.
    pub republish_time: Duration,
    /// Current delta-log size in bytes (0 when running without a log).
    pub log_bytes: u64,
}

/// One published epoch: the immutable index core plus the sealed
/// overlay segments appended since the core was built.
struct Epoch {
    core: Arc<EpochCore>,
    /// Sealed overlay segments, oldest first. Each is an independent
    /// immutable `Dataset`; segment series occupy global positions
    /// `core.index.num_series() ..` in arrival order.
    overlay: Vec<Arc<Dataset>>,
    /// Total series across `overlay` (cached).
    overlay_len: u64,
    /// Monotonic epoch id.
    id: u64,
}

impl Epoch {
    fn total_series(&self) -> u64 {
        self.core.index.num_series() + self.overlay_len
    }
}

/// The heavy, shareable part of an epoch: the sharded index and its
/// warm executor. Shared untouched across ingest epochs; replaced by
/// republish.
struct EpochCore {
    /// Declared before `index` so it drops first: it borrows the
    /// `ShardedIndex` heap allocation owned by `index`'s `Arc` through
    /// an erased lifetime (see [`EpochCore::new`]).
    exec: ShardedExecutor<'static>,
    index: Arc<ShardedIndex>,
    /// When this core was published (epoch-age metric and cadence
    /// trigger).
    published_at: Instant,
}

impl EpochCore {
    fn new(index: Arc<ShardedIndex>) -> Arc<Self> {
        let exec = ShardedExecutor::new(&index);
        // SAFETY: `exec` borrows the `ShardedIndex` allocation behind
        // `index`'s `Arc`. The `Arc` is stored in the same struct and
        // outlives `exec` (field order puts `exec` first, so it drops
        // first), and an `Arc`'s pointee never moves. The erased
        // lifetime is never observable: `EpochCore` is private to this
        // module and `exec` is only ever used while `&self` — and
        // therefore `index` — is alive.
        let exec =
            unsafe { std::mem::transmute::<ShardedExecutor<'_>, ShardedExecutor<'static>>(exec) };
        Arc::new(Self {
            exec,
            index,
            published_at: Instant::now(),
        })
    }

    /// Warms every pooled context so first queries on this core are
    /// allocation-free (the serve path asserts this via `alloc_events`).
    fn prewarm(&self, config: &QueryConfig) {
        let query = self.index.dataset().series(0).to_vec();
        self.exec.prewarm(&query, &QuerySpec::exact(), config);
    }
}

/// Writer-side state, serialized under one mutex: the optional delta
/// log handle. (The epoch pointer itself is swapped under its own
/// `RwLock`; this mutex only orders writers against each other.)
struct WriterState {
    log: Option<DeltaLog>,
}

/// A live, growable MESSI index: a [`ShardedIndex`] behind an
/// epoch/RCU seam that accepts appended series
/// ([`DeltaIndex::insert_batch`]) while concurrent queries
/// ([`DeltaIndex::query`]) keep reading immutable published state.
/// See the [module docs](crate::ingest) for the design.
pub struct DeltaIndex {
    /// The published epoch. Readers hold the lock only long enough to
    /// clone the `Arc`; writers only long enough to store a new one.
    published: RwLock<Arc<Epoch>>,
    /// Serializes writers (insert/republish/compact) and owns the log.
    writer: Mutex<WriterState>,
    options: IngestOptions,
    /// Last prewarm configuration — republish warms the fresh executor
    /// with it before the swap, keeping the no-alloc discipline across
    /// epochs.
    warm: Mutex<QueryConfig>,
    batches: AtomicU64,
    series_ingested: AtomicU64,
    republishes: AtomicU64,
    republish_micros: AtomicU64,
    log_bytes: AtomicU64,
}

impl DeltaIndex {
    /// Wraps a built index as epoch 0, without durability (no delta
    /// log — inserts are accepted in memory only).
    pub fn new(index: ShardedIndex, options: IngestOptions) -> Self {
        let core = EpochCore::new(Arc::new(index));
        let epoch = Arc::new(Epoch {
            core,
            overlay: Vec::new(),
            overlay_len: 0,
            id: 0,
        });
        Self {
            published: RwLock::new(epoch),
            writer: Mutex::new(WriterState { log: None }),
            options,
            warm: Mutex::new(QueryConfig::default()),
            batches: AtomicU64::new(0),
            series_ingested: AtomicU64::new(0),
            republishes: AtomicU64::new(0),
            republish_micros: AtomicU64::new(0),
            log_bytes: AtomicU64::new(0),
        }
    }

    /// Wraps a built index with a delta log at `path`: opens (or
    /// creates) the log, validates it belongs to this collection,
    /// replays any surviving batches over the index, and keeps the
    /// handle so every subsequent [`DeltaIndex::insert_batch`] is
    /// appended and fsynced before it becomes queryable.
    ///
    /// The returned [`ReplayReport`] says how many batches were
    /// recovered and whether a torn tail was dropped.
    pub fn with_log(
        index: ShardedIndex,
        options: IngestOptions,
        path: &Path,
    ) -> Result<(Self, ReplayReport), IngestError> {
        let series_len = index.dataset().series_len();
        let base_len = index.dataset().len() as u64;
        let fingerprint = dataset_fingerprint(index.dataset());
        let (log, batches, report) = DeltaLog::open(path, series_len, base_len, fingerprint)?;
        let live = Self::new(index, options);
        for batch in &batches {
            // Replay in memory only — these batches are already in the
            // log (the handle is installed after the loop).
            live.ingest(batch, false)?;
        }
        live.log_bytes.store(log.bytes(), Ordering::Relaxed);
        live.writer.lock().log = Some(log);
        Ok((live, report))
    }

    /// The current epoch snapshot: one brief read-lock to clone the
    /// `Arc`, never held across query work.
    fn snapshot(&self) -> Arc<Epoch> {
        Arc::clone(&self.published.read())
    }

    /// Appends a batch of series to the live index. On return the
    /// batch is durable (fsynced to the delta log, when one is
    /// attached) and visible to every query started afterwards; queries
    /// already in flight keep their pre-insert snapshot. Series are
    /// assigned consecutive global positions starting at the current
    /// total.
    ///
    /// Rejects (typed, atomically — nothing is logged or published on
    /// error): empty batches, shape mismatches, non-finite values, and
    /// batches that would push the absorbing shard past the `u32`
    /// local-position ceiling.
    pub fn insert_batch(&self, batch: &Dataset) -> Result<IngestReport, IngestError> {
        self.ingest(batch, true)
    }

    fn ingest(&self, batch: &Dataset, durable: bool) -> Result<IngestReport, IngestError> {
        if batch.is_empty() {
            return Err(IngestError::EmptyBatch);
        }
        let mut writer = self.writer.lock();
        let epoch = self.snapshot();
        let series_len = epoch.core.index.dataset().series_len();
        if batch.series_len() != series_len {
            return Err(IngestError::ShapeMismatch {
                expected: series_len,
                got: batch.series_len(),
            });
        }
        if let Some((pos, index)) = batch.find_non_finite() {
            return Err(IngestError::NonFinite { pos, index });
        }
        // The whole overlay lands in the last shard at the next
        // republish — enforce its u32 ceiling now, so acceptance is
        // the only gate (republish can then never fail on positions).
        let shards = epoch.core.index.num_shards();
        let last_local = epoch.core.index.shard(shards - 1).num_series() as u64 + epoch.overlay_len;
        check_position_ceiling(last_local, batch.len() as u64)?;

        // Durability before visibility: the log append fsyncs.
        if durable {
            if let Some(log) = writer.log.as_mut() {
                log.append(batch)?;
                self.log_bytes.store(log.bytes(), Ordering::Relaxed);
            }
        }

        // Seal the batch as an immutable segment of our own (the
        // caller's buffer may alias something it later mutates).
        let sealed = Arc::new(
            Dataset::from_flat(batch.as_flat().to_vec(), series_len)
                .expect("validated batch shape"),
        );
        let mut overlay = epoch.overlay.clone();
        overlay.push(sealed);
        let overlay_len = epoch.overlay_len + batch.len() as u64;
        let next = Arc::new(Epoch {
            core: Arc::clone(&epoch.core),
            overlay,
            overlay_len,
            id: epoch.id + 1,
        });
        *self.published.write() = next;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.series_ingested
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        let mut republished = false;
        if self.options.republish_after > 0 && overlay_len as usize >= self.options.republish_after
        {
            republished = self.republish_locked(&mut writer)?;
        }
        let now = self.snapshot();
        Ok(IngestReport {
            accepted: batch.len(),
            total_series: now.total_series(),
            epoch: now.id,
            republished,
        })
    }

    /// Flattens the overlay into a fresh index core now (regardless of
    /// triggers). Returns `true` if there was anything to flatten.
    pub fn republish(&self) -> Result<bool, IngestError> {
        let mut writer = self.writer.lock();
        self.republish_locked(&mut writer)
    }

    /// Applies the cadence trigger: republishes iff the overlay is
    /// non-empty and the published core is older than
    /// [`IngestOptions::max_epoch_age`]. The serve loop calls this on
    /// idle ticks.
    pub fn maybe_republish(&self) -> Result<bool, IngestError> {
        let Some(max_age) = self.options.max_epoch_age else {
            return Ok(false);
        };
        {
            let epoch = self.snapshot();
            if epoch.overlay_len == 0 || epoch.core.published_at.elapsed() <= max_age {
                return Ok(false);
            }
        }
        let mut writer = self.writer.lock();
        self.republish_locked(&mut writer)
    }

    fn republish_locked(&self, _writer: &mut WriterState) -> Result<bool, IngestError> {
        let epoch = self.snapshot();
        if epoch.overlay.is_empty() {
            return Ok(false);
        }
        let started = Instant::now();
        // Copy-on-grow: a brand-new backing buffer; every outstanding
        // view of the old dataset stays pinned to the old buffer.
        let grown = epoch
            .core
            .index
            .dataset()
            .concat(epoch.overlay.iter().map(Arc::as_ref))
            .map_err(|e| IngestError::Corrupt(e.to_string()))?;
        let index = epoch.core.index.absorb(Arc::new(grown))?;
        let core = EpochCore::new(Arc::new(index));
        // Warm the fresh executor *before* the swap so queries landing
        // on the new epoch stay allocation-free from the first one.
        core.prewarm(&self.warm.lock().clone());
        let next = Arc::new(Epoch {
            core,
            overlay: Vec::new(),
            overlay_len: 0,
            id: epoch.id + 1,
        });
        *self.published.write() = next;
        self.republishes.fetch_add(1, Ordering::Relaxed);
        self.republish_micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Republishes, then resets the delta log to a fresh header over
    /// the (now grown) base collection — the caller must have persisted
    /// that collection first (see `messi compact`). Returns the new
    /// base length. No-op on the log when none is attached.
    pub fn checkpoint_log(&self) -> Result<u64, IngestError> {
        let mut writer = self.writer.lock();
        self.republish_locked(&mut writer)?;
        let epoch = self.snapshot();
        let dataset = epoch.core.index.dataset();
        if let Some(log) = writer.log.as_mut() {
            log.reset(
                dataset.series_len(),
                dataset.len() as u64,
                dataset_fingerprint(dataset),
            )?;
            self.log_bytes.store(log.bytes(), Ordering::Relaxed);
        }
        Ok(dataset.len() as u64)
    }

    /// Answers one query against the live index: the published arenas
    /// through the epoch's warm executor, plus a brute-force scan of
    /// the sealed overlay with the engine's own kernels at an infinite
    /// abandon bound, merged with the executor's exact tie-break order.
    /// Positions are global and stable across republishes.
    ///
    /// # Panics
    ///
    /// As the underlying executor: invalid spec, query length mismatch,
    /// or invalid configuration.
    pub fn query(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats) {
        let (answers, stats, _, _) = self.query_traced(query, spec, config);
        (answers, stats)
    }

    /// [`DeltaIndex::query`] plus the executor's allocation-event count
    /// and per-shard statistics (the serve layer's tracing hook).
    pub fn query_traced(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats, u64, Vec<QueryStats>) {
        let epoch = self.snapshot();
        let (answers, mut stats, alloc_events, per_shard) =
            epoch.core.exec.run_one_traced(query, spec, config);
        if epoch.overlay_len == 0 {
            return (answers, stats, alloc_events, per_shard);
        }
        let overlay = overlay_candidates(&epoch, query, spec, config);
        stats.real_distance_calcs += overlay.len() as u64;
        let answers = merge_overlay(spec, answers, overlay);
        (answers, stats, alloc_events, per_shard)
    }

    /// Warms every pooled context of the current epoch and remembers
    /// `config` so republish re-warms successor epochs the same way.
    pub fn prewarm(&self, config: &QueryConfig) {
        *self.warm.lock() = config.clone();
        self.snapshot().core.prewarm(config);
    }

    /// The published index core (base collection only — excludes any
    /// un-flattened overlay). Call [`DeltaIndex::republish`] first to
    /// fold the overlay in, e.g. before saving a snapshot.
    pub fn index(&self) -> Arc<ShardedIndex> {
        Arc::clone(&self.snapshot().core.index)
    }

    /// Total live series (base + overlay).
    pub fn num_series(&self) -> u64 {
        self.snapshot().total_series()
    }

    /// Length of every indexed series.
    pub fn series_len(&self) -> usize {
        self.snapshot().core.index.dataset().series_len()
    }

    /// The published epoch id (bumps on every insert and republish).
    pub fn epoch(&self) -> u64 {
        self.snapshot().id
    }

    /// Point-in-time ingest accounting for `/metrics`.
    pub fn stats(&self) -> IngestStats {
        let epoch = self.snapshot();
        IngestStats {
            epoch: epoch.id,
            epoch_age: epoch.core.published_at.elapsed(),
            overlay_series: epoch.overlay_len,
            total_series: epoch.total_series(),
            batches: self.batches.load(Ordering::Relaxed),
            series_ingested: self.series_ingested.load(Ordering::Relaxed),
            republishes: self.republishes.load(Ordering::Relaxed),
            republish_time: Duration::from_micros(self.republish_micros.load(Ordering::Relaxed)),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for DeltaIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("DeltaIndex")
            .field("epoch", &s.epoch)
            .field("total_series", &s.total_series)
            .field("overlay_series", &s.overlay_series)
            .field("republishes", &s.republishes)
            .finish_non_exhaustive()
    }
}

/// Brute-force distances from `query` to every overlay series, using
/// the *same* kernels the engine's refinement step uses, at an
/// infinite abandon bound so the computed value is the full distance
/// (both kernels only return early with a value `>= bound`; at
/// `f32::INFINITY` they never abandon). This is what makes merged
/// answers bit-identical to a fresh build over the grown collection.
fn overlay_candidates(
    epoch: &Epoch,
    query: &[f32],
    spec: &QuerySpec,
    config: &QueryConfig,
) -> Vec<QueryAnswer> {
    let mut pos = epoch.core.index.num_series();
    let mut out = Vec::with_capacity(epoch.overlay_len as usize);
    for segment in &epoch.overlay {
        for series in segment.iter() {
            let dist_sq = match spec.metric {
                MetricSpec::Euclidean => {
                    ed_sq_early_abandon_with(config.kernel, query, series, f32::INFINITY)
                }
                MetricSpec::Dtw(params) => {
                    dtw_sq_early_abandon(query, series, params, f32::INFINITY)
                }
            };
            out.push(QueryAnswer { pos, dist_sq });
            pos += 1;
        }
    }
    out
}

/// Merges engine answers with overlay candidates under the same
/// ordering the sharded gather uses: ascending `(dist_sq, pos)` with
/// `total_cmp` on the distance.
fn merge_overlay(
    spec: &QuerySpec,
    engine: Vec<QueryAnswer>,
    overlay: Vec<QueryAnswer>,
) -> Vec<QueryAnswer> {
    let by_dist =
        |a: &QueryAnswer, b: &QueryAnswer| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos));
    match spec.objective {
        Objective::Exact | Objective::Approx { .. } => {
            let best = engine
                .into_iter()
                .chain(overlay)
                .min_by(by_dist)
                .expect("exact/approximate always answers");
            vec![best]
        }
        Objective::Knn { k } => {
            let mut all: Vec<QueryAnswer> = engine.into_iter().chain(overlay).collect();
            all.sort_by(by_dist);
            all.truncate(k);
            all
        }
        Objective::Range { epsilon_sq } => {
            // The engine admits `dist < next_up(ε²)`, i.e. `dist ≤ ε²`
            // for finite distances — mirror that bound exactly.
            let mut all = engine;
            all.extend(overlay.into_iter().filter(|a| a.dist_sq <= epsilon_sq));
            all.sort_by(by_dist);
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};

    fn live_index(count: usize, shards: usize) -> DeltaIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, 42));
        let (index, _) = ShardedIndex::build(data, shards, &IndexConfig::for_tests());
        DeltaIndex::new(index, IngestOptions::default())
    }

    #[test]
    fn insert_seals_overlay_and_bumps_epoch() {
        let live = live_index(200, 2);
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.num_series(), 200);
        let batch = gen::generate(DatasetKind::RandomWalk, 3, 7);
        let report = live.insert_batch(&batch).expect("accepted");
        assert_eq!(report.accepted, 3);
        assert_eq!(report.total_series, 203);
        assert_eq!(report.epoch, 1);
        assert!(!report.republished);
        let stats = live.stats();
        assert_eq!(stats.overlay_series, 3);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.series_ingested, 3);
    }

    #[test]
    fn republish_flattens_and_preserves_answers() {
        let live = live_index(150, 3);
        let batch = gen::generate(DatasetKind::RandomWalk, 10, 9);
        live.insert_batch(&batch).expect("accepted");
        let query = batch.series(4).to_vec();
        let config = QueryConfig::for_tests();
        let (before, _) = live.query(&query, &QuerySpec::exact(), &config);
        assert_eq!(before[0].pos, 154, "overlay series 4 sits at 150 + 4");
        assert_eq!(before[0].dist_sq, 0.0);

        assert!(live.republish().expect("republish"));
        assert_eq!(live.stats().overlay_series, 0);
        assert_eq!(live.num_series(), 160);
        let (after, _) = live.query(&query, &QuerySpec::exact(), &config);
        assert_eq!(after, before, "positions are stable across republish");
        // Idempotent when the overlay is empty.
        assert!(!live.republish().expect("republish"));
    }

    #[test]
    fn typed_rejections_leave_state_untouched() {
        let live = live_index(100, 1);
        let epoch = live.epoch();

        let empty = Dataset::from_flat(Vec::new(), 256).expect("empty dataset");
        assert!(matches!(
            live.insert_batch(&empty),
            Err(IngestError::EmptyBatch)
        ));

        let skinny = Dataset::from_flat(vec![0.5; 2 * 64], 64).expect("shape ok");
        assert!(matches!(
            live.insert_batch(&skinny),
            Err(IngestError::ShapeMismatch { got: 64, .. })
        ));

        let mut values = gen::generate(DatasetKind::RandomWalk, 1, 2)
            .as_flat()
            .to_vec();
        values[5] = f32::NAN;
        let poisoned = Dataset::from_flat(values, live.series_len()).expect("shape ok");
        assert!(matches!(
            live.insert_batch(&poisoned),
            Err(IngestError::NonFinite { pos: 0, index: 5 })
        ));

        assert_eq!(live.epoch(), epoch, "rejected batches publish nothing");
        assert_eq!(live.num_series(), 100);
    }

    #[test]
    fn size_trigger_republishes_inline() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 100, 5));
        let (index, _) = ShardedIndex::build(data, 1, &IndexConfig::for_tests());
        let live = DeltaIndex::new(
            index,
            IngestOptions {
                republish_after: 8,
                max_epoch_age: None,
            },
        );
        let batch = gen::generate(DatasetKind::RandomWalk, 5, 6);
        assert!(!live.insert_batch(&batch).expect("first").republished);
        let report = live.insert_batch(&batch).expect("second");
        assert!(report.republished, "10 >= 8 flattens inline");
        assert_eq!(live.stats().overlay_series, 0);
        assert_eq!(live.stats().republishes, 1);
        assert_eq!(live.num_series(), 110);
    }
}
