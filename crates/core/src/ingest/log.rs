//! The framed, checksummed delta log: ingest durability.
//!
//! Every accepted ingest batch is appended as one self-checking frame
//! and `fsync`ed before the batch becomes visible to queries, so a
//! crash can lose at most the batch whose acknowledgement never went
//! out. The file layout (all integers little-endian, via the
//! [`messi_series::io`] codec):
//!
//! ```text
//! header:  "MESSILOG" | version u16 | series_len u32
//!          | base_len u64 | fnv1a64(base values) u64
//! frame:   payload_len u32 | payload | fnv1a64(payload) u64
//! payload: count u32 | count × series_len × f32
//! ```
//!
//! The header pins the log to the exact dataset it extends (length *and*
//! content fingerprint), so replaying someone else's log over the wrong
//! snapshot fails loudly instead of silently corrupting answers. A torn
//! tail — a frame cut short by a crash mid-append, or one whose
//! checksum no longer matches — is detected during [`DeltaLog::open`],
//! reported on stderr, and truncated away so the next append starts
//! from the last durable frame.

use messi_series::io::{fnv1a64, fnv1a64_f32, PayloadReader, PayloadWriter};
use messi_series::Dataset;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every delta log.
const LOG_MAGIC: &[u8; 8] = b"MESSILOG";
/// Current log format version.
const LOG_VERSION: u16 = 1;
/// Serialized header size in bytes (magic + version + series_len +
/// base_len + base fingerprint).
const HEADER_LEN: u64 = 8 + 2 + 4 + 8 + 8;

/// Why a delta log could not be opened or replayed.
#[derive(Debug)]
pub enum LogError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The header or a non-tail frame violates the format.
    Corrupt(String),
    /// The log belongs to a different dataset than the one loaded.
    Mismatch(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "delta log I/O error: {e}"),
            LogError::Corrupt(msg) => write!(f, "delta log corrupt: {msg}"),
            LogError::Mismatch(msg) => write!(f, "delta log mismatch: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// What [`DeltaLog::open`] recovered from an existing log file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Whole frames recovered and replayed.
    pub batches: usize,
    /// Total series across those frames.
    pub series: usize,
    /// Whether a torn/corrupt tail was detected (and truncated away).
    pub torn: bool,
    /// Bytes of tail dropped by the truncation.
    pub dropped_bytes: u64,
}

/// An open, append-position delta log.
///
/// Created by [`DeltaLog::open`], which also replays whatever frames the
/// file already holds. Appends go through [`DeltaLog::append`], which
/// flushes and `fsync`s before returning.
#[derive(Debug)]
pub struct DeltaLog {
    file: File,
    /// Valid byte length (header + whole frames).
    bytes: u64,
}

impl DeltaLog {
    /// Opens (or creates) the delta log at `path` for the dataset with
    /// the given shape and content fingerprint, replaying any frames
    /// already present.
    ///
    /// A fresh/empty file gets a header and replays nothing. An existing
    /// file must carry a matching header; its frames are decoded into
    /// batches (returned in append order for the caller to re-ingest),
    /// and a torn tail is reported loudly on stderr and truncated so the
    /// log ends on its last whole frame.
    ///
    /// # Errors
    ///
    /// [`LogError::Mismatch`] when the header pins a different dataset,
    /// [`LogError::Corrupt`] when the header itself is damaged, and
    /// [`LogError::Io`] for filesystem failures.
    pub fn open(
        path: &Path,
        series_len: usize,
        base_len: u64,
        base_fingerprint: u64,
    ) -> Result<(Self, Vec<Dataset>, ReplayReport), LogError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            let mut log = Self { file, bytes: 0 };
            log.write_header(series_len, base_len, base_fingerprint)?;
            return Ok((log, Vec::new(), ReplayReport::default()));
        }

        let mut raw = Vec::with_capacity(file_len as usize);
        file.read_to_end(&mut raw)?;
        let (batches, report) = decode_log(&raw, path, series_len, base_len, base_fingerprint)?;
        let good = file_len - report.dropped_bytes;
        if report.torn {
            file.set_len(good)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good))?;
        Ok((Self { file, bytes: good }, batches, report))
    }

    /// (Re)writes the header and truncates every frame — the compaction
    /// tail step, after the grown dataset and snapshot have been saved.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn reset(
        &mut self,
        series_len: usize,
        base_len: u64,
        base_fingerprint: u64,
    ) -> Result<(), LogError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.bytes = 0;
        self.write_header(series_len, base_len, base_fingerprint)
    }

    fn write_header(
        &mut self,
        series_len: usize,
        base_len: u64,
        base_fingerprint: u64,
    ) -> Result<(), LogError> {
        let mut w = PayloadWriter::new();
        w.put_bytes(LOG_MAGIC);
        w.put_u16(LOG_VERSION);
        w.put_u32(series_len as u32);
        w.put_u64(base_len);
        w.put_u64(base_fingerprint);
        let bytes = w.into_bytes();
        debug_assert_eq!(bytes.len() as u64, HEADER_LEN);
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Appends one batch as a checksummed frame, flushing and
    /// `fsync`ing before returning — the durability point of an ingest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append(&mut self, batch: &Dataset) -> Result<(), LogError> {
        let mut w = PayloadWriter::new();
        w.put_u32(batch.len() as u32);
        for v in batch.as_flat() {
            w.put_f32(*v);
        }
        let payload = w.into_bytes();
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Current valid length of the log in bytes (header + whole frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Decodes a whole log image: validated header, then frames until the
/// buffer runs dry or the tail tears.
fn decode_log(
    raw: &[u8],
    path: &Path,
    series_len: usize,
    base_len: u64,
    base_fingerprint: u64,
) -> Result<(Vec<Dataset>, ReplayReport), LogError> {
    let corrupt = |msg: String| LogError::Corrupt(msg);
    if (raw.len() as u64) < HEADER_LEN {
        return Err(corrupt(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            raw.len()
        )));
    }
    let mut r = PayloadReader::new(&raw[..HEADER_LEN as usize]);
    let magic = r.take_bytes(8).map_err(|e| corrupt(e.into()))?;
    if magic != LOG_MAGIC {
        return Err(corrupt("bad magic (not a MESSI delta log)".into()));
    }
    let version = r.take_u16().map_err(|e| corrupt(e.into()))?;
    if version != LOG_VERSION {
        return Err(corrupt(format!(
            "unsupported log version {version} (this build reads {LOG_VERSION})"
        )));
    }
    let log_series_len = r.take_u32().map_err(|e| corrupt(e.into()))?;
    let log_base_len = r.take_u64().map_err(|e| corrupt(e.into()))?;
    let log_fp = r.take_u64().map_err(|e| corrupt(e.into()))?;
    if log_series_len as usize != series_len {
        return Err(LogError::Mismatch(format!(
            "log is for series of length {log_series_len}, dataset has {series_len}"
        )));
    }
    if log_base_len != base_len {
        return Err(LogError::Mismatch(format!(
            "log extends a base of {log_base_len} series, dataset has {base_len} \
             (was the dataset rebuilt without compacting the log?)"
        )));
    }
    if log_fp != base_fingerprint {
        return Err(LogError::Mismatch(format!(
            "log base fingerprint {log_fp:#018x} does not match the dataset's \
             {base_fingerprint:#018x} — this log belongs to a different dataset"
        )));
    }

    let mut batches = Vec::new();
    let mut report = ReplayReport::default();
    let mut off = HEADER_LEN as usize;
    while off < raw.len() {
        match decode_frame(&raw[off..], series_len) {
            Some(batch) => {
                let frame_len = 12 + 4 + batch.len() * series_len * 4;
                off += frame_len;
                report.batches += 1;
                report.series += batch.len();
                batches.push(batch);
            }
            None => {
                report.torn = true;
                report.dropped_bytes = (raw.len() - off) as u64;
                eprintln!(
                    "messi: delta log {}: torn tail detected at byte {off} — \
                     dropping {} trailing byte(s); {} whole batch(es) \
                     ({} series) recovered",
                    path.display(),
                    report.dropped_bytes,
                    report.batches,
                    report.series
                );
                break;
            }
        }
    }
    Ok((batches, report))
}

/// Decodes one frame from the front of `buf`, or `None` if the bytes do
/// not form a whole, checksum-valid, well-shaped frame (= torn tail).
fn decode_frame(buf: &[u8], series_len: usize) -> Option<Dataset> {
    if buf.len() < 4 {
        return None;
    }
    let payload_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    let frame_len = 4usize.checked_add(payload_len)?.checked_add(8)?;
    if buf.len() < frame_len {
        return None;
    }
    let payload = &buf[4..4 + payload_len];
    let stored = u64::from_le_bytes(buf[4 + payload_len..frame_len].try_into().unwrap());
    if fnv1a64(payload) != stored {
        return None;
    }
    let mut r = PayloadReader::new(payload);
    let count = r.take_u32().ok()? as usize;
    if count == 0 || r.remaining() != count * series_len * 4 {
        return None;
    }
    let mut values = Vec::with_capacity(count * series_len);
    for _ in 0..count * series_len {
        values.push(r.take_f32().ok()?);
    }
    Dataset::from_flat(values, series_len).ok()
}

/// Content fingerprint of a dataset's visible values — what the log
/// header pins its base to.
pub(crate) fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    fnv1a64_f32(dataset.as_flat())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("messi-log-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn batch(seed: f32, count: usize, series_len: usize) -> Dataset {
        let values: Vec<f32> = (0..count * series_len)
            .map(|i| (i as f32 * 0.25 + seed).sin())
            .collect();
        Dataset::from_flat(values, series_len).unwrap()
    }

    #[test]
    fn round_trips_batches_across_reopen() {
        let path = tmp("roundtrip");
        let (mut log, replayed, report) = DeltaLog::open(&path, 8, 100, 42).unwrap();
        assert!(replayed.is_empty() && !report.torn);
        let b1 = batch(1.0, 3, 8);
        let b2 = batch(2.0, 5, 8);
        log.append(&b1).unwrap();
        log.append(&b2).unwrap();
        let bytes = log.bytes();
        drop(log);

        let (log, replayed, report) = DeltaLog::open(&path, 8, 100, 42).unwrap();
        assert_eq!(log.bytes(), bytes);
        assert_eq!(report.batches, 2);
        assert_eq!(report.series, 8);
        assert!(!report.torn);
        assert_eq!(replayed, vec![b1, b2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_logs_for_other_datasets() {
        let path = tmp("mismatch");
        let (log, _, _) = DeltaLog::open(&path, 8, 100, 42).unwrap();
        drop(log);
        assert!(matches!(
            DeltaLog::open(&path, 16, 100, 42),
            Err(LogError::Mismatch(_))
        ));
        assert!(matches!(
            DeltaLog::open(&path, 8, 99, 42),
            Err(LogError::Mismatch(_))
        ));
        assert!(matches!(
            DeltaLog::open(&path, 8, 100, 43),
            Err(LogError::Mismatch(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovered() {
        let path = tmp("torn");
        let (mut log, _, _) = DeltaLog::open(&path, 4, 10, 7).unwrap();
        let b1 = batch(3.0, 2, 4);
        let b2 = batch(4.0, 3, 4);
        log.append(&b1).unwrap();
        log.append(&b2).unwrap();
        let good = log.bytes();
        drop(log);

        // Simulate a crash mid-append: a third frame cut short.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&100u32.to_le_bytes());
        raw.extend_from_slice(&[0xAB; 17]);
        std::fs::write(&path, &raw).unwrap();

        let (log, replayed, report) = DeltaLog::open(&path, 4, 10, 7).unwrap();
        assert!(report.torn);
        assert_eq!(report.dropped_bytes, 21);
        assert_eq!(report.batches, 2);
        assert_eq!(replayed, vec![b1.clone(), b2.clone()]);
        assert_eq!(log.bytes(), good, "file truncated back to last frame");
        drop(log);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);

        // A flipped payload byte (checksum mismatch) also tears the tail.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 10;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, replayed, report) = DeltaLog::open(&path, 4, 10, 7).unwrap();
        assert!(report.torn);
        assert_eq!(report.batches, 1, "only the first frame survives");
        assert_eq!(replayed, vec![b1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_truncates_to_a_fresh_header() {
        let path = tmp("reset");
        let (mut log, _, _) = DeltaLog::open(&path, 4, 10, 7).unwrap();
        log.append(&batch(1.0, 2, 4)).unwrap();
        log.reset(4, 12, 99).unwrap();
        assert_eq!(log.bytes(), HEADER_LEN);
        drop(log);
        let (log, replayed, report) = DeltaLog::open(&path, 4, 12, 99).unwrap();
        assert!(replayed.is_empty() && !report.torn);
        assert_eq!(log.bytes(), HEADER_LEN);
        std::fs::remove_file(&path).unwrap();
    }
}
