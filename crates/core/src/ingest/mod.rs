//! Live ingest: incremental inserts behind an epoch seam, with
//! delta-log durability.
//!
//! A built index is immutable; this module grows one anyway. The
//! [`DeltaIndex`] wraps a [`ShardedIndex`](crate::shard::ShardedIndex)
//! behind an epoch/RCU publication seam: appended series accumulate as
//! small immutable *sealed overlay* segments that queries brute-force
//! alongside the published arenas, and a republish step flattens the
//! overlay into fresh [`TreeArena`](crate::node::TreeArena)s (rebuilding
//! only the root subtrees that actually received entries) before
//! swapping in the next epoch. Readers never take a lock on the arena
//! read path — they clone an `Arc` snapshot of the current epoch and
//! query it to completion even while writers publish successors.
//!
//! Durability is a framed, checksummed delta log ([`DeltaLog`]): every
//! accepted batch is appended and fsynced before it becomes queryable,
//! boot replays the log over the snapshot, and compaction re-saves the
//! grown collection and truncates the log. Torn tails are detected by
//! checksum, reported loudly, and dropped — the intact prefix is
//! recovered.

mod delta;
mod log;

pub use delta::{DeltaIndex, IngestOptions, IngestReport, IngestStats};
pub use log::{DeltaLog, LogError, ReplayReport};

/// What went wrong accepting an ingest batch.
#[derive(Debug)]
pub enum IngestError {
    /// The batch's series length differs from the indexed collection's.
    ShapeMismatch {
        /// Series length of the indexed collection.
        expected: usize,
        /// Series length of the rejected batch.
        got: usize,
    },
    /// A batch series holds a NaN or infinite value.
    NonFinite {
        /// Position of the offending series within the batch.
        pos: usize,
        /// Index of the offending point within that series.
        index: usize,
    },
    /// The batch holds no series.
    EmptyBatch,
    /// Accepting the batch would push a shard past the `u32`
    /// local-position ceiling. Build a new snapshot with more shards
    /// (`--shards N`) to keep growing.
    PositionOverflow {
        /// Series already indexed by the absorbing shard (plus any
        /// pending overlay).
        existing: u64,
        /// Series the rejected batch would add.
        incoming: u64,
    },
    /// The index could not be regrown (internal invariant violation).
    Corrupt(String),
    /// The delta log rejected the append or replay.
    Log(LogError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShapeMismatch { expected, got } => write!(
                f,
                "batch series length {got} does not match indexed length {expected}"
            ),
            Self::NonFinite { pos, index } => write!(
                f,
                "batch series {pos} holds a non-finite value at point {index}"
            ),
            Self::EmptyBatch => write!(f, "ingest batch holds no series"),
            Self::PositionOverflow { existing, incoming } => write!(
                f,
                "batch of {incoming} series would push the shard past the u32 \
                 local-position ceiling ({existing} already indexed); rebuild \
                 with more shards (--shards N) to keep growing"
            ),
            Self::Corrupt(msg) => write!(f, "index regrow failed: {msg}"),
            Self::Log(e) => write!(f, "delta log: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<LogError> for IngestError {
    fn from(e: LogError) -> Self {
        Self::Log(e)
    }
}

/// Checks the `u32` local-position ceiling for one index: `existing`
/// series already addressed plus `incoming` new ones must not exceed
/// `u32::MAX` total (positions `0..len` are stored as `u32`, leaving
/// `u32::MAX` itself free as a sentinel) — the same bound
/// `assert_positions_fit` enforces with a panic at build time.
pub(crate) fn check_position_ceiling(existing: u64, incoming: u64) -> Result<(), IngestError> {
    match existing.checked_add(incoming) {
        Some(total) if total <= u64::from(u32::MAX) => Ok(()),
        _ => Err(IngestError::PositionOverflow { existing, incoming }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_ceiling_is_a_typed_error_not_an_assert() {
        assert!(check_position_ceiling(0, u64::from(u32::MAX)).is_ok());
        assert!(check_position_ceiling(u64::from(u32::MAX), 0).is_ok());
        assert!(check_position_ceiling(100, 28).is_ok());

        // One past the ceiling: typed rejection with both operands.
        match check_position_ceiling(u64::from(u32::MAX), 1) {
            Err(IngestError::PositionOverflow { existing, incoming }) => {
                assert_eq!(existing, u64::from(u32::MAX));
                assert_eq!(incoming, 1);
            }
            other => panic!("expected PositionOverflow, got {other:?}"),
        }
        // u64 overflow in the sum itself must not wrap into acceptance.
        assert!(check_position_ceiling(u64::MAX, u64::MAX).is_err());
        let msg = check_position_ceiling(u64::from(u32::MAX), 1)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("--shards"), "actionable message: {msg}");
    }
}
