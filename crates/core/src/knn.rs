//! Exact k-NN search.
//!
//! The paper motivates MESSI with "complex analytics algorithms (e.g.,
//! k-NN classification)" (§I). Exact k-NN generalizes the 1-NN algorithm
//! directly: the scalar BSF becomes the set of the k best candidates, and
//! every bound is checked against the *k-th best* distance (which is
//! `+inf` until k candidates exist, so nothing is pruned prematurely).
//! The traversal, queues, and leaf-scan cascade are [`crate::engine`]'s;
//! this module contributes the `KnnSet` bound, the home-leaf seeding,
//! and the Euclidean/DTW adapters.
//!
//! The candidate set is a small mutex-protected max-heap with a cached
//! atomic bound, the same trick as the BSF: reads in the hot loop are a
//! single atomic load; the lock is only taken on candidate insertion,
//! which (like BSF updates, §III-B) happens a handful of times per query.

use crate::config::QueryConfig;
use crate::engine::{
    self, DtwMetric, Engine, EuclideanMetric, KnnObjective, QueryContext, TableSpec,
};
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::shard::global_pos;
use crate::stats::{QueryStats, SharedQueryStats};
use messi_series::distance::dtw::{dtw_sq_early_abandon, DtwParams};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::distance::lb_keogh::{lb_keogh_sq_early_abandon_with, Envelope};
use messi_series::paa::paa;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Max-heap item: the worst current candidate sits on top. Positions
/// are global u64s (see [`crate::shard::global_pos`]) so one `KnnSet`
/// can be shared by every shard of a sharded scatter.
#[derive(Debug, PartialEq)]
struct Candidate {
    dist_sq: f32,
    pos: u64,
}

impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then(self.pos.cmp(&other.pos))
    }
}

/// Shared k-best set with a cached pruning bound.
pub(crate) struct KnnSet {
    k: usize,
    heap: Mutex<BinaryHeap<Candidate>>,
    /// Bits of the current k-th best distance (`+inf` until full).
    bound_bits: AtomicU32,
}

impl KnnSet {
    pub(crate) fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: Mutex::new(BinaryHeap::with_capacity(k + 1)),
            bound_bits: AtomicU32::new(f32::INFINITY.to_bits()),
        }
    }

    /// Current pruning bound: the k-th best distance (or `+inf`).
    /// Non-negative floats order like their bit patterns, so a relaxed
    /// u32 load suffices.
    #[inline]
    pub(crate) fn bound(&self) -> f32 {
        f32::from_bits(self.bound_bits.load(Ordering::Acquire))
    }

    /// Offers a candidate under its *global* position; ignores
    /// duplicates of an already-present position (a leaf may be scanned
    /// via the seeding phase *and* the queue phase — and under sharding
    /// every shard seeds its own home leaf). Returns whether the set
    /// changed.
    pub(crate) fn offer(&self, dist_sq: f32, pos: u64) -> bool {
        if dist_sq >= self.bound() {
            return false;
        }
        let mut heap = self.heap.lock();
        if heap.iter().any(|c| c.pos == pos) {
            return false;
        }
        heap.push(Candidate { dist_sq, pos });
        if heap.len() > self.k {
            heap.pop();
        }
        if heap.len() == self.k {
            let worst = heap.peek().expect("k > 0").dist_sq;
            self.bound_bits.store(worst.to_bits(), Ordering::Release);
        }
        true
    }

    /// The final answers, ascending by distance.
    pub(crate) fn into_sorted(self) -> Vec<QueryAnswer> {
        let mut v: Vec<Candidate> = self.heap.into_inner().into_vec();
        v.sort();
        v.into_iter()
            .map(|c| QueryAnswer {
                pos: c.pos,
                dist_sq: c.dist_sq,
            })
            .collect()
    }
}

/// Exact k-NN search: the k nearest series, ascending by distance.
///
/// Returns fewer than `k` answers only when the dataset holds fewer than
/// `k` series.
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 500, 1));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let query = data.series(3).to_vec();
///
/// let (top3, _) = messi_core::knn::exact_knn(&index, &query, 3, &QueryConfig::for_tests());
/// assert_eq!(top3.len(), 3);
/// assert_eq!(top3[0].pos, 3, "a member query's nearest neighbor is itself");
/// assert!(top3[0].dist_sq <= top3[1].dist_sq);
/// ```
///
/// # Panics
///
/// Panics if `k == 0`, the query length mismatches, or the configuration
/// is invalid.
pub fn exact_knn(
    index: &MessiIndex,
    query: &[f32],
    k: usize,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStats) {
    exact_knn_with(index, query, k, config, &mut QueryContext::new())
}

/// [`exact_knn`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`exact_knn`].
pub fn exact_knn_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    k: usize,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (Vec<QueryAnswer>, QueryStats) {
    let knn = KnnSet::new(k);
    let stats = exact_knn_shared(index, query, &knn, 0, config, ctx);
    (knn.into_sorted(), stats)
}

/// [`exact_knn_with`] running as one shard of a sharded scatter: the
/// caller owns the [`KnnSet`] (shared by every shard, so the k-th-best
/// bound is automatically global) and reads the merged answers out of
/// it after all shards finish; `offset` globalizes this shard's
/// positions. With an unshared set and offset 0 this *is* the
/// single-index search, byte for byte.
pub(crate) fn exact_knn_shared<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    knn: &KnnSet,
    offset: u64,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> QueryStats {
    config.validate();
    let t_start = Instant::now();

    let (query_sax, query_paa) = index.summarize_query(query);

    // Seed: scan the query's home leaf so the bound starts tight, exactly
    // like 1-NN's approximate search but keeping all k candidates.
    for e in index.home_leaf_entries(&query_sax, &query_paa) {
        let bound = knn.bound();
        let d = ed_sq_early_abandon_with(
            config.kernel,
            query,
            index.dataset.series(e.pos as usize),
            bound,
        );
        if d < bound {
            knn.offer(d, global_pos(offset, e.pos));
        }
    }
    let initial_bound = knn.bound();

    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Point(&query_paa),
        Some(config),
    );
    let metric = EuclideanMetric::new(index, query, &query_paa, scratch.table, config.kernel);
    let objective = KnnObjective::new(knn, offset);
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let mut stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    if initial_bound.is_finite() {
        stats.initial_bsf_dist_sq = initial_bound;
    }
    stats
}

/// Exact k-NN under banded DTW: the k series minimizing the DTW distance
/// to `query`, ascending. The bound cascade is the same three-level
/// `mindist_env ≤ LB_Keogh ≤ DTW` chain as [`crate::dtw`] — the engine
/// composes it with the k-NN objective for free.
///
/// # Panics
///
/// As [`exact_knn`].
pub fn exact_knn_dtw(
    index: &MessiIndex,
    query: &[f32],
    k: usize,
    params: DtwParams,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStats) {
    exact_knn_dtw_with(index, query, k, params, config, &mut QueryContext::new())
}

/// [`exact_knn_dtw`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`exact_knn`].
pub fn exact_knn_dtw_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    k: usize,
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (Vec<QueryAnswer>, QueryStats) {
    let knn = KnnSet::new(k);
    let stats = exact_knn_dtw_shared(index, query, &knn, 0, params, config, ctx);
    (knn.into_sorted(), stats)
}

/// [`exact_knn_dtw_with`] as one shard of a sharded scatter; see
/// [`exact_knn_shared`] for the sharing contract.
pub(crate) fn exact_knn_dtw_shared<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    knn: &KnnSet,
    offset: u64,
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> QueryStats {
    config.validate();
    let t_start = Instant::now();
    let segments = index.sax_config().segments;

    let (query_sax, query_paa) = index.summarize_query(query);
    let env = Envelope::new(query, params);
    let paa_lower = paa(&env.lower, segments);
    let paa_upper = paa(&env.upper, segments);

    // Seed from the home leaf through the LB_Keogh → DTW cascade.
    for e in index.home_leaf_entries(&query_sax, &query_paa) {
        let bound = knn.bound();
        let candidate = index.dataset.series(e.pos as usize);
        if lb_keogh_sq_early_abandon_with(config.kernel, &env, candidate, bound) >= bound {
            continue;
        }
        let d = dtw_sq_early_abandon(query, candidate, params, bound);
        if d < bound {
            knn.offer(d, global_pos(offset, e.pos));
        }
    }
    let initial_bound = knn.bound();

    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Envelope(&paa_lower, &paa_upper),
        Some(config),
    );
    let metric = DtwMetric::new(
        index,
        query,
        &env,
        params,
        &paa_lower,
        &paa_upper,
        scratch.table,
        config.kernel,
    );
    let objective = KnnObjective::new(knn, offset);
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let mut stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    if initial_bound.is_finite() {
        stats.initial_bsf_dist_sq = initial_bound;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn brute_force_knn(data: &messi_series::Dataset, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut all: Vec<(usize, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i, messi_series::distance::euclidean::ed_sq_scalar(query, s)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 500, 13));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 13);
        for q in queries.iter() {
            for k in [1usize, 3, 10, 25] {
                let (got, _) = exact_knn(&index, q, k, &QueryConfig::for_tests());
                let expect = brute_force_knn(&data, q, k);
                assert_eq!(got.len(), k);
                for (g, (_, ed)) in got.iter().zip(&expect) {
                    assert!(
                        (g.dist_sq - ed).abs() <= 1e-3 * ed.max(1.0),
                        "k={k}: {} vs {ed}",
                        g.dist_sq
                    );
                }
                // Distances ascending.
                for w in got.windows(2) {
                    assert!(w[0].dist_sq <= w[1].dist_sq + 1e-6);
                }
                // No duplicate positions.
                let mut positions: Vec<u64> = got.iter().map(|a| a.pos).collect();
                positions.sort_unstable();
                positions.dedup();
                assert_eq!(positions.len(), k, "duplicate positions in k-NN answer");
            }
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 8, 5));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 5);
        let (got, _) = exact_knn(&index, queries.series(0), 20, &QueryConfig::for_tests());
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn k1_equals_exact_search() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 17));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 17);
        for q in queries.iter() {
            let (knn, _) = exact_knn(&index, q, 1, &QueryConfig::for_tests());
            let (one, _) = crate::exact::exact_search(&index, q, &QueryConfig::for_tests());
            assert!((knn[0].dist_sq - one.dist_sq).abs() <= 1e-4 * one.dist_sq.max(1.0));
        }
    }

    #[test]
    fn knn_dtw_matches_brute_force() {
        use messi_series::distance::dtw::dtw_sq;
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 250, 19));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let params = DtwParams::paper_default(256);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 19);
        for q in queries.iter() {
            for k in [1usize, 5] {
                let (got, stats) = exact_knn_dtw(&index, q, k, params, &QueryConfig::for_tests());
                let mut expect: Vec<(usize, f32)> = data
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, dtw_sq(q, s, params)))
                    .collect();
                expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                expect.truncate(k);
                assert_eq!(got.len(), k);
                for (g, (_, d)) in got.iter().zip(&expect) {
                    assert!(
                        (g.dist_sq - d).abs() <= 1e-3 * d.max(1.0),
                        "k={k}: {} vs {d}",
                        g.dist_sq
                    );
                }
                assert!(
                    stats.real_distance_calcs < data.len() as u64,
                    "DTW k-NN should prune"
                );
            }
        }
    }

    #[test]
    fn knn_honors_queue_policy_and_breakdown() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 23));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 23);
        let config = QueryConfig {
            queue_policy: crate::config::QueuePolicy::PerWorkerLocal,
            collect_breakdown: true,
            ..QueryConfig::for_tests()
        };
        for q in queries.iter() {
            let (got, stats) = exact_knn(&index, q, 5, &config);
            let expect = brute_force_knn(&data, q, 5);
            for (g, (_, ed)) in got.iter().zip(&expect) {
                assert!((g.dist_sq - ed).abs() <= 1e-3 * ed.max(1.0));
            }
            let b = stats.breakdown.expect("breakdown requested");
            assert!(b.init_ns > 0, "k-NN now reports the Fig. 13 phases");
        }
    }

    #[test]
    fn knn_set_semantics() {
        let set = KnnSet::new(2);
        assert_eq!(set.bound(), f32::INFINITY);
        assert!(set.offer(5.0, 1));
        assert_eq!(set.bound(), f32::INFINITY, "not full yet");
        assert!(set.offer(3.0, 2));
        assert_eq!(set.bound(), 5.0);
        assert!(!set.offer(3.0, 2), "duplicate position rejected");
        assert!(!set.offer(7.0, 3), "worse than bound rejected");
        assert!(set.offer(1.0, 4));
        assert_eq!(set.bound(), 3.0);
        let answers = set.into_sorted();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].pos, 4);
        assert_eq!(answers[1].pos, 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        KnnSet::new(0);
    }
}
