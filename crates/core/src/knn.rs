//! Exact k-NN search.
//!
//! The paper motivates MESSI with "complex analytics algorithms (e.g.,
//! k-NN classification)" (§I). Exact k-NN generalizes the 1-NN algorithm
//! directly: the scalar BSF becomes the set of the k best candidates, and
//! every bound is checked against the *k-th best* distance (which is
//! `+inf` until k candidates exist, so nothing is pruned prematurely).
//!
//! The candidate set is a small mutex-protected max-heap with a cached
//! atomic bound, the same trick as the BSF: reads in the hot loop are a
//! single atomic load; the lock is only taken on candidate insertion,
//! which (like BSF updates, §III-B) happens a handful of times per query.

use crate::config::QueryConfig;
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::node::{LeafNode, Node};
use crate::stats::{LocalStats, QueryStats, SharedQueryStats};
use messi_sax::mindist::{mindist_sq_node, MindistTable};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_series::distance::Kernel;
use messi_sync::{Dispenser, QueueSet, SenseBarrier};
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Max-heap item: the worst current candidate sits on top.
#[derive(Debug, PartialEq)]
struct Candidate {
    dist_sq: f32,
    pos: u32,
}

impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then(self.pos.cmp(&other.pos))
    }
}

/// Shared k-best set with a cached pruning bound.
pub(crate) struct KnnSet {
    k: usize,
    heap: Mutex<BinaryHeap<Candidate>>,
    /// Bits of the current k-th best distance (`+inf` until full).
    bound_bits: AtomicU32,
}

impl KnnSet {
    pub(crate) fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: Mutex::new(BinaryHeap::with_capacity(k + 1)),
            bound_bits: AtomicU32::new(f32::INFINITY.to_bits()),
        }
    }

    /// Current pruning bound: the k-th best distance (or `+inf`).
    /// Non-negative floats order like their bit patterns, so a relaxed
    /// u32 load suffices.
    #[inline]
    pub(crate) fn bound(&self) -> f32 {
        f32::from_bits(self.bound_bits.load(Ordering::Acquire))
    }

    /// Offers a candidate; ignores duplicates of an already-present
    /// position (a leaf may be scanned via the seeding phase *and* the
    /// queue phase). Returns whether the set changed.
    pub(crate) fn offer(&self, dist_sq: f32, pos: u32) -> bool {
        if dist_sq >= self.bound() {
            return false;
        }
        let mut heap = self.heap.lock();
        if heap.iter().any(|c| c.pos == pos) {
            return false;
        }
        heap.push(Candidate { dist_sq, pos });
        if heap.len() > self.k {
            heap.pop();
        }
        if heap.len() == self.k {
            let worst = heap.peek().expect("k > 0").dist_sq;
            self.bound_bits.store(worst.to_bits(), Ordering::Release);
        }
        true
    }

    /// The final answers, ascending by distance.
    pub(crate) fn into_sorted(self) -> Vec<QueryAnswer> {
        let mut v: Vec<Candidate> = self.heap.into_inner().into_vec();
        v.sort();
        v.into_iter()
            .map(|c| QueryAnswer {
                pos: c.pos,
                dist_sq: c.dist_sq,
            })
            .collect()
    }
}

/// Exact k-NN search: the k nearest series, ascending by distance.
///
/// Returns fewer than `k` answers only when the dataset holds fewer than
/// `k` series.
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 500, 1));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let query = data.series(3).to_vec();
///
/// let (top3, _) = messi_core::knn::exact_knn(&index, &query, 3, &QueryConfig::for_tests());
/// assert_eq!(top3.len(), 3);
/// assert_eq!(top3[0].pos, 3, "a member query's nearest neighbor is itself");
/// assert!(top3[0].dist_sq <= top3[1].dist_sq);
/// ```
///
/// # Panics
///
/// Panics if `k == 0`, the query length mismatches, or the configuration
/// is invalid.
pub fn exact_knn(
    index: &MessiIndex,
    query: &[f32],
    k: usize,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStats) {
    config.validate();
    assert!(k > 0, "k must be positive");
    let t_start = Instant::now();

    let (query_sax, query_paa) = index.summarize_query(query);
    let table = MindistTable::new(&query_paa, index.sax_config());
    let knn = KnnSet::new(k);

    // Seed: scan the query's home leaf so the bound starts tight, exactly
    // like 1-NN's approximate search but keeping all k candidates.
    seed_from_home_leaf(index, query, &query_sax, &knn, config.kernel);

    let queues: QueueSet<&LeafNode> = QueueSet::new(config.num_queues);
    let barrier = SenseBarrier::new(config.num_workers);
    let dispenser = Dispenser::new(index.touched.len());
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    messi_sync::WorkerPool::global().run(config.num_workers, &|pid| {
        let nq = queues.len();
        let mut cursor = pid % nq;
        let mut local = LocalStats::default();
        while let Some(i) = dispenser.next() {
            let key = index.touched[i];
            let node = index.roots[key].as_deref().expect("touched ⇒ present");
            traverse(
                index,
                node,
                &query_paa,
                &knn,
                &queues,
                &mut cursor,
                &mut local,
            );
        }
        barrier.wait();
        let mut q = pid % nq;
        loop {
            drain_queue(
                index,
                query,
                &table,
                &knn,
                &queues,
                q,
                &mut local,
                config.kernel,
            );
            match queues.next_unfinished(q + 1) {
                Some(next) => q = next,
                None => break,
            }
        }
        local.flush(&stats);
    });

    let answers = knn.into_sorted();
    let stats = stats.finish(t_start.elapsed(), init_ns, config.num_workers as u64, false);
    (answers, stats)
}

fn seed_from_home_leaf(
    index: &MessiIndex,
    query: &[f32],
    query_sax: &messi_sax::word::SaxWord,
    knn: &KnnSet,
    kernel: Kernel,
) {
    // Reuse approximate search's entry-point logic by scanning the leaf it
    // lands on: run it once to find *a* close series, then offer the whole
    // leaf the 1-NN scan looked at. Simplest faithful variant: offer every
    // entry of the home leaf.
    let key = messi_sax::root_key::root_key(query_sax, index.sax_config().segments);
    let node = match index.root(key) {
        Some(n) => n,
        None => return, // bound stays +inf; the main pass does the work
    };
    // Descend along the query's bits.
    let mut cur = node;
    loop {
        match cur {
            Node::Leaf(leaf) => {
                for e in &leaf.entries {
                    let bound = knn.bound();
                    let d = ed_sq_early_abandon_with(
                        kernel,
                        query,
                        index.dataset.series(e.pos as usize),
                        bound,
                    );
                    if d < bound {
                        knn.offer(d, e.pos);
                    }
                }
                return;
            }
            Node::Inner(inner) => {
                let seg = inner.split_segment as usize;
                cur = if inner.word.child_of(query_sax, seg) {
                    &inner.right
                } else {
                    &inner.left
                };
            }
        }
    }
}

fn traverse<'a>(
    index: &'a MessiIndex,
    node: &'a Node,
    query_paa: &[f32],
    knn: &KnnSet,
    queues: &QueueSet<&'a LeafNode>,
    cursor: &mut usize,
    local: &mut LocalStats,
) {
    let d = mindist_sq_node(query_paa, &index.scales, node.word());
    local.lb += 1;
    if d >= knn.bound() {
        return;
    }
    match node {
        Node::Leaf(leaf) => {
            queues.push_round_robin(cursor, d, leaf);
            local.inserted += 1;
        }
        Node::Inner(inner) => {
            traverse(index, &inner.left, query_paa, knn, queues, cursor, local);
            traverse(index, &inner.right, query_paa, knn, queues, cursor, local);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drain_queue(
    index: &MessiIndex,
    query: &[f32],
    table: &MindistTable,
    knn: &KnnSet,
    queues: &QueueSet<&LeafNode>,
    q: usize,
    local: &mut LocalStats,
    kernel: Kernel,
) {
    let queue = queues.queue(q);
    loop {
        if queue.is_finished() {
            return;
        }
        match queue.pop_min() {
            None => {
                queue.mark_finished();
                return;
            }
            Some((dist, leaf)) => {
                local.popped += 1;
                if dist >= knn.bound() {
                    local.filtered += 1;
                    queue.mark_finished();
                    return;
                }
                for e in &leaf.entries {
                    local.lb += 1;
                    let bound = knn.bound();
                    if table.mindist_sq(&e.sax) >= bound {
                        continue;
                    }
                    local.real += 1;
                    let d = ed_sq_early_abandon_with(
                        kernel,
                        query,
                        index.dataset.series(e.pos as usize),
                        bound,
                    );
                    if d < bound && knn.offer(d, e.pos) {
                        local.bsf_updates += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn brute_force_knn(data: &messi_series::Dataset, query: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut all: Vec<(usize, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i, messi_series::distance::euclidean::ed_sq_scalar(query, s)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 500, 13));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 13);
        for q in queries.iter() {
            for k in [1usize, 3, 10, 25] {
                let (got, _) = exact_knn(&index, q, k, &QueryConfig::for_tests());
                let expect = brute_force_knn(&data, q, k);
                assert_eq!(got.len(), k);
                for (g, (_, ed)) in got.iter().zip(&expect) {
                    assert!(
                        (g.dist_sq - ed).abs() <= 1e-3 * ed.max(1.0),
                        "k={k}: {} vs {ed}",
                        g.dist_sq
                    );
                }
                // Distances ascending.
                for w in got.windows(2) {
                    assert!(w[0].dist_sq <= w[1].dist_sq + 1e-6);
                }
                // No duplicate positions.
                let mut positions: Vec<u32> = got.iter().map(|a| a.pos).collect();
                positions.sort_unstable();
                positions.dedup();
                assert_eq!(positions.len(), k, "duplicate positions in k-NN answer");
            }
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 8, 5));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 5);
        let (got, _) = exact_knn(&index, queries.series(0), 20, &QueryConfig::for_tests());
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn k1_equals_exact_search() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 17));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 17);
        for q in queries.iter() {
            let (knn, _) = exact_knn(&index, q, 1, &QueryConfig::for_tests());
            let (one, _) = crate::exact::exact_search(&index, q, &QueryConfig::for_tests());
            assert!((knn[0].dist_sq - one.dist_sq).abs() <= 1e-4 * one.dist_sq.max(1.0));
        }
    }

    #[test]
    fn knn_set_semantics() {
        let set = KnnSet::new(2);
        assert_eq!(set.bound(), f32::INFINITY);
        assert!(set.offer(5.0, 1));
        assert_eq!(set.bound(), f32::INFINITY, "not full yet");
        assert!(set.offer(3.0, 2));
        assert_eq!(set.bound(), 5.0);
        assert!(!set.offer(3.0, 2), "duplicate position rejected");
        assert!(!set.offer(7.0, 3), "worse than bound rejected");
        assert!(set.offer(1.0, 4));
        assert_eq!(set.bound(), 3.0);
        let answers = set.into_sorted();
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].pos, 4);
        assert_eq!(answers[1].pos, 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        KnnSet::new(0);
    }
}
