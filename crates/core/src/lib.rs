//! The MESSI in-memory data-series index (Peng, Fatourou, Palpanas;
//! ICDE 2020).
//!
//! MESSI builds an iSAX tree over an in-memory collection of data series
//! entirely in parallel, and answers *exact* 1-NN (and k-NN) similarity
//! search queries with a tree-driven algorithm based on concurrent
//! priority queues — the first index to answer exact queries over
//! 100 GB collections at interactive (~50 ms) speeds.
//!
//! # Quick start
//!
//! ```
//! use messi_core::{IndexConfig, MessiIndex, QueryConfig};
//! use messi_series::gen::{self, DatasetKind};
//! use std::sync::Arc;
//!
//! // 1000 random-walk series of length 256 (the paper's default shape).
//! let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 1000, 42));
//! let queries = messi_series::gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 42);
//!
//! let (index, _stats) = MessiIndex::build(Arc::clone(&data), &IndexConfig::default());
//! let (answer, _qstats) = index.search(queries.series(0), &QueryConfig::default());
//!
//! // The answer is exact: identical to a brute-force scan.
//! let (bf_pos, bf_dist) = data.nearest_neighbor_brute_force(queries.series(0));
//! assert_eq!(answer.pos as usize, bf_pos);
//! assert!((answer.dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0));
//! ```
//!
//! # Module map (↔ paper sections)
//!
//! * [`config`] — index/query parameters (§IV-B's tuning knobs).
//! * [`node`] — arena-backed tree storage: root fan-out ≤ 2^w, binary
//!   inner nodes, leaves holding `(iSAX summary, position)` pairs
//!   (§II-B, Fig. 1d), each root subtree flattened into one preorder
//!   node array plus one packed leaf-entry pool (two allocations per
//!   subtree).
//! * [`build`] — two-phase parallel construction (Alg. 1–4, Fig. 3).
//! * [`index`] — the [`MessiIndex`] handle and approximate search.
//! * [`persist`] — versioned, checksummed index snapshots: save a built
//!   index to a file, reload it and answer queries without rebuilding.
//! * [`engine`] — the unified query engine: one generic traversal/queue/
//!   drain driver (Alg. 5–9) parameterized by a metric (Euclidean or
//!   DTW) and a search objective (1-NN, k-NN, or ε-range), plus the
//!   reusable per-worker [`engine::QueryContext`] scratch.
//! * [`exact`] — exact 1-NN search (Alg. 5–9, Fig. 4), in single-queue
//!   (SQ) and multi-queue (MQ) modes; an adapter over [`engine`].
//! * [`knn`] — exact k-NN search (the paper's k-NN classification
//!   application, §I), Euclidean and DTW; an adapter over [`engine`].
//! * [`range`] — exact ε-range search (the companion similarity-search
//!   primitive of the iSAX index family), Euclidean and DTW; an adapter
//!   over [`engine`] in its queue-less mode.
//! * [`approximate`] — ng- and δ-ε-approximate 1-NN search with error
//!   bounds (the journal version's fourth query mode), Euclidean and
//!   DTW; an adapter over [`engine`] with an ε-inflated bound and a
//!   δ-derived early-termination budget.
//! * [`exec`] — the pooled query-execution layer: a
//!   [`exec::QueryExecutor`] owning warm per-worker contexts, serving
//!   any objective × metric as single queries or batches under
//!   intra-query (paper protocol) or inter-query (throughput)
//!   scheduling.
//! * [`batch`] — compatibility wrappers over [`exec`]: the historical
//!   1-NN `search_batch` / `search_batch_interquery` entry points.
//! * [`dtw`] — exact DTW 1-NN search via LB_Keogh envelopes (Fig. 19);
//!   an adapter over [`engine`].
//! * [`stats`] — build/query statistics: distance-calculation counters
//!   (Fig. 17) and per-phase time breakdown (Fig. 13), now reported
//!   uniformly by every objective.
//! * [`serve`] — the index service daemon: a hand-rolled HTTP/1.1
//!   frontend over one prewarmed sharded executor with readiness
//!   gating, a bounded load-shedding admission gate, live ingest
//!   (`POST /ingest`), Prometheus metrics (including per-shard counter
//!   families), graceful drain, and the matching load-smoke client.
//! * [`ingest`] — live ingest: the [`DeltaIndex`] epoch/RCU seam that
//!   absorbs appended series while queries keep reading immutable
//!   published arenas plus a sealed-delta overlay, republishing fresh
//!   arenas on size/cadence triggers, with a framed checksummed delta
//!   log for durability (replayed by `--load`, truncated by
//!   `messi compact`).
//! * [`shard`] — sharded multi-index scatter-gather: a [`ShardedIndex`]
//!   of N independent [`MessiIndex`] shards over contiguous position
//!   ranges, built in parallel, queried by fanning each query out to
//!   per-shard engines that share one atomic cross-shard BSF for
//!   pruning, and persisted as a per-shard snapshot directory with a
//!   checksummed manifest.
//! * [`validate`] — index invariant checker used by the test suite.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod approximate;
pub mod batch;
pub mod build;
pub mod config;
pub mod dtw;
pub mod engine;
pub mod exact;
pub mod exec;
pub mod index;
pub mod ingest;
pub mod knn;
pub mod node;
pub mod persist;
pub mod range;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod validate;

pub use config::{
    auto_leaf_capacity, BsfPolicy, BuildVariant, IndexConfig, QueryConfig, QueuePolicy,
    RunBatchPolicy,
};
pub use engine::QueryContext;
pub use exact::QueryAnswer;
pub use exec::{MetricSpec, Objective, QueryExecutor, QuerySpec, Schedule};
pub use index::MessiIndex;
pub use ingest::{
    DeltaIndex, IngestError, IngestOptions, IngestReport, IngestStats, LogError, ReplayReport,
};
pub use persist::{load_index, save_index, PersistError};
pub use serve::{IndexServer, ServeConfig, ServeSummary};
pub use shard::{global_pos, load_sharded, save_sharded, ShardedExecutor, ShardedIndex};
pub use stats::{BuildStats, QueryStats, StopReason, TimeBreakdown};
