//! Arena-backed index tree storage.
//!
//! Three node kinds, as in §II-B / Fig. 1(d): a root with up to 2^w
//! children (represented in [`crate::index::MessiIndex`] as a dense array
//! indexed by root key), binary inner nodes carrying a
//! variable-cardinality iSAX summary, and leaves holding the
//! full-cardinality `(iSAX summary, position)` pairs of the series below
//! them. Storing the summaries *in* the leaf (not pointers to a separate
//! array) keeps queue-driven leaf scans sequential in memory — one of
//! MESSI's deltas over ParIS (§I).
//!
//! This module takes that layout argument to its conclusion: instead of
//! one heap allocation per node (`Box<Node>`) and one `Vec` per leaf, a
//! whole root subtree lives in a [`TreeArena`] — one contiguous node
//! array in preorder (parent before children, left subtree before right)
//! plus one packed [`LeafEntry`] pool in the same leaf order, plus a
//! struct-of-arrays transposition of the pool's SAX symbols (16
//! contiguous segment-columns per leaf) that the batched mindist cascade
//! streams cache-line by cache-line. A subtree is **three** allocations
//! instead of thousands; inner-node traversal walks an index-linked flat
//! array, leaf scans walk flat slices, and `for_each_leaf` is a linear
//! sweep of the node array. The flat layout is also what makes the index
//! serializable ([`crate::persist`]) — the SoA pool is derived data,
//! rebuilt rather than stored.
//!
//! Construction still follows the paper's incremental protocol (Alg. 4:
//! insert, split overflowing leaves): [`SubtreeBuilder`] runs exactly the
//! old insert/split algorithm against reusable index-linked scratch, then
//! flattens into the arena with exact-capacity allocations. One builder
//! serves many subtrees back to back, so its own scratch amortizes to
//! zero.

use messi_sax::split::choose_split;
use messi_sax::word::{NodeWord, SaxWord};
use messi_sax::MAX_SEGMENTS;

/// A `(iSAX summary, series position)` pair — the unit the index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// Full-cardinality iSAX summary of the series.
    pub sax: SaxWord,
    /// Position of the raw series in the dataset (`RawData` index).
    pub pos: u32,
}

/// Index of a node within its [`TreeArena`] (the root is
/// [`TreeArena::ROOT`]).
pub type NodeId = u32;

/// `tag` value marking a leaf record (inner nodes store their split
/// segment there, which is always `< MAX_SEGMENTS`).
const LEAF_TAG: u8 = u8::MAX;

/// Linked-list terminator / "empty slot" sentinel in builder scratch.
const NIL: u32 = u32::MAX;

/// One node record of a [`TreeArena`].
///
/// `tag` discriminates the two kinds: [`LEAF_TAG`] for leaves, the split
/// segment (`< MAX_SEGMENTS`) for inner nodes. `lo`/`hi` are the left and
/// right child ids of an inner node, or the `[lo, hi)` range of the leaf
/// in the arena's entry pool.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeRecord {
    pub(crate) word: NodeWord,
    pub(crate) tag: u8,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// Borrowed view of one leaf: its covering word and its packed entries.
#[derive(Debug, Clone, Copy)]
pub struct LeafRef<'a> {
    /// Variable-cardinality summary covering everything in this leaf.
    pub word: &'a NodeWord,
    /// The stored `(summary, position)` pairs, contiguous in the pool.
    pub entries: &'a [LeafEntry],
    /// The leaf's struct-of-arrays symbol block: `MAX_SEGMENTS` columns of
    /// `entries.len()` bytes each, column `s` starting at
    /// `s * entries.len()`. `cols[s * n + j] == entries[j].sax.symbol(s)`
    /// — the transposed copy the mindist cascade streams instead of
    /// striding over interleaved [`SaxWord`]s.
    pub cols: &'a [u8],
}

/// The slice of one leaf a search worker scans: packed entries plus the
/// matching SoA symbol block (what the priority queues carry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LeafSlice<'a> {
    /// The leaf's `(summary, position)` pairs.
    pub(crate) entries: &'a [LeafEntry],
    /// The leaf's transposed symbol columns (see [`LeafRef::cols`]).
    pub(crate) cols: &'a [u8],
}

/// A root subtree flattened into contiguous storage: node records in
/// preorder, one packed leaf-entry pool, and the pool's struct-of-arrays
/// symbol transposition — three allocations total.
///
/// Node accessors take a [`NodeId`]; traversal starts at
/// [`TreeArena::ROOT`] and follows [`TreeArena::children`]. Leaves are in
/// depth-first (left-to-right) order both in the node array and in the
/// pool, so [`TreeArena::for_each_leaf`] is a linear sweep.
///
/// The `cols` pool mirrors `entries` segment-major *per leaf*: the leaf
/// with pool range `[lo, hi)` (n = hi − lo entries) owns the byte block
/// `[lo·16, hi·16)`, inside which column `s` occupies
/// `[lo·16 + s·n, lo·16 + (s+1)·n)`. The batched mindist kernel thus
/// reads each segment's symbols as one sequential run of cache lines
/// instead of striding 20 bytes per entry through interleaved
/// [`SaxWord`]s. `cols` is derived data — rebuilt on load, never
/// serialized — and always uses all [`MAX_SEGMENTS`] columns regardless
/// of the configured segment count, so the layout needs no config to
/// decode.
#[derive(Debug)]
pub struct TreeArena {
    nodes: Vec<NodeRecord>,
    entries: Vec<LeafEntry>,
    cols: Vec<u8>,
}

/// Builds the SoA symbol pool for a finished node/entry layout (see
/// [`TreeArena`] docs for the block layout). Shared by
/// [`SubtreeBuilder::finish`] and [`TreeArena::from_raw`]; exactly one
/// exact-sized allocation.
fn transpose_cols(nodes: &[NodeRecord], entries: &[LeafEntry]) -> Vec<u8> {
    let mut cols = vec![0u8; entries.len() * MAX_SEGMENTS];
    for n in nodes {
        if n.tag != LEAF_TAG {
            continue;
        }
        let (lo, hi) = (n.lo as usize, n.hi as usize);
        let len = hi - lo;
        let block = &mut cols[lo * MAX_SEGMENTS..hi * MAX_SEGMENTS];
        for (j, e) in entries[lo..hi].iter().enumerate() {
            for (s, &sym) in e.sax.symbols().iter().enumerate() {
                block[s * len + j] = sym;
            }
        }
    }
    cols
}

impl TreeArena {
    /// The root node's id (arenas are built root-first).
    pub const ROOT: NodeId = 0;

    /// Number of nodes (inner + leaf) in the subtree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of series stored in the subtree.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of leaves in the subtree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.tag == LEAF_TAG).count()
    }

    /// Height of the subtree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        self.height_of(Self::ROOT)
    }

    fn height_of(&self, id: NodeId) -> usize {
        let n = &self.nodes[id as usize];
        if n.tag == LEAF_TAG {
            1
        } else {
            1 + self.height_of(n.lo).max(self.height_of(n.hi))
        }
    }

    /// The node's iSAX summary.
    #[inline]
    pub fn word(&self, id: NodeId) -> &NodeWord {
        &self.nodes[id as usize].word
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id as usize].tag == LEAF_TAG
    }

    /// Which segment an inner node's split refined.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is a leaf.
    #[inline]
    pub fn split_segment(&self, id: NodeId) -> usize {
        let n = &self.nodes[id as usize];
        debug_assert_ne!(n.tag, LEAF_TAG, "split_segment of a leaf");
        n.tag as usize
    }

    /// An inner node's `(left, right)` children (0-bit child, 1-bit
    /// child).
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is a leaf.
    #[inline]
    pub fn children(&self, id: NodeId) -> (NodeId, NodeId) {
        let n = &self.nodes[id as usize];
        debug_assert_ne!(n.tag, LEAF_TAG, "children of a leaf");
        (n.lo, n.hi)
    }

    /// A leaf's packed entries.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub fn leaf_entries(&self, id: NodeId) -> &[LeafEntry] {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf_entries of an inner node");
        &self.entries[n.lo as usize..n.hi as usize]
    }

    /// A leaf's SoA symbol block (`MAX_SEGMENTS` columns of
    /// `entries.len()` bytes; see [`LeafRef::cols`] for the layout).
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub fn leaf_cols(&self, id: NodeId) -> &[u8] {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf_cols of an inner node");
        &self.cols[n.lo as usize * MAX_SEGMENTS..n.hi as usize * MAX_SEGMENTS]
    }

    /// Borrowed view of the leaf at `id`.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub fn leaf(&self, id: NodeId) -> LeafRef<'_> {
        LeafRef {
            word: self.word(id),
            entries: self.leaf_entries(id),
            cols: self.leaf_cols(id),
        }
    }

    /// The scannable slice of the leaf at `id` — what gets pushed onto
    /// the search priority queues.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub(crate) fn leaf_slice(&self, id: NodeId) -> LeafSlice<'_> {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf_slice of an inner node");
        LeafSlice {
            entries: &self.entries[n.lo as usize..n.hi as usize],
            cols: &self.cols[n.lo as usize * MAX_SEGMENTS..n.hi as usize * MAX_SEGMENTS],
        }
    }

    /// Visits every leaf in depth-first order. Thanks to the preorder
    /// layout this is a linear sweep of the node array, not a pointer
    /// chase.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(LeafRef<'a>)) {
        for n in &self.nodes {
            if n.tag == LEAF_TAG {
                f(LeafRef {
                    word: &n.word,
                    entries: &self.entries[n.lo as usize..n.hi as usize],
                    cols: &self.cols[n.lo as usize * MAX_SEGMENTS..n.hi as usize * MAX_SEGMENTS],
                });
            }
        }
    }

    /// Descends from `from` to the leaf responsible for `sax` by
    /// following the summary's refined bits at each split — the
    /// home-leaf walk every seeding path shares (Alg. 5 line 3).
    ///
    /// `from` (and, by the refinement invariant, every node on the walk)
    /// must cover `sax`; debug builds assert it.
    pub fn descend_by_sax(&self, from: NodeId, sax: &SaxWord, segments: usize) -> NodeId {
        let mut id = from;
        while !self.is_leaf(id) {
            debug_assert!(self.word(id).contains(sax, segments));
            let (left, right) = self.children(id);
            id = if self.word(id).child_of(sax, self.split_segment(id)) {
                right
            } else {
                left
            };
        }
        id
    }

    /// Whether all three backing allocations are capacity-tight (length
    /// == capacity) — true for every arena produced by
    /// [`SubtreeBuilder::finish`], which allocates each exactly once at
    /// its final size. The build tests assert this "allocation-flat"
    /// invariant on whole indexes.
    pub fn allocation_flat(&self) -> bool {
        self.nodes.capacity() == self.nodes.len()
            && self.entries.capacity() == self.entries.len()
            && self.cols.capacity() == self.cols.len()
    }

    /// Bytes held by the node array (capacity, i.e. the allocation).
    pub fn node_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<NodeRecord>()
    }

    /// Bytes held by the leaf-entry pool (capacity).
    pub fn entry_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<LeafEntry>()
    }

    /// Bytes held by the SoA symbol pool (capacity).
    pub fn col_bytes(&self) -> usize {
        self.cols.capacity()
    }

    /// A leaf's `[start, end)` range in the entry pool (validation and
    /// serialization).
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    pub(crate) fn leaf_range(&self, id: NodeId) -> (u32, u32) {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf_range of an inner node");
        (n.lo, n.hi)
    }

    /// Raw node records, for serialization ([`crate::persist`]).
    pub(crate) fn raw_nodes(&self) -> &[NodeRecord] {
        &self.nodes
    }

    /// Raw pool entries, for serialization ([`crate::persist`]).
    pub(crate) fn raw_entries(&self) -> &[LeafEntry] {
        &self.entries
    }

    /// Deepest tree a legitimate build can produce: every inner→child
    /// step refines exactly one bit of one segment, so a root-to-leaf
    /// path has at most `MAX_SEGMENTS × CARD_BITS` splits.
    const MAX_DEPTH: usize = messi_sax::MAX_SEGMENTS * messi_sax::CARD_BITS + 1;

    /// Reassembles an arena from raw parts (the deserialization path),
    /// verifying the structural invariants the accessors rely on: the
    /// records must form exactly one preorder tree — a left-then-right
    /// depth-first walk from the root enumerates ids `0..n` in ascending
    /// order, which rules out unreachable nodes, shared children, and
    /// cycles in one pass — no deeper than any legitimate build can
    /// produce, whose leaves partition the entry pool left to right.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub(crate) fn from_raw(
        nodes: Vec<NodeRecord>,
        entries: Vec<LeafEntry>,
    ) -> Result<Self, String> {
        if nodes.is_empty() {
            return Err("arena with zero nodes".into());
        }
        let nn = nodes.len() as u64;
        let mut covered = 0u64; // leaves partition the pool in order
        for (id, n) in nodes.iter().enumerate() {
            if n.tag == LEAF_TAG {
                if u64::from(n.lo) != covered {
                    return Err(format!(
                        "leaf {id}: pool range starts at {} not {covered}",
                        n.lo
                    ));
                }
                if n.hi < n.lo || entries.len() < n.hi as usize {
                    return Err(format!(
                        "leaf {id}: pool range {}..{} out of bounds",
                        n.lo, n.hi
                    ));
                }
                covered = u64::from(n.hi);
            } else {
                if usize::from(n.tag) >= messi_sax::MAX_SEGMENTS {
                    return Err(format!(
                        "inner node {id}: split segment {} out of range",
                        n.tag
                    ));
                }
                if u64::from(n.hi) <= u64::from(n.lo) || u64::from(n.hi) >= nn {
                    return Err(format!(
                        "inner node {id}: children {}/{} out of order or bounds",
                        n.lo, n.hi
                    ));
                }
            }
        }
        if covered != entries.len() as u64 {
            return Err(format!(
                "leaves cover {covered} pool entries of {}",
                entries.len()
            ));
        }
        // Preorder tree-ness, checked by one explicit-stack DFS: visiting
        // left-then-right must enumerate ids in exactly ascending order.
        // A node with two parents gets visited twice (id ≠ expected), an
        // unreachable node leaves the count short, and the depth cap
        // keeps the recursive traversals (height, engine descent) within
        // sane stack bounds for files no honest build could have written.
        let mut stack: Vec<(u32, usize)> = vec![(0, 1)];
        let mut expect = 0u64;
        while let Some((id, depth)) = stack.pop() {
            if u64::from(id) != expect {
                return Err(format!(
                    "node {id} visited out of preorder (expected {expect})"
                ));
            }
            if depth > Self::MAX_DEPTH {
                return Err(format!(
                    "tree deeper than any build can produce (> {})",
                    Self::MAX_DEPTH
                ));
            }
            expect += 1;
            let n = &nodes[id as usize];
            if n.tag != LEAF_TAG {
                stack.push((n.hi, depth + 1));
                stack.push((n.lo, depth + 1));
            }
        }
        if expect != nn {
            return Err(format!(
                "{} of {nn} nodes unreachable from the root",
                nn - expect
            ));
        }
        // The SoA symbol pool is derived data: rebuild it from the (now
        // validated) records instead of trusting serialized bytes.
        let cols = transpose_cols(&nodes, &entries);
        Ok(Self {
            nodes,
            entries,
            cols,
        })
    }
}

/// Builder scratch node: a leaf holds its entry list as `head`/`tail`
/// indices into the builder's link array; an inner node holds child ids.
#[derive(Debug, Clone, Copy)]
struct ScratchNode {
    word: NodeWord,
    /// Split segment for inner nodes, [`LEAF_TAG`] for leaves.
    tag: u8,
    /// Inner: left child id. Leaf: entry-list head ([`NIL`] when empty).
    a: u32,
    /// Inner: right child id. Leaf: entry-list tail ([`NIL`] when empty).
    b: u32,
    /// Leaf only: entries in the list.
    len: u32,
}

/// Clonable iterator over the summaries of one scratch leaf's entry
/// list, in insertion order (what [`choose_split`] consumes).
#[derive(Clone, Copy)]
struct SaxLinkIter<'a> {
    entries: &'a [LeafEntry],
    next: &'a [u32],
    cur: u32,
}

impl<'a> Iterator for SaxLinkIter<'a> {
    type Item = &'a SaxWord;

    fn next(&mut self) -> Option<&'a SaxWord> {
        if self.cur == NIL {
            return None;
        }
        let e = &self.entries[self.cur as usize];
        self.cur = self.next[self.cur as usize];
        Some(&e.sax)
    }
}

/// Builds one subtree incrementally — the paper's insert-and-split
/// protocol (Alg. 4 lines 7–11: "while targetLeaf is full do SplitNode")
/// — into a flat [`TreeArena`].
///
/// Splits follow the balanced-segment policy of `messi_sax::split`. When
/// a leaf's entries cannot be separated (identical summaries, or every
/// segment at maximum cardinality) the leaf is allowed to overflow —
/// further splits would loop forever without separating anything.
///
/// The builder's scratch (index-linked entry lists, a flat scratch-node
/// array) is retained across subtrees: `begin` → `insert`* → `finish`
/// cycles reuse the same buffers, and `finish` performs **exactly three**
/// exact-capacity allocations — the arena's node array, entry pool, and
/// SoA symbol pool — regardless of how many nodes the subtree has
/// (debug-asserted).
#[derive(Debug)]
pub struct SubtreeBuilder {
    /// Number of PAA segments (the paper's w).
    segments: usize,
    /// Leaf capacity before a split is attempted.
    leaf_capacity: usize,
    nodes: Vec<ScratchNode>,
    entries: Vec<LeafEntry>,
    /// Parallel to `entries`: next entry in the owning leaf's list.
    next: Vec<u32>,
}

impl SubtreeBuilder {
    /// Creates an empty builder for the given tree parameters.
    pub fn new(segments: usize, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        Self {
            segments,
            leaf_capacity,
            nodes: Vec::new(),
            entries: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Starts a fresh subtree covering `word`: clears the scratch
    /// (retaining capacity) and plants an empty root leaf.
    pub fn begin(&mut self, word: NodeWord) {
        self.nodes.clear();
        self.entries.clear();
        self.next.clear();
        self.nodes.push(ScratchNode {
            word,
            tag: LEAF_TAG,
            a: NIL,
            b: NIL,
            len: 0,
        });
    }

    /// Inserts one entry into the subtree under construction.
    ///
    /// Equivalent to the paper's "while targetLeaf is full do SplitNode"
    /// loop (Alg. 4 lines 8–10), phrased as push-then-rebalance: the entry
    /// is appended to its leaf, then the leaf is split (repeatedly,
    /// drilling through non-separating refinements) until every leaf on
    /// the path is back within capacity or provably inseparable.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SubtreeBuilder::begin`].
    pub fn insert(&mut self, entry: LeafEntry) {
        assert!(!self.nodes.is_empty(), "insert before begin");
        // Descend to the leaf responsible for this entry.
        let mut id = 0usize;
        loop {
            let n = &self.nodes[id];
            if n.tag == LEAF_TAG {
                break;
            }
            debug_assert!(n.word.contains(&entry.sax, self.segments));
            id = if n.word.child_of(&entry.sax, n.tag as usize) {
                n.b
            } else {
                n.a
            } as usize;
        }
        debug_assert!(self.nodes[id].word.contains(&entry.sax, self.segments));
        let slot = self.entries.len() as u32;
        self.entries.push(entry);
        self.next.push(NIL);
        self.append_to_leaf(id, slot);
        self.rebalance(id);
    }

    /// Links an already-stored entry slot at the tail of `leaf`'s list.
    fn append_to_leaf(&mut self, leaf: usize, slot: u32) {
        let tail = {
            let n = &mut self.nodes[leaf];
            let tail = n.b;
            n.b = slot;
            n.len += 1;
            if tail == NIL {
                n.a = slot;
            }
            tail
        };
        if tail != NIL {
            self.next[tail as usize] = slot;
        }
    }

    /// Splits `id` (and recursively any oversized children the split
    /// produces) until capacity holds or the entries are inseparable.
    fn rebalance(&mut self, id: usize) {
        let n = &self.nodes[id];
        let oversized = n.tag == LEAF_TAG && n.len as usize > self.leaf_capacity;
        if !oversized || !self.split_leaf(id) {
            return;
        }
        let (left, right) = {
            let n = &self.nodes[id];
            (n.a as usize, n.b as usize)
        };
        self.rebalance(left);
        self.rebalance(right);
    }

    /// Splits the leaf at `id` in place, turning it into an inner node
    /// with two leaf children. Returns `false` only when the entries are
    /// inseparable (identical summaries, or every segment at maximum
    /// cardinality), in which case the leaf is left untouched.
    ///
    /// When no *single-bit* split separates the entries but their
    /// summaries still differ, a segment whose deeper bits differ is
    /// refined anyway (one child gets everything) — the paper's
    /// "while targetLeaf is full do SplitNode" loop drills down until the
    /// differing bit is reached.
    fn split_leaf(&mut self, id: usize) -> bool {
        let node = self.nodes[id];
        debug_assert_eq!(node.tag, LEAF_TAG, "split_leaf on inner node");
        let list = |cur| SaxLinkIter {
            entries: &self.entries,
            next: &self.next,
            cur,
        };
        let segment = {
            let choice = match choose_split(&node.word, self.segments, list(node.a)) {
                Some(c) => c,
                None => return false, // every segment at max cardinality
            };
            if choice.is_separating() {
                choice.segment
            } else {
                // Drill-down fallback: refine a segment whose full
                // 8-bit symbols actually differ across entries (such a
                // refinement chain separates within CARD_BITS splits).
                let first = self.entries[node.a as usize].sax;
                match (0..self.segments).find(|&i| {
                    (node.word.bits(i) as usize) < messi_sax::CARD_BITS
                        && list(node.a).any(|sax| sax.symbol(i) != first.symbol(i))
                }) {
                    Some(i) => i,
                    None => return false, // identical summaries: inseparable
                }
            }
        };
        let (zero_word, one_word) = node.word.refine(segment);
        let left = self.nodes.len();
        for word in [zero_word, one_word] {
            self.nodes.push(ScratchNode {
                word,
                tag: LEAF_TAG,
                a: NIL,
                b: NIL,
                len: 0,
            });
        }
        // Relink each entry to the child it belongs to, preserving order
        // (stable partition, exactly like the old per-leaf Vec split).
        let mut cur = node.a;
        while cur != NIL {
            let after = self.next[cur as usize];
            self.next[cur as usize] = NIL;
            let child = if node.word.child_of(&self.entries[cur as usize].sax, segment) {
                left + 1
            } else {
                left
            };
            self.append_to_leaf(child, cur);
            cur = after;
        }
        self.nodes[id] = ScratchNode {
            word: node.word,
            tag: segment as u8,
            a: left as u32,
            b: left as u32 + 1,
            len: 0,
        };
        true
    }

    /// Flattens the finished subtree into a [`TreeArena`] (preorder node
    /// array + packed leaf pool + SoA symbol pool) and resets the scratch
    /// for the next subtree.
    ///
    /// The arena is built with exactly three exact-capacity allocations —
    /// the node-count and entry-count are known, and the SoA transposition
    /// is a post-pass over the emitted leaves — which debug assertions
    /// verify (the "allocation-flat subtree" invariant).
    ///
    /// # Panics
    ///
    /// Panics if called before [`SubtreeBuilder::begin`].
    pub fn finish(&mut self) -> TreeArena {
        assert!(!self.nodes.is_empty(), "finish before begin");
        let mut nodes: Vec<NodeRecord> = Vec::with_capacity(self.nodes.len());
        let mut pool: Vec<LeafEntry> = Vec::with_capacity(self.entries.len());
        let (node_cap, pool_cap) = (nodes.capacity(), pool.capacity());
        self.emit(0, &mut nodes, &mut pool);
        debug_assert_eq!(nodes.len(), self.nodes.len(), "every node emitted once");
        debug_assert_eq!(pool.len(), self.entries.len(), "every entry emitted once");
        debug_assert_eq!(nodes.capacity(), node_cap, "node array reallocated");
        debug_assert_eq!(pool.capacity(), pool_cap, "entry pool reallocated");
        self.nodes.clear();
        self.entries.clear();
        self.next.clear();
        let cols = transpose_cols(&nodes, &pool);
        TreeArena {
            nodes,
            entries: pool,
            cols,
        }
    }

    /// Emits the scratch node `sid` (and its subtree) in preorder,
    /// returning its final arena id.
    fn emit(&self, sid: usize, out: &mut Vec<NodeRecord>, pool: &mut Vec<LeafEntry>) -> u32 {
        let fid = out.len() as u32;
        let n = self.nodes[sid];
        if n.tag == LEAF_TAG {
            let start = pool.len() as u32;
            let mut cur = n.a;
            while cur != NIL {
                pool.push(self.entries[cur as usize]);
                cur = self.next[cur as usize];
            }
            debug_assert_eq!(pool.len() as u32 - start, n.len);
            out.push(NodeRecord {
                word: n.word,
                tag: LEAF_TAG,
                lo: start,
                hi: pool.len() as u32,
            });
        } else {
            out.push(NodeRecord {
                word: n.word,
                tag: n.tag,
                lo: 0,
                hi: 0,
            });
            let left = self.emit(n.a as usize, out, pool);
            let right = self.emit(n.b as usize, out, pool);
            let rec = &mut out[fid as usize];
            rec.lo = left;
            rec.hi = right;
        }
        fid
    }

    /// Convenience: builds a whole subtree in one call.
    pub fn build_subtree(
        &mut self,
        word: NodeWord,
        entries: impl IntoIterator<Item = LeafEntry>,
    ) -> TreeArena {
        self.begin(word);
        for e in entries {
            self.insert(e);
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_sax::convert::{sax_word, SaxConfig};
    use messi_sax::root_key::{node_word_for_root_key, root_key};

    fn entry_for(series: &[f32], pos: u32, config: SaxConfig) -> LeafEntry {
        LeafEntry {
            sax: sax_word(series, config),
            pos,
        }
    }

    fn series(seed: u32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + seed as f32 * 13.7) * (0.11 + 0.01 * seed as f32)).sin() * 2.0)
            .collect()
    }

    #[test]
    fn insert_without_split_accumulates() {
        let word = NodeWord::root();
        let mut builder = SubtreeBuilder::new(4, 100);
        let config = SaxConfig::new(4, 32);
        let arena = builder.build_subtree(
            word,
            (0..50u32).map(|i| entry_for(&series(i, 32), i, config)),
        );
        assert!(arena.is_leaf(TreeArena::ROOT));
        assert_eq!(arena.num_entries(), 50);
        assert_eq!(arena.num_leaves(), 1);
        assert_eq!(arena.num_nodes(), 1);
        assert_eq!(arena.height(), 1);
        // Entries come out in insertion order.
        let positions: Vec<u32> = arena
            .leaf_entries(TreeArena::ROOT)
            .iter()
            .map(|e| e.pos)
            .collect();
        assert_eq!(positions, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn overflowing_leaf_splits_and_partitions() {
        let config = SaxConfig::new(4, 32);
        // Insert everything under its proper root subtree word so splits
        // are meaningful.
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..400u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let (key, entries) = groups
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some group");
        assert!(entries.len() > 8, "need a non-trivial group");
        let mut builder = SubtreeBuilder::new(4, 8);
        let arena = builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
        assert_eq!(arena.num_entries(), entries.len());
        assert!(arena.num_leaves() > 1, "should have split");
        // Every leaf's entries are contained in the leaf's word, and no
        // leaf (except unsplittable ones) exceeds capacity.
        let mut seen = 0;
        arena.for_each_leaf(&mut |leaf| {
            seen += leaf.entries.len();
            for e in leaf.entries {
                assert!(leaf.word.contains(&e.sax, 4));
            }
            if leaf.entries.len() > 8 {
                // Only allowed when every entry has the same summary.
                let first = leaf.entries[0].sax;
                assert!(
                    leaf.entries.iter().all(|e| e.sax == first),
                    "oversized leaf with separable entries"
                );
            }
        });
        assert_eq!(seen, entries.len());
    }

    #[test]
    fn identical_summaries_overflow_without_splitting() {
        let config = SaxConfig::new(4, 32);
        let s = series(1, 32);
        let e = entry_for(&s, 0, config);
        let key = root_key(&e.sax, 4);
        let mut builder = SubtreeBuilder::new(4, 4);
        let arena = builder.build_subtree(
            node_word_for_root_key(key, 4),
            (0..20u32).map(|i| LeafEntry { pos: i, ..e }),
        );
        assert!(
            arena.is_leaf(TreeArena::ROOT),
            "identical words cannot separate"
        );
        assert_eq!(arena.num_entries(), 20);
    }

    #[test]
    fn structure_accessors() {
        let word = NodeWord::root();
        let mut builder = SubtreeBuilder::new(4, 8);
        let arena = builder.build_subtree(word, std::iter::empty());
        assert!(arena.is_leaf(TreeArena::ROOT));
        assert_eq!(arena.word(TreeArena::ROOT), &word);
        assert_eq!(arena.num_entries(), 0);
        assert_eq!(arena.height(), 1);
        assert!(arena.node_bytes() > 0 || arena.num_nodes() == 1);
        assert_eq!(arena.leaf(TreeArena::ROOT).entries.len(), 0);
    }

    #[test]
    fn builder_reuse_across_subtrees_is_clean() {
        let config = SaxConfig::new(4, 32);
        let mut builder = SubtreeBuilder::new(4, 4);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..200u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        // Build every group twice — with a fresh builder and with one
        // reused builder — and require identical flattened storage.
        for (key, entries) in groups {
            let word = node_word_for_root_key(key, 4);
            let reused = builder.build_subtree(word, entries.iter().copied());
            let fresh = SubtreeBuilder::new(4, 4).build_subtree(word, entries.iter().copied());
            assert_eq!(reused.num_nodes(), fresh.num_nodes(), "key {key}");
            assert_eq!(reused.num_leaves(), fresh.num_leaves(), "key {key}");
            let collect = |a: &TreeArena| {
                let mut v = Vec::new();
                a.for_each_leaf(&mut |l| v.extend(l.entries.iter().map(|e| e.pos)));
                v
            };
            assert_eq!(collect(&reused), collect(&fresh), "key {key}");
        }
    }

    #[test]
    fn preorder_invariants_hold_and_from_raw_validates() {
        let config = SaxConfig::new(4, 32);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..300u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let (key, entries) = groups
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some group");
        let mut builder = SubtreeBuilder::new(4, 4);
        let arena = builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
        // Round-tripping through from_raw accepts the builder's output…
        let nodes = arena.raw_nodes().to_vec();
        let pool = arena.raw_entries().to_vec();
        let back = TreeArena::from_raw(nodes.clone(), pool.clone()).expect("valid arena");
        assert_eq!(back.num_leaves(), arena.num_leaves());
        // …and rejects structural corruption.
        assert!(TreeArena::from_raw(Vec::new(), Vec::new()).is_err());
        if arena.num_nodes() > 1 {
            let mut bad = nodes.clone();
            bad[0].lo = 0; // self-referential child breaks preorder
            assert!(TreeArena::from_raw(bad, pool.clone()).is_err());
        }
        let mut bad = nodes;
        if let Some(last_leaf) = bad.iter().rposition(|n| n.tag == LEAF_TAG) {
            bad[last_leaf].hi += 1; // range past the pool
            assert!(TreeArena::from_raw(bad, pool).is_err());
        }
    }

    #[test]
    fn soa_columns_mirror_leaf_entries() {
        let config = SaxConfig::new(4, 32);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..300u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let mut builder = SubtreeBuilder::new(4, 8);
        for (key, entries) in groups {
            let arena =
                builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
            assert!(arena.allocation_flat());
            assert_eq!(arena.col_bytes(), arena.num_entries() * MAX_SEGMENTS);
            let mut total = 0usize;
            arena.for_each_leaf(&mut |leaf| {
                let n = leaf.entries.len();
                assert_eq!(leaf.cols.len(), n * MAX_SEGMENTS);
                for (j, e) in leaf.entries.iter().enumerate() {
                    for s in 0..MAX_SEGMENTS {
                        assert_eq!(
                            leaf.cols[s * n + j],
                            e.sax.symbol(s),
                            "key {key} entry {j} segment {s}"
                        );
                    }
                }
                total += n;
            });
            assert_eq!(total, arena.num_entries());
            // The round-tripped arena rebuilds an identical SoA pool.
            let back =
                TreeArena::from_raw(arena.raw_nodes().to_vec(), arena.raw_entries().to_vec())
                    .expect("valid arena");
            for id in 0..arena.num_nodes() as NodeId {
                if arena.is_leaf(id) {
                    assert_eq!(arena.leaf_cols(id), back.leaf_cols(id));
                }
            }
        }
    }

    #[test]
    fn from_raw_rejects_crafted_non_trees() {
        let w = NodeWord::root();
        let leaf = |lo: u32, hi: u32| NodeRecord {
            word: w,
            tag: u8::MAX,
            lo,
            hi,
        };
        let inner = |lo: u32, hi: u32| NodeRecord {
            word: w,
            tag: 0,
            lo,
            hi,
        };
        let entries = |n: usize| {
            vec![
                LeafEntry {
                    sax: SaxWord::zeroed(),
                    pos: 0
                };
                n
            ]
        };
        // Unreachable node: the root only spans ids 1..=2, node 3 never
        // gets visited, but its pool range keeps the linear partition
        // consistent — only the DFS walk can catch it.
        let orphan = vec![inner(1, 2), leaf(0, 3), leaf(3, 6), leaf(6, 9)];
        let err = TreeArena::from_raw(orphan, entries(9)).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
        // Shared child: two parents point at leaf 3 — the DFS visits it
        // twice, out of preorder.
        let shared = vec![inner(1, 3), inner(2, 3), leaf(0, 1), leaf(1, 2)];
        assert!(TreeArena::from_raw(shared, entries(2)).is_err());
        // A left spine deeper than any legitimate build must be refused
        // (honest depth is bounded by total refinable bits), keeping the
        // recursive traversals within sane stack bounds. The spine is a
        // structurally flawless preorder tree of 2D+1 nodes — only the
        // depth cap can reject it.
        let d = (TreeArena::MAX_DEPTH + 8) as u32;
        let mut spine: Vec<NodeRecord> = (0..d).map(|i| inner(i + 1, 2 * d - i)).collect();
        for _ in 0..=d {
            spine.push(leaf(0, 0));
        }
        let err = TreeArena::from_raw(spine, entries(0)).unwrap_err();
        assert!(err.contains("deeper"), "{err}");
    }
}
