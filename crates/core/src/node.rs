//! The index tree.
//!
//! Three node kinds, as in §II-B / Fig. 1(d): a root with up to 2^w
//! children (represented in [`crate::index::MessiIndex`] as a dense array
//! indexed by root key), binary inner nodes carrying a
//! variable-cardinality iSAX summary, and leaves holding the
//! full-cardinality `(iSAX summary, position)` pairs of the series below
//! them. Storing the summaries *in* the leaf (not pointers to a separate
//! array) keeps queue-driven leaf scans sequential in memory — one of
//! MESSI's deltas over ParIS (§I).

use messi_sax::split::choose_split;
use messi_sax::word::{NodeWord, SaxWord};

/// A `(iSAX summary, series position)` pair — the unit the index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// Full-cardinality iSAX summary of the series.
    pub sax: SaxWord,
    /// Position of the raw series in the dataset (`RawData` index).
    pub pos: u32,
}

/// A leaf node: the iSAX summaries and positions of its series.
#[derive(Debug)]
pub struct LeafNode {
    /// Variable-cardinality summary covering everything in this leaf.
    pub word: NodeWord,
    /// The stored `(summary, position)` pairs.
    pub entries: Vec<LeafEntry>,
}

/// An inner (split) node with exactly two children.
#[derive(Debug)]
pub struct InnerNode {
    /// Variable-cardinality summary covering the whole subtree.
    pub word: NodeWord,
    /// Which segment the split refined.
    pub split_segment: u8,
    /// Child whose refined bit is 0.
    pub left: Box<Node>,
    /// Child whose refined bit is 1.
    pub right: Box<Node>,
}

/// A node of the index tree.
#[derive(Debug)]
pub enum Node {
    /// Inner node (two children).
    Inner(InnerNode),
    /// Leaf node (stored entries).
    Leaf(LeafNode),
}

impl Node {
    /// Creates an empty leaf covering `word`.
    pub fn empty_leaf(word: NodeWord) -> Self {
        Node::Leaf(LeafNode {
            word,
            entries: Vec::new(),
        })
    }

    /// The node's iSAX summary.
    pub fn word(&self) -> &NodeWord {
        match self {
            Node::Inner(n) => &n.word,
            Node::Leaf(n) => &n.word,
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Number of series stored in this subtree.
    pub fn num_entries(&self) -> usize {
        match self {
            Node::Inner(n) => n.left.num_entries() + n.right.num_entries(),
            Node::Leaf(n) => n.entries.len(),
        }
    }

    /// Number of leaves in this subtree.
    pub fn num_leaves(&self) -> usize {
        match self {
            Node::Inner(n) => n.left.num_leaves() + n.right.num_leaves(),
            Node::Leaf(_) => 1,
        }
    }

    /// Height of this subtree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            Node::Inner(n) => 1 + n.left.height().max(n.right.height()),
            Node::Leaf(_) => 1,
        }
    }

    /// Visits every leaf in the subtree.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a LeafNode)) {
        match self {
            Node::Inner(n) => {
                n.left.for_each_leaf(f);
                n.right.for_each_leaf(f);
            }
            Node::Leaf(l) => f(l),
        }
    }
}

/// Inserts entries into a subtree, splitting overflowing leaves
/// (Alg. 4 lines 7–11: "while targetLeaf is full do SplitNode").
///
/// Splits follow the balanced-segment policy of `messi_sax::split`. When a
/// leaf's entries cannot be separated (identical summaries, or every
/// segment at maximum cardinality) the leaf is allowed to overflow —
/// further splits would loop forever without separating anything.
#[derive(Debug, Clone, Copy)]
pub struct SubtreeInserter {
    /// Number of PAA segments (the paper's w).
    pub segments: usize,
    /// Leaf capacity before a split is attempted.
    pub leaf_capacity: usize,
}

impl SubtreeInserter {
    /// Inserts one entry into the subtree rooted at `node`.
    ///
    /// Equivalent to the paper's "while targetLeaf is full do SplitNode"
    /// loop (Alg. 4 lines 8–10), phrased as push-then-rebalance: the entry
    /// is appended to its leaf, then the leaf is split (repeatedly,
    /// drilling through non-separating refinements) until every leaf on
    /// the path is back within capacity or provably inseparable.
    pub fn insert(&self, node: &mut Node, entry: LeafEntry) {
        let mut current = node;
        // Descend to the leaf responsible for this entry.
        while !current.is_leaf() {
            match current {
                Node::Inner(inner) => {
                    debug_assert!(inner.word.contains(&entry.sax, self.segments));
                    current = if inner
                        .word
                        .child_of(&entry.sax, inner.split_segment as usize)
                    {
                        &mut *inner.right
                    } else {
                        &mut *inner.left
                    };
                }
                Node::Leaf(_) => unreachable!("guarded by is_leaf"),
            }
        }
        if let Node::Leaf(leaf) = &mut *current {
            debug_assert!(leaf.word.contains(&entry.sax, self.segments));
            leaf.entries.push(entry);
        }
        self.rebalance(current);
    }

    /// Splits `node` (and recursively any oversized children the split
    /// produces) until capacity holds or the entries are inseparable.
    fn rebalance(&self, node: &mut Node) {
        let oversized = match &*node {
            Node::Leaf(l) => l.entries.len() > self.leaf_capacity,
            Node::Inner(_) => false,
        };
        if !oversized || !self.split_leaf(node) {
            return;
        }
        if let Node::Inner(inner) = node {
            self.rebalance(&mut inner.left);
            self.rebalance(&mut inner.right);
        }
    }

    /// Splits the leaf at `node` in place, turning it into an inner node
    /// with two leaf children. Returns `false` only when the entries are
    /// inseparable (identical summaries, or every segment at maximum
    /// cardinality), in which case the leaf is left untouched.
    ///
    /// When no *single-bit* split separates the entries but their
    /// summaries still differ, a segment whose deeper bits differ is
    /// refined anyway (one child gets everything) — the paper's
    /// "while targetLeaf is full do SplitNode" loop drills down until the
    /// differing bit is reached.
    fn split_leaf(&self, node: &mut Node) -> bool {
        let (word, segment) = {
            let leaf = match &*node {
                Node::Leaf(l) => l,
                Node::Inner(_) => panic!("split_leaf on inner node"),
            };
            let choice = match choose_split(
                &leaf.word,
                self.segments,
                leaf.entries.iter().map(|e| &e.sax),
            ) {
                Some(c) => c,
                None => return false, // every segment at max cardinality
            };
            let segment = if choice.is_separating() {
                choice.segment
            } else {
                // Drill-down fallback: refine a segment whose full
                // 8-bit symbols actually differ across entries (such a
                // refinement chain separates within CARD_BITS splits).
                let first = &leaf.entries[0].sax;
                match (0..self.segments).find(|&i| {
                    (leaf.word.bits(i) as usize) < messi_sax::CARD_BITS
                        && leaf
                            .entries
                            .iter()
                            .any(|e| e.sax.symbol(i) != first.symbol(i))
                }) {
                    Some(i) => i,
                    None => return false, // identical summaries: inseparable
                }
            };
            (leaf.word, segment)
        };
        let entries = match &mut *node {
            Node::Leaf(l) => std::mem::take(&mut l.entries),
            Node::Inner(_) => unreachable!("checked above"),
        };
        let (zero_word, one_word) = word.refine(segment);
        let mut left = LeafNode {
            word: zero_word,
            entries: Vec::new(),
        };
        let mut right = LeafNode {
            word: one_word,
            entries: Vec::new(),
        };
        for e in entries {
            if word.child_of(&e.sax, segment) {
                right.entries.push(e);
            } else {
                left.entries.push(e);
            }
        }
        *node = Node::Inner(InnerNode {
            word,
            split_segment: segment as u8,
            left: Box::new(Node::Leaf(left)),
            right: Box::new(Node::Leaf(right)),
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_sax::convert::{sax_word, SaxConfig};
    use messi_sax::root_key::{node_word_for_root_key, root_key};

    fn entry_for(series: &[f32], pos: u32, config: SaxConfig) -> LeafEntry {
        LeafEntry {
            sax: sax_word(series, config),
            pos,
        }
    }

    fn series(seed: u32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + seed as f32 * 13.7) * (0.11 + 0.01 * seed as f32)).sin() * 2.0)
            .collect()
    }

    #[test]
    fn insert_without_split_accumulates() {
        let word = NodeWord::root();
        let mut node = Node::empty_leaf(word);
        let ins = SubtreeInserter {
            segments: 4,
            leaf_capacity: 100,
        };
        let config = SaxConfig::new(4, 32);
        for i in 0..50u32 {
            ins.insert(&mut node, entry_for(&series(i, 32), i, config));
        }
        assert!(node.is_leaf());
        assert_eq!(node.num_entries(), 50);
        assert_eq!(node.num_leaves(), 1);
        assert_eq!(node.height(), 1);
    }

    #[test]
    fn overflowing_leaf_splits_and_partitions() {
        let config = SaxConfig::new(4, 32);
        // Insert everything under its proper root subtree word so splits
        // are meaningful.
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..400u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let (key, entries) = groups
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some group");
        assert!(entries.len() > 8, "need a non-trivial group");
        let ins = SubtreeInserter {
            segments: 4,
            leaf_capacity: 8,
        };
        let mut node = Node::empty_leaf(node_word_for_root_key(key, 4));
        for e in &entries {
            ins.insert(&mut node, *e);
        }
        assert_eq!(node.num_entries(), entries.len());
        assert!(node.num_leaves() > 1, "should have split");
        // Every leaf's entries are contained in the leaf's word, and no
        // leaf (except unsplittable ones) exceeds capacity.
        let mut seen = 0;
        node.for_each_leaf(&mut |leaf| {
            seen += leaf.entries.len();
            for e in &leaf.entries {
                assert!(leaf.word.contains(&e.sax, 4));
            }
            if leaf.entries.len() > ins.leaf_capacity {
                // Only allowed when every entry has the same summary.
                let first = leaf.entries[0].sax;
                assert!(
                    leaf.entries.iter().all(|e| e.sax == first),
                    "oversized leaf with separable entries"
                );
            }
        });
        assert_eq!(seen, entries.len());
    }

    #[test]
    fn identical_summaries_overflow_without_splitting() {
        let config = SaxConfig::new(4, 32);
        let s = series(1, 32);
        let e = entry_for(&s, 0, config);
        let key = root_key(&e.sax, 4);
        let ins = SubtreeInserter {
            segments: 4,
            leaf_capacity: 4,
        };
        let mut node = Node::empty_leaf(node_word_for_root_key(key, 4));
        for i in 0..20u32 {
            ins.insert(&mut node, LeafEntry { pos: i, ..e });
        }
        assert!(node.is_leaf(), "identical words cannot separate");
        assert_eq!(node.num_entries(), 20);
    }

    #[test]
    fn structure_accessors() {
        let word = NodeWord::root();
        let leaf = Node::empty_leaf(word);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.word(), &word);
        assert_eq!(leaf.num_entries(), 0);
        assert_eq!(leaf.height(), 1);
    }
}
