//! Arena-backed index tree storage.
//!
//! Three node kinds, as in §II-B / Fig. 1(d): a root with up to 2^w
//! children (represented in [`crate::index::MessiIndex`] as a dense array
//! indexed by root key), binary inner nodes carrying a
//! variable-cardinality iSAX summary, and leaves holding the
//! full-cardinality `(iSAX summary, position)` pairs of the series below
//! them. Storing the summaries *in* the leaf (not pointers to a separate
//! array) keeps queue-driven leaf scans sequential in memory — one of
//! MESSI's deltas over ParIS (§I).
//!
//! This module takes that layout argument to its conclusion: instead of
//! one heap allocation per node (`Box<Node>`) and one `Vec` per leaf, a
//! whole root subtree lives in a [`TreeArena`] — one contiguous node
//! array in preorder (parent before children, left subtree before right)
//! plus one packed [`LeafEntry`] pool in the same leaf order, plus a
//! struct-of-arrays transposition of the pool's SAX symbols that the
//! batched mindist cascade streams cache-line by cache-line. Inner-node
//! traversal walks an index-linked flat array, leaf scans walk flat
//! slices, and `for_each_leaf` is a linear sweep of the node array. The
//! flat layout is also what makes the index serializable
//! ([`crate::persist`]) — the SoA pool and all run metadata are derived
//! data, rebuilt rather than stored.
//!
//! The SoA transposition is grouped into **leaf runs**: maximal groups
//! of consecutive leaves (in pool order — siblings and cousins alike)
//! whose combined entry count stays within `RUN_TARGET_ENTRIES`. Each
//! run owns one segment-major symbol block, so the batched mindist
//! kernel can scan *several* small leaves as one contiguous 8-wide
//! stream instead of falling into the partial-chunk tail on every
//! ~6-entry paper-default leaf. Runs are derived deterministically from
//! the node/entry layout alone (no configuration input), so a
//! deserialized arena rebuilds byte-identical run metadata — the
//! snapshot format is unchanged.
//!
//! Construction still follows the paper's incremental protocol (Alg. 4:
//! insert, split overflowing leaves): [`SubtreeBuilder`] runs exactly the
//! old insert/split algorithm against reusable index-linked scratch, then
//! flattens into the arena with exact-capacity allocations. One builder
//! serves many subtrees back to back, so its own scratch amortizes to
//! zero.
//!
//! ## Forest arenas
//!
//! Paper-default trees are *sparse at the root*: with 2^w root keys and
//! ~6 entries per key, almost every root subtree is a single leaf, so
//! within-subtree runs would never span more than one leaf and the
//! run-batched mindist tier would see only partial chunks. The index
//! therefore groups runs of consecutive sparse root subtrees into one
//! **forest arena**: a single-rooted arena whose top is a *synthetic
//! iSAX trie* over the member keys. Synthetic inner nodes carry coarser
//! node words — every segment on which all member keys agree is refined
//! to that shared first bit, the rest stay unrefined — and split on the
//! first disagreeing segment, so containment, `child_of` routing, and
//! mindist admissibility all hold exactly as for built splits (a coarser
//! word can only *loosen* a lower bound). The first fully refined node
//! on any root-to-leaf path is a **per-key root**: the original subtree,
//! spliced in verbatim (preorder preserved, ids and pool offsets
//! rebased). Grouping is derived deterministically from the per-key
//! entry counts alone (`forest_groups`), so builds, baselines, and the
//! snapshot loader regroup identically — and snapshots still serialize
//! per key by slicing each per-key subtree back out of its forest
//! (`TreeArena::key_subtree_raw`), keeping the format byte-identical.

use messi_sax::split::choose_split;
use messi_sax::word::{NodeWord, SaxWord};
use messi_sax::MAX_SEGMENTS;

/// A `(iSAX summary, series position)` pair — the unit the index stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// Full-cardinality iSAX summary of the series.
    pub sax: SaxWord,
    /// Position of the raw series in the dataset (`RawData` index).
    pub pos: u32,
}

/// Index of a node within its [`TreeArena`] (the root is
/// [`TreeArena::ROOT`]).
pub type NodeId = u32;

/// `tag` value marking a leaf record (inner nodes store their split
/// segment there, which is always `< MAX_SEGMENTS`).
const LEAF_TAG: u8 = u8::MAX;

/// Linked-list terminator / "empty slot" sentinel in builder scratch.
const NIL: u32 = u32::MAX;

/// Greedy cap on the entries a leaf run may span. 64 entries is eight
/// full 8-wide mindist chunks — enough to amortize the SIMD ramp on
/// paper-default (~6-entry) leaves while keeping a queued run's scan
/// granularity close to one dense leaf. A single leaf larger than the
/// cap gets a run of its own.
pub(crate) const RUN_TARGET_ENTRIES: usize = 64;

/// Entry target when grouping consecutive sparse root subtrees into one
/// forest arena — the run target, so a grouped forest's many one-leaf
/// subtrees coalesce into full batched runs. Like the run partition,
/// the grouping takes no configuration input: build, baselines, and the
/// snapshot loader must regroup identically.
pub(crate) const FOREST_TARGET_ENTRIES: usize = RUN_TARGET_ENTRIES;

/// The deterministic greedy grouping of per-key subtrees into forest
/// arenas: over ascending keys, a group closes when admitting the next
/// subtree's `counts` entry would push it past
/// [`FOREST_TARGET_ENTRIES`] (a subtree at or above the target is a
/// group of its own). Returns index ranges over `counts`.
pub(crate) fn forest_groups(counts: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, &n) in counts.iter().enumerate() {
        if i > start && acc + n > FOREST_TARGET_ENTRIES {
            groups.push(start..i);
            start = i;
            acc = 0;
        }
        acc += n;
    }
    if start < counts.len() {
        groups.push(start..counts.len());
    }
    groups
}

/// Assembles one arena from one or more per-key subtrees given as raw
/// parts `(key, preorder node records, pool entries)` with ascending
/// keys and subtree-local ids/offsets. A single part becomes a plain
/// per-key arena; several parts are joined under the synthetic iSAX
/// trie described in the module docs.
pub(crate) fn assemble_forest(
    parts: Vec<(usize, Vec<NodeRecord>, Vec<LeafEntry>)>,
    segments: usize,
) -> TreeArena {
    debug_assert!(parts.windows(2).all(|w| w[0].0 < w[1].0));
    if parts.len() == 1 {
        let (_, nodes, entries) = parts.into_iter().next().expect("one part");
        return TreeArena::assemble(nodes, entries);
    }
    // A path-compressed binary trie over k distinct keys has exactly
    // k - 1 internal nodes.
    let total_nodes = parts.iter().map(|p| p.1.len()).sum::<usize>() + (parts.len() - 1);
    let total_entries = parts.iter().map(|p| p.2.len()).sum::<usize>();
    let mut nodes = Vec::with_capacity(total_nodes);
    let mut pool = Vec::with_capacity(total_entries);
    splice_forest(&parts, 0, parts.len(), segments, &mut nodes, &mut pool);
    debug_assert_eq!(nodes.len(), total_nodes);
    debug_assert_eq!(pool.len(), total_entries);
    TreeArena::assemble(nodes, pool)
}

/// Recursive splice step of [`assemble_forest`] over `parts[lo..hi]`:
/// emits (in preorder) either the lone per-key subtree rebased to the
/// current output position, or a synthetic inner node splitting the key
/// range on its first disagreeing segment. Returns the emitted root id.
fn splice_forest(
    parts: &[(usize, Vec<NodeRecord>, Vec<LeafEntry>)],
    lo: usize,
    hi: usize,
    segments: usize,
    nodes: &mut Vec<NodeRecord>,
    pool: &mut Vec<LeafEntry>,
) -> NodeId {
    if hi - lo == 1 {
        let base = nodes.len() as u32;
        let pool_base = pool.len() as u32;
        let (_, part_nodes, part_entries) = &parts[lo];
        nodes.extend(part_nodes.iter().map(|n| {
            let mut rec = *n;
            if rec.tag == LEAF_TAG {
                rec.lo += pool_base;
                rec.hi += pool_base;
            } else {
                rec.lo += base;
                rec.hi += base;
            }
            rec
        }));
        pool.extend_from_slice(part_entries);
        return base;
    }
    // Which key bits all members of the range share. Segment i's key bit
    // sits at position `segments - 1 - i` (segment 0 is the key's MSB).
    let mut all_or = 0usize;
    let mut all_and = usize::MAX;
    for p in &parts[lo..hi] {
        all_or |= p.0;
        all_and &= p.0;
    }
    let disagree = all_or & !all_and;
    debug_assert_ne!(disagree, 0, "duplicate keys in a forest group");
    let mut symbols = [0u16; MAX_SEGMENTS];
    let mut bits = [0u8; MAX_SEGMENTS];
    for (i, (sym, bit)) in symbols.iter_mut().zip(&mut bits).enumerate().take(segments) {
        let at = segments - 1 - i;
        if (disagree >> at) & 1 == 0 {
            *bit = 1;
            *sym = ((all_and >> at) & 1) as u16;
        }
    }
    let word = NodeWord::new(&symbols, &bits);
    // Split on the first disagreeing segment (= highest disagreeing key
    // bit). Keys ascend and agree above it, so the bit flips 0 → 1 at
    // exactly one boundary.
    let at = usize::BITS as usize - 1 - disagree.leading_zeros() as usize;
    let split = segments - 1 - at;
    let mid = lo + parts[lo..hi].partition_point(|p| (p.0 >> at) & 1 == 0);
    debug_assert!(lo < mid && mid < hi);
    let my = nodes.len();
    nodes.push(NodeRecord {
        word,
        tag: split as u8,
        lo: 0,
        hi: 0,
    });
    let left = splice_forest(parts, lo, mid, segments, nodes, pool);
    let right = splice_forest(parts, mid, hi, segments, nodes, pool);
    nodes[my].lo = left;
    nodes[my].hi = right;
    my as NodeId
}

/// One node record of a [`TreeArena`].
///
/// `tag` discriminates the two kinds: [`LEAF_TAG`] for leaves, the split
/// segment (`< MAX_SEGMENTS`) for inner nodes. `lo`/`hi` are the left and
/// right child ids of an inner node, or the `[lo, hi)` range of the leaf
/// in the arena's entry pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeRecord {
    pub(crate) word: NodeWord,
    pub(crate) tag: u8,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// The `[lo, hi)` entry-pool span of one leaf run. Runs partition the
/// pool left to right, exactly like the leaves they group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunSpan {
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// Borrowed view of one leaf: its covering word, its packed entries, and
/// its position inside its run's segment-major symbol block.
#[derive(Debug, Clone, Copy)]
pub struct LeafRef<'a> {
    /// Variable-cardinality summary covering everything in this leaf.
    pub word: &'a NodeWord,
    /// The stored `(summary, position)` pairs, contiguous in the pool.
    pub entries: &'a [LeafEntry],
    /// The segment-major symbol block of the leaf's *run*: `MAX_SEGMENTS`
    /// columns of `stride` bytes each. This leaf's symbols sit at
    /// `cols[s * stride + base + j] == entries[j].sax.symbol(s)` — the
    /// transposed copy the mindist cascade streams instead of striding
    /// over interleaved [`SaxWord`]s.
    pub cols: &'a [u8],
    /// Entry count of the whole run (the column stride of `cols`).
    pub stride: usize,
    /// Offset of this leaf's first entry within the run.
    pub base: usize,
}

/// The unit a search worker scans: one or more *consecutive* leaves of
/// the same run, viewed through the run's segment-major symbol block
/// (what the priority queues carry — the multi-leaf generalization of
/// the old per-leaf `LeafSlice`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LeafRun<'a> {
    /// The spanned leaves' `(summary, position)` pairs, contiguous.
    pub(crate) entries: &'a [LeafEntry],
    /// The whole run's symbol block (see [`LeafRef::cols`]).
    pub(crate) cols: &'a [u8],
    /// Entry count of the whole run (column stride of `cols`).
    pub(crate) stride: u32,
    /// Offset of `entries[0]` within the run.
    pub(crate) base: u32,
    /// Pool-absolute entry boundaries of the member leaves:
    /// `leaf_count() + 1` cumulative offsets, so member leaf `i` holds
    /// entries `starts[i] - starts[0] .. starts[i+1] - starts[0]` of
    /// `entries`.
    pub(crate) starts: &'a [u32],
}

impl<'a> LeafRun<'a> {
    /// Number of member leaves spanned by this run view.
    #[inline]
    pub(crate) fn leaf_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// The view truncated to its first `k` member leaves (budgeted
    /// objectives admit leaves one at a time; a veto mid-run scans only
    /// the admitted prefix).
    #[inline]
    pub(crate) fn prefix(&self, k: usize) -> LeafRun<'a> {
        debug_assert!(k <= self.leaf_count());
        let cut = (self.starts[k] - self.starts[0]) as usize;
        LeafRun {
            entries: &self.entries[..cut],
            starts: &self.starts[..=k],
            ..*self
        }
    }
}

/// All derived (never serialized) per-arena layout: the SoA symbol pool
/// plus the leaf-run metadata. Rebuilt identically at build time and at
/// load time by [`derive_layout`].
#[derive(Debug)]
struct DerivedLayout {
    cols: Vec<u8>,
    leaf_starts: Vec<u32>,
    leaf_ordinals: Vec<u32>,
    runs: Vec<RunSpan>,
    run_of: Vec<u32>,
}

/// Derives the run partition and SoA symbol pool for a finished
/// node/entry layout. Deterministic and configuration-free: the greedy
/// partition walks leaves in pool order, opening a new run whenever
/// adding the next non-empty leaf would push the current run past
/// [`RUN_TARGET_ENTRIES`] (empty leaves always join the current run; an
/// oversized leaf gets a run of its own). Shared by
/// [`SubtreeBuilder::finish`] and [`TreeArena::from_raw`], so snapshots
/// round-trip to byte-identical metadata; every vector is allocated once
/// at exact capacity.
fn derive_layout(nodes: &[NodeRecord], entries: &[LeafEntry]) -> DerivedLayout {
    let num_leaves = nodes.iter().filter(|n| n.tag == LEAF_TAG).count();
    let mut leaf_starts = Vec::with_capacity(num_leaves + 1);
    let mut leaf_ordinals = Vec::with_capacity(nodes.len());
    for n in nodes {
        if n.tag == LEAF_TAG {
            leaf_ordinals.push(leaf_starts.len() as u32);
            leaf_starts.push(n.lo);
        } else {
            leaf_ordinals.push(NIL);
        }
    }
    leaf_starts.push(entries.len() as u32);

    // Greedy partition, run twice — once to count runs, once to fill the
    // exact-capacity vectors (the decision depends only on leaf lengths,
    // so both passes agree).
    let sweep = |emit: &mut dyn FnMut(usize, bool)| {
        let mut run_entries = 0usize;
        for ord in 0..num_leaves {
            let len = (leaf_starts[ord + 1] - leaf_starts[ord]) as usize;
            let opens = ord == 0 || (len > 0 && run_entries + len > RUN_TARGET_ENTRIES);
            run_entries = if opens { len } else { run_entries + len };
            emit(ord, opens);
        }
    };
    let mut num_runs = 0usize;
    sweep(&mut |_, opens| num_runs += usize::from(opens));
    let mut runs: Vec<RunSpan> = Vec::with_capacity(num_runs);
    let mut run_of = Vec::with_capacity(num_leaves);
    sweep(&mut |ord, opens| {
        let (lo, hi) = (leaf_starts[ord], leaf_starts[ord + 1]);
        if opens {
            runs.push(RunSpan { lo, hi });
        } else {
            runs.last_mut().expect("first leaf opens a run").hi = hi;
        }
        run_of.push(runs.len() as u32 - 1);
    });

    // One segment-major symbol block per run: inside run `[lo, hi)`
    // (n = hi − lo entries), column `s` occupies
    // `[lo·16 + s·n, lo·16 + (s+1)·n)`. All MAX_SEGMENTS columns are
    // materialized regardless of the configured segment count, so the
    // layout needs no config to decode.
    let mut cols = vec![0u8; entries.len() * MAX_SEGMENTS];
    for r in &runs {
        let (lo, hi) = (r.lo as usize, r.hi as usize);
        let n = hi - lo;
        let block = &mut cols[lo * MAX_SEGMENTS..hi * MAX_SEGMENTS];
        for (j, e) in entries[lo..hi].iter().enumerate() {
            for (s, &sym) in e.sax.symbols().iter().enumerate() {
                block[s * n + j] = sym;
            }
        }
    }

    DerivedLayout {
        cols,
        leaf_starts,
        leaf_ordinals,
        runs,
        run_of,
    }
}

/// A root subtree flattened into contiguous storage: node records in
/// preorder, one packed leaf-entry pool, and the pool's run-grouped
/// struct-of-arrays symbol transposition plus run metadata.
///
/// Node accessors take a [`NodeId`]; traversal starts at
/// [`TreeArena::ROOT`] and follows [`TreeArena::children`]. Leaves are in
/// depth-first (left-to-right) order both in the node array and in the
/// pool, so [`TreeArena::for_each_leaf`] is a linear sweep.
///
/// The `cols` pool mirrors `entries` segment-major *per leaf run* (see
/// the module docs and `derive_layout`): the run with pool span
/// `[lo, hi)` (n = hi − lo entries) owns the byte block `[lo·16, hi·16)`,
/// inside which column `s` occupies `[lo·16 + s·n, lo·16 + (s+1)·n)`.
/// The batched mindist kernel thus reads each segment's symbols across a
/// whole run of small leaves as one sequential stretch of cache lines.
/// `cols` and all run metadata are derived data — rebuilt on load, never
/// serialized.
#[derive(Debug)]
pub struct TreeArena {
    nodes: Vec<NodeRecord>,
    entries: Vec<LeafEntry>,
    cols: Vec<u8>,
    /// Pool-absolute entry offset of each leaf in ordinal (pool) order,
    /// plus a trailing `num_entries` sentinel.
    leaf_starts: Vec<u32>,
    /// Parallel to `nodes`: the leaf's ordinal, or `u32::MAX` for inner
    /// nodes.
    leaf_ordinals: Vec<u32>,
    /// Entry span of each leaf run, in pool order.
    runs: Vec<RunSpan>,
    /// Run id of each leaf, by ordinal (non-decreasing).
    run_of: Vec<u32>,
}

impl TreeArena {
    /// The root node's id (arenas are built root-first).
    pub const ROOT: NodeId = 0;

    fn assemble(nodes: Vec<NodeRecord>, entries: Vec<LeafEntry>) -> Self {
        let layout = derive_layout(&nodes, &entries);
        Self {
            nodes,
            entries,
            cols: layout.cols,
            leaf_starts: layout.leaf_starts,
            leaf_ordinals: layout.leaf_ordinals,
            runs: layout.runs,
            run_of: layout.run_of,
        }
    }

    /// Number of nodes (inner + leaf) in the subtree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of series stored in the subtree.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of leaves in the subtree.
    pub fn num_leaves(&self) -> usize {
        self.leaf_starts.len() - 1
    }

    /// Number of leaf runs in the subtree (see the module docs).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Per-run shape, in run order: `(member leaves, entries)`. What
    /// `messi info`'s run-length histogram and the layout probe
    /// aggregate.
    pub fn run_shapes(&self) -> Vec<(usize, usize)> {
        let mut shapes = vec![(0usize, 0usize); self.runs.len()];
        for (ord, &r) in self.run_of.iter().enumerate() {
            let s = &mut shapes[r as usize];
            s.0 += 1;
            s.1 += (self.leaf_starts[ord + 1] - self.leaf_starts[ord]) as usize;
        }
        shapes
    }

    /// Height of the subtree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        self.height_of(Self::ROOT)
    }

    fn height_of(&self, id: NodeId) -> usize {
        let n = &self.nodes[id as usize];
        if n.tag == LEAF_TAG {
            1
        } else {
            1 + self.height_of(n.lo).max(self.height_of(n.hi))
        }
    }

    /// The node's iSAX summary.
    #[inline]
    pub fn word(&self, id: NodeId) -> &NodeWord {
        &self.nodes[id as usize].word
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id as usize].tag == LEAF_TAG
    }

    /// Which segment an inner node's split refined.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is a leaf.
    #[inline]
    pub fn split_segment(&self, id: NodeId) -> usize {
        let n = &self.nodes[id as usize];
        debug_assert_ne!(n.tag, LEAF_TAG, "split_segment of a leaf");
        n.tag as usize
    }

    /// An inner node's `(left, right)` children (0-bit child, 1-bit
    /// child).
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is a leaf.
    #[inline]
    pub fn children(&self, id: NodeId) -> (NodeId, NodeId) {
        let n = &self.nodes[id as usize];
        debug_assert_ne!(n.tag, LEAF_TAG, "children of a leaf");
        (n.lo, n.hi)
    }

    /// A leaf's packed entries.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub fn leaf_entries(&self, id: NodeId) -> &[LeafEntry] {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf_entries of an inner node");
        &self.entries[n.lo as usize..n.hi as usize]
    }

    /// A leaf's ordinal: its zero-based position among the arena's
    /// leaves in pool order.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub(crate) fn leaf_ordinal(&self, id: NodeId) -> u32 {
        let ord = self.leaf_ordinals[id as usize];
        debug_assert_ne!(ord, NIL, "leaf_ordinal of an inner node");
        ord
    }

    /// The id of the run containing the leaf with ordinal `ord`.
    #[inline]
    pub(crate) fn run_of(&self, ord: u32) -> u32 {
        self.run_of[ord as usize]
    }

    /// Borrowed view of the leaf at `id`.
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    #[inline]
    pub fn leaf(&self, id: NodeId) -> LeafRef<'_> {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf of an inner node");
        let run = self.runs[self.run_of[self.leaf_ordinals[id as usize] as usize] as usize];
        LeafRef {
            word: &n.word,
            entries: &self.entries[n.lo as usize..n.hi as usize],
            cols: &self.cols[run.lo as usize * MAX_SEGMENTS..run.hi as usize * MAX_SEGMENTS],
            stride: (run.hi - run.lo) as usize,
            base: (n.lo - run.lo) as usize,
        }
    }

    /// The scannable view of the member leaves `[ord_lo, ord_hi)` of one
    /// run — what gets pushed onto the search priority queues. The span
    /// must be non-empty and must not cross a run boundary
    /// (debug-asserted).
    #[inline]
    pub(crate) fn leaf_run(&self, ord_lo: u32, ord_hi: u32) -> LeafRun<'_> {
        debug_assert!(ord_lo < ord_hi, "empty run span");
        debug_assert!(
            (ord_hi as usize) < self.leaf_starts.len(),
            "span out of bounds"
        );
        debug_assert_eq!(
            self.run_of[ord_lo as usize],
            self.run_of[ord_hi as usize - 1],
            "span crosses a run boundary"
        );
        let run = self.runs[self.run_of[ord_lo as usize] as usize];
        let (elo, ehi) = (
            self.leaf_starts[ord_lo as usize],
            self.leaf_starts[ord_hi as usize],
        );
        LeafRun {
            entries: &self.entries[elo as usize..ehi as usize],
            cols: &self.cols[run.lo as usize * MAX_SEGMENTS..run.hi as usize * MAX_SEGMENTS],
            stride: run.hi - run.lo,
            base: elo - run.lo,
            starts: &self.leaf_starts[ord_lo as usize..=ord_hi as usize],
        }
    }

    /// Visits every leaf in depth-first order. Thanks to the preorder
    /// layout this is a linear sweep of the node array, not a pointer
    /// chase.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(LeafRef<'a>)) {
        let mut ord = 0usize;
        for n in &self.nodes {
            if n.tag == LEAF_TAG {
                let run = self.runs[self.run_of[ord] as usize];
                f(LeafRef {
                    word: &n.word,
                    entries: &self.entries[n.lo as usize..n.hi as usize],
                    cols: &self.cols
                        [run.lo as usize * MAX_SEGMENTS..run.hi as usize * MAX_SEGMENTS],
                    stride: (run.hi - run.lo) as usize,
                    base: (n.lo - run.lo) as usize,
                });
                ord += 1;
            }
        }
    }

    /// Visits every leaf run in pool order as `f(entries, cols, stride)`
    /// where `cols[s * stride + j] == entries[j].sax.symbol(s)` — the
    /// whole-run analog of [`TreeArena::for_each_leaf`], for probes that
    /// stream full runs through the batched mindist kernel.
    pub fn for_each_run<'a>(&'a self, f: &mut impl FnMut(&'a [LeafEntry], &'a [u8], usize)) {
        for r in &self.runs {
            let (lo, hi) = (r.lo as usize, r.hi as usize);
            f(
                &self.entries[lo..hi],
                &self.cols[lo * MAX_SEGMENTS..hi * MAX_SEGMENTS],
                hi - lo,
            );
        }
    }

    /// Descends from `from` to the leaf responsible for `sax` by
    /// following the summary's refined bits at each split — the
    /// home-leaf walk every seeding path shares (Alg. 5 line 3).
    ///
    /// `from` (and, by the refinement invariant, every node on the walk)
    /// must cover `sax`; debug builds assert it.
    pub fn descend_by_sax(&self, from: NodeId, sax: &SaxWord, segments: usize) -> NodeId {
        let mut id = from;
        while !self.is_leaf(id) {
            debug_assert!(self.word(id).contains(sax, segments));
            let (left, right) = self.children(id);
            id = if self.word(id).child_of(sax, self.split_segment(id)) {
                right
            } else {
                left
            };
        }
        id
    }

    /// Whether all backing allocations are capacity-tight (length ==
    /// capacity) — true for every arena produced by
    /// [`SubtreeBuilder::finish`], which allocates each exactly once at
    /// its final size. The build tests assert this "allocation-flat"
    /// invariant on whole indexes.
    pub fn allocation_flat(&self) -> bool {
        self.nodes.capacity() == self.nodes.len()
            && self.entries.capacity() == self.entries.len()
            && self.cols.capacity() == self.cols.len()
            && self.leaf_starts.capacity() == self.leaf_starts.len()
            && self.leaf_ordinals.capacity() == self.leaf_ordinals.len()
            && self.runs.capacity() == self.runs.len()
            && self.run_of.capacity() == self.run_of.len()
    }

    /// Bytes held by the node array (capacity, i.e. the allocation).
    pub fn node_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<NodeRecord>()
    }

    /// Bytes held by the leaf-entry pool (capacity).
    pub fn entry_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<LeafEntry>()
    }

    /// Bytes held by the SoA symbol pool plus the derived run metadata
    /// (capacities).
    pub fn col_bytes(&self) -> usize {
        self.cols.capacity()
            + (self.leaf_starts.capacity() + self.leaf_ordinals.capacity() + self.run_of.capacity())
                * std::mem::size_of::<u32>()
            + self.runs.capacity() * std::mem::size_of::<RunSpan>()
    }

    /// A leaf's `[start, end)` range in the entry pool (validation and
    /// serialization).
    ///
    /// # Panics
    ///
    /// Debug-panics when `id` is an inner node.
    pub(crate) fn leaf_range(&self, id: NodeId) -> (u32, u32) {
        let n = &self.nodes[id as usize];
        debug_assert_eq!(n.tag, LEAF_TAG, "leaf_range of an inner node");
        (n.lo, n.hi)
    }

    /// Raw node records (test-only: the snapshot writer slices per-key
    /// subtrees out via [`TreeArena::key_subtree_raw`] instead).
    #[cfg(test)]
    pub(crate) fn raw_nodes(&self) -> &[NodeRecord] {
        &self.nodes
    }

    /// Raw pool entries (test-only; see [`TreeArena::raw_nodes`]).
    #[cfg(test)]
    pub(crate) fn raw_entries(&self) -> &[LeafEntry] {
        &self.entries
    }

    /// Consumes the arena back into its raw parts (the forest regrouping
    /// path of [`crate::index::MessiIndex::from_parts`]); the derived
    /// layout is dropped and rebuilt by the receiving assembly.
    pub(crate) fn into_raw(self) -> (Vec<NodeRecord>, Vec<LeafEntry>) {
        (self.nodes, self.entries)
    }

    /// Preorder extent of the subtree rooted at `id`: `(one past the
    /// last node id, pool start, pool end)`. Both ranges are contiguous
    /// because nodes are in preorder and leaves partition the pool in
    /// the same order.
    pub(crate) fn subtree_extent(&self, id: NodeId) -> (NodeId, u32, u32) {
        let mut leftmost = id;
        while !self.is_leaf(leftmost) {
            leftmost = self.children(leftmost).0;
        }
        let mut rightmost = id;
        while !self.is_leaf(rightmost) {
            rightmost = self.children(rightmost).1;
        }
        let (pool_lo, _) = self.leaf_range(leftmost);
        let (_, pool_hi) = self.leaf_range(rightmost);
        (rightmost + 1, pool_lo, pool_hi)
    }

    /// The subtree rooted at `id` as standalone raw parts: node records
    /// rebased to ids `0..n` and pool offsets `0..m`, plus the entry
    /// slice. Inverse of the [`assemble_forest`] splice — serializing a
    /// forest member this way reproduces the exact bytes the per-key
    /// subtree would have written on its own, which is what keeps the
    /// snapshot format unchanged.
    pub(crate) fn key_subtree_raw(&self, id: NodeId) -> (Vec<NodeRecord>, &[LeafEntry]) {
        let (node_end, pool_lo, pool_hi) = self.subtree_extent(id);
        let nodes = self.nodes[id as usize..node_end as usize]
            .iter()
            .map(|n| {
                let mut rec = *n;
                if rec.tag == LEAF_TAG {
                    rec.lo -= pool_lo;
                    rec.hi -= pool_lo;
                } else {
                    rec.lo -= id;
                    rec.hi -= id;
                }
                rec
            })
            .collect();
        (nodes, &self.entries[pool_lo as usize..pool_hi as usize])
    }

    /// Verifies that the stored derived layout (SoA pool + run metadata)
    /// equals a fresh recomputation from the raw node/entry records —
    /// the run-metadata invariant [`crate::validate`] audits on every
    /// arena, built or loaded.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatching vector.
    pub(crate) fn check_derived_layout(&self) -> Result<(), String> {
        let fresh = derive_layout(&self.nodes, &self.entries);
        if fresh.leaf_starts != self.leaf_starts {
            return Err("leaf_starts differ from per-leaf recomputation".into());
        }
        if fresh.leaf_ordinals != self.leaf_ordinals {
            return Err("leaf_ordinals differ from per-leaf recomputation".into());
        }
        if fresh.runs != self.runs {
            return Err("run spans differ from per-leaf recomputation".into());
        }
        if fresh.run_of != self.run_of {
            return Err("run membership differs from per-leaf recomputation".into());
        }
        if fresh.cols != self.cols {
            return Err("SoA symbol pool differs from per-leaf recomputation".into());
        }
        Ok(())
    }

    /// Deepest tree a legitimate build can produce: every inner→child
    /// step refines exactly one bit of one segment, so a root-to-leaf
    /// path has at most `MAX_SEGMENTS × CARD_BITS` splits.
    const MAX_DEPTH: usize = messi_sax::MAX_SEGMENTS * messi_sax::CARD_BITS + 1;

    /// Reassembles an arena from raw parts (the deserialization path),
    /// verifying the structural invariants the accessors rely on: the
    /// records must form exactly one preorder tree — a left-then-right
    /// depth-first walk from the root enumerates ids `0..n` in ascending
    /// order, which rules out unreachable nodes, shared children, and
    /// cycles in one pass — no deeper than any legitimate build can
    /// produce, whose leaves partition the entry pool left to right.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub(crate) fn from_raw(
        nodes: Vec<NodeRecord>,
        entries: Vec<LeafEntry>,
    ) -> Result<Self, String> {
        if nodes.is_empty() {
            return Err("arena with zero nodes".into());
        }
        let nn = nodes.len() as u64;
        let mut covered = 0u64; // leaves partition the pool in order
        for (id, n) in nodes.iter().enumerate() {
            if n.tag == LEAF_TAG {
                if u64::from(n.lo) != covered {
                    return Err(format!(
                        "leaf {id}: pool range starts at {} not {covered}",
                        n.lo
                    ));
                }
                if n.hi < n.lo || entries.len() < n.hi as usize {
                    return Err(format!(
                        "leaf {id}: pool range {}..{} out of bounds",
                        n.lo, n.hi
                    ));
                }
                covered = u64::from(n.hi);
            } else {
                if usize::from(n.tag) >= messi_sax::MAX_SEGMENTS {
                    return Err(format!(
                        "inner node {id}: split segment {} out of range",
                        n.tag
                    ));
                }
                if u64::from(n.hi) <= u64::from(n.lo) || u64::from(n.hi) >= nn {
                    return Err(format!(
                        "inner node {id}: children {}/{} out of order or bounds",
                        n.lo, n.hi
                    ));
                }
            }
        }
        if covered != entries.len() as u64 {
            return Err(format!(
                "leaves cover {covered} pool entries of {}",
                entries.len()
            ));
        }
        // Preorder tree-ness, checked by one explicit-stack DFS: visiting
        // left-then-right must enumerate ids in exactly ascending order.
        // A node with two parents gets visited twice (id ≠ expected), an
        // unreachable node leaves the count short, and the depth cap
        // keeps the recursive traversals (height, engine descent) within
        // sane stack bounds for files no honest build could have written.
        let mut stack: Vec<(u32, usize)> = vec![(0, 1)];
        let mut expect = 0u64;
        while let Some((id, depth)) = stack.pop() {
            if u64::from(id) != expect {
                return Err(format!(
                    "node {id} visited out of preorder (expected {expect})"
                ));
            }
            if depth > Self::MAX_DEPTH {
                return Err(format!(
                    "tree deeper than any build can produce (> {})",
                    Self::MAX_DEPTH
                ));
            }
            expect += 1;
            let n = &nodes[id as usize];
            if n.tag != LEAF_TAG {
                stack.push((n.hi, depth + 1));
                stack.push((n.lo, depth + 1));
            }
        }
        if expect != nn {
            return Err(format!(
                "{} of {nn} nodes unreachable from the root",
                nn - expect
            ));
        }
        // The SoA symbol pool and run metadata are derived data: rebuild
        // them from the (now validated) records instead of trusting
        // serialized bytes. Same derivation as the build path, so a
        // round-trip is byte-identical.
        Ok(Self::assemble(nodes, entries))
    }
}

/// Builder scratch node: a leaf holds its entry list as `head`/`tail`
/// indices into the builder's link array; an inner node holds child ids.
#[derive(Debug, Clone, Copy)]
struct ScratchNode {
    word: NodeWord,
    /// Split segment for inner nodes, [`LEAF_TAG`] for leaves.
    tag: u8,
    /// Inner: left child id. Leaf: entry-list head ([`NIL`] when empty).
    a: u32,
    /// Inner: right child id. Leaf: entry-list tail ([`NIL`] when empty).
    b: u32,
    /// Leaf only: entries in the list.
    len: u32,
}

/// Clonable iterator over the summaries of one scratch leaf's entry
/// list, in insertion order (what [`choose_split`] consumes).
#[derive(Clone, Copy)]
struct SaxLinkIter<'a> {
    entries: &'a [LeafEntry],
    next: &'a [u32],
    cur: u32,
}

impl<'a> Iterator for SaxLinkIter<'a> {
    type Item = &'a SaxWord;

    fn next(&mut self) -> Option<&'a SaxWord> {
        if self.cur == NIL {
            return None;
        }
        let e = &self.entries[self.cur as usize];
        self.cur = self.next[self.cur as usize];
        Some(&e.sax)
    }
}

/// Builds one subtree incrementally — the paper's insert-and-split
/// protocol (Alg. 4 lines 7–11: "while targetLeaf is full do SplitNode")
/// — into a flat [`TreeArena`].
///
/// Splits follow the balanced-segment policy of `messi_sax::split`. When
/// a leaf's entries cannot be separated (identical summaries, or every
/// segment at maximum cardinality) the leaf is allowed to overflow —
/// further splits would loop forever without separating anything.
///
/// The builder's scratch (index-linked entry lists, a flat scratch-node
/// array) is retained across subtrees: `begin` → `insert`* → `finish`
/// cycles reuse the same buffers, and `finish` performs a fixed handful
/// of exact-capacity allocations — the arena's node array, entry pool,
/// SoA symbol pool, and run metadata — regardless of how many nodes the
/// subtree has (the "allocation-flat" invariant, debug-asserted).
#[derive(Debug)]
pub struct SubtreeBuilder {
    /// Number of PAA segments (the paper's w).
    segments: usize,
    /// Leaf capacity before a split is attempted.
    leaf_capacity: usize,
    nodes: Vec<ScratchNode>,
    entries: Vec<LeafEntry>,
    /// Parallel to `entries`: next entry in the owning leaf's list.
    next: Vec<u32>,
}

impl SubtreeBuilder {
    /// Creates an empty builder for the given tree parameters.
    pub fn new(segments: usize, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        Self {
            segments,
            leaf_capacity,
            nodes: Vec::new(),
            entries: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Starts a fresh subtree covering `word`: clears the scratch
    /// (retaining capacity) and plants an empty root leaf.
    pub fn begin(&mut self, word: NodeWord) {
        self.nodes.clear();
        self.entries.clear();
        self.next.clear();
        self.nodes.push(ScratchNode {
            word,
            tag: LEAF_TAG,
            a: NIL,
            b: NIL,
            len: 0,
        });
    }

    /// Inserts one entry into the subtree under construction.
    ///
    /// Equivalent to the paper's "while targetLeaf is full do SplitNode"
    /// loop (Alg. 4 lines 8–10), phrased as push-then-rebalance: the entry
    /// is appended to its leaf, then the leaf is split (repeatedly,
    /// drilling through non-separating refinements) until every leaf on
    /// the path is back within capacity or provably inseparable.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SubtreeBuilder::begin`].
    pub fn insert(&mut self, entry: LeafEntry) {
        assert!(!self.nodes.is_empty(), "insert before begin");
        // Descend to the leaf responsible for this entry.
        let mut id = 0usize;
        loop {
            let n = &self.nodes[id];
            if n.tag == LEAF_TAG {
                break;
            }
            debug_assert!(n.word.contains(&entry.sax, self.segments));
            id = if n.word.child_of(&entry.sax, n.tag as usize) {
                n.b
            } else {
                n.a
            } as usize;
        }
        debug_assert!(self.nodes[id].word.contains(&entry.sax, self.segments));
        let slot = self.entries.len() as u32;
        self.entries.push(entry);
        self.next.push(NIL);
        self.append_to_leaf(id, slot);
        self.rebalance(id);
    }

    /// Links an already-stored entry slot at the tail of `leaf`'s list.
    fn append_to_leaf(&mut self, leaf: usize, slot: u32) {
        let tail = {
            let n = &mut self.nodes[leaf];
            let tail = n.b;
            n.b = slot;
            n.len += 1;
            if tail == NIL {
                n.a = slot;
            }
            tail
        };
        if tail != NIL {
            self.next[tail as usize] = slot;
        }
    }

    /// Splits `id` (and recursively any oversized children the split
    /// produces) until capacity holds or the entries are inseparable.
    fn rebalance(&mut self, id: usize) {
        let n = &self.nodes[id];
        let oversized = n.tag == LEAF_TAG && n.len as usize > self.leaf_capacity;
        if !oversized || !self.split_leaf(id) {
            return;
        }
        let (left, right) = {
            let n = &self.nodes[id];
            (n.a as usize, n.b as usize)
        };
        self.rebalance(left);
        self.rebalance(right);
    }

    /// Splits the leaf at `id` in place, turning it into an inner node
    /// with two leaf children. Returns `false` only when the entries are
    /// inseparable (identical summaries, or every segment at maximum
    /// cardinality), in which case the leaf is left untouched.
    ///
    /// When no *single-bit* split separates the entries but their
    /// summaries still differ, a segment whose deeper bits differ is
    /// refined anyway (one child gets everything) — the paper's
    /// "while targetLeaf is full do SplitNode" loop drills down until the
    /// differing bit is reached.
    fn split_leaf(&mut self, id: usize) -> bool {
        let node = self.nodes[id];
        debug_assert_eq!(node.tag, LEAF_TAG, "split_leaf on inner node");
        let list = |cur| SaxLinkIter {
            entries: &self.entries,
            next: &self.next,
            cur,
        };
        let segment = {
            let choice = match choose_split(&node.word, self.segments, list(node.a)) {
                Some(c) => c,
                None => return false, // every segment at max cardinality
            };
            if choice.is_separating() {
                choice.segment
            } else {
                // Drill-down fallback: refine a segment whose full
                // 8-bit symbols actually differ across entries (such a
                // refinement chain separates within CARD_BITS splits).
                let first = self.entries[node.a as usize].sax;
                match (0..self.segments).find(|&i| {
                    (node.word.bits(i) as usize) < messi_sax::CARD_BITS
                        && list(node.a).any(|sax| sax.symbol(i) != first.symbol(i))
                }) {
                    Some(i) => i,
                    None => return false, // identical summaries: inseparable
                }
            }
        };
        let (zero_word, one_word) = node.word.refine(segment);
        let left = self.nodes.len();
        for word in [zero_word, one_word] {
            self.nodes.push(ScratchNode {
                word,
                tag: LEAF_TAG,
                a: NIL,
                b: NIL,
                len: 0,
            });
        }
        // Relink each entry to the child it belongs to, preserving order
        // (stable partition, exactly like the old per-leaf Vec split).
        let mut cur = node.a;
        while cur != NIL {
            let after = self.next[cur as usize];
            self.next[cur as usize] = NIL;
            let child = if node.word.child_of(&self.entries[cur as usize].sax, segment) {
                left + 1
            } else {
                left
            };
            self.append_to_leaf(child, cur);
            cur = after;
        }
        self.nodes[id] = ScratchNode {
            word: node.word,
            tag: segment as u8,
            a: left as u32,
            b: left as u32 + 1,
            len: 0,
        };
        true
    }

    /// Flattens the finished subtree into a [`TreeArena`] (preorder node
    /// array + packed leaf pool + derived SoA/run layout) and resets the
    /// scratch for the next subtree.
    ///
    /// The arena is built with a fixed handful of exact-capacity
    /// allocations — the node-count and entry-count are known, and the
    /// derived layout is a post-pass over the emitted leaves — which
    /// debug assertions verify (the "allocation-flat subtree" invariant).
    ///
    /// # Panics
    ///
    /// Panics if called before [`SubtreeBuilder::begin`].
    pub fn finish(&mut self) -> TreeArena {
        assert!(!self.nodes.is_empty(), "finish before begin");
        let mut nodes: Vec<NodeRecord> = Vec::with_capacity(self.nodes.len());
        let mut pool: Vec<LeafEntry> = Vec::with_capacity(self.entries.len());
        let (node_cap, pool_cap) = (nodes.capacity(), pool.capacity());
        self.emit(0, &mut nodes, &mut pool);
        debug_assert_eq!(nodes.len(), self.nodes.len(), "every node emitted once");
        debug_assert_eq!(pool.len(), self.entries.len(), "every entry emitted once");
        debug_assert_eq!(nodes.capacity(), node_cap, "node array reallocated");
        debug_assert_eq!(pool.capacity(), pool_cap, "entry pool reallocated");
        self.nodes.clear();
        self.entries.clear();
        self.next.clear();
        let arena = TreeArena::assemble(nodes, pool);
        debug_assert!(arena.allocation_flat(), "derived layout reallocated");
        arena
    }

    /// Emits the scratch node `sid` (and its subtree) in preorder,
    /// returning its final arena id.
    fn emit(&self, sid: usize, out: &mut Vec<NodeRecord>, pool: &mut Vec<LeafEntry>) -> u32 {
        let fid = out.len() as u32;
        let n = self.nodes[sid];
        if n.tag == LEAF_TAG {
            let start = pool.len() as u32;
            let mut cur = n.a;
            while cur != NIL {
                pool.push(self.entries[cur as usize]);
                cur = self.next[cur as usize];
            }
            debug_assert_eq!(pool.len() as u32 - start, n.len);
            out.push(NodeRecord {
                word: n.word,
                tag: LEAF_TAG,
                lo: start,
                hi: pool.len() as u32,
            });
        } else {
            out.push(NodeRecord {
                word: n.word,
                tag: n.tag,
                lo: 0,
                hi: 0,
            });
            let left = self.emit(n.a as usize, out, pool);
            let right = self.emit(n.b as usize, out, pool);
            let rec = &mut out[fid as usize];
            rec.lo = left;
            rec.hi = right;
        }
        fid
    }

    /// Convenience: builds a whole subtree in one call.
    pub fn build_subtree(
        &mut self,
        word: NodeWord,
        entries: impl IntoIterator<Item = LeafEntry>,
    ) -> TreeArena {
        self.begin(word);
        for e in entries {
            self.insert(e);
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_sax::convert::{sax_word, SaxConfig};
    use messi_sax::root_key::{node_word_for_root_key, root_key};

    fn entry_for(series: &[f32], pos: u32, config: SaxConfig) -> LeafEntry {
        LeafEntry {
            sax: sax_word(series, config),
            pos,
        }
    }

    fn series(seed: u32, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 + seed as f32 * 13.7) * (0.11 + 0.01 * seed as f32)).sin() * 2.0)
            .collect()
    }

    #[test]
    fn insert_without_split_accumulates() {
        let word = NodeWord::root();
        let mut builder = SubtreeBuilder::new(4, 100);
        let config = SaxConfig::new(4, 32);
        let arena = builder.build_subtree(
            word,
            (0..50u32).map(|i| entry_for(&series(i, 32), i, config)),
        );
        assert!(arena.is_leaf(TreeArena::ROOT));
        assert_eq!(arena.num_entries(), 50);
        assert_eq!(arena.num_leaves(), 1);
        assert_eq!(arena.num_nodes(), 1);
        assert_eq!(arena.height(), 1);
        // Entries come out in insertion order.
        let positions: Vec<u32> = arena
            .leaf_entries(TreeArena::ROOT)
            .iter()
            .map(|e| e.pos)
            .collect();
        assert_eq!(positions, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn overflowing_leaf_splits_and_partitions() {
        let config = SaxConfig::new(4, 32);
        // Insert everything under its proper root subtree word so splits
        // are meaningful.
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..400u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let (key, entries) = groups
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some group");
        assert!(entries.len() > 8, "need a non-trivial group");
        let mut builder = SubtreeBuilder::new(4, 8);
        let arena = builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
        assert_eq!(arena.num_entries(), entries.len());
        assert!(arena.num_leaves() > 1, "should have split");
        // Every leaf's entries are contained in the leaf's word, and no
        // leaf (except unsplittable ones) exceeds capacity.
        let mut seen = 0;
        arena.for_each_leaf(&mut |leaf| {
            seen += leaf.entries.len();
            for e in leaf.entries {
                assert!(leaf.word.contains(&e.sax, 4));
            }
            if leaf.entries.len() > 8 {
                // Only allowed when every entry has the same summary.
                let first = leaf.entries[0].sax;
                assert!(
                    leaf.entries.iter().all(|e| e.sax == first),
                    "oversized leaf with separable entries"
                );
            }
        });
        assert_eq!(seen, entries.len());
    }

    #[test]
    fn identical_summaries_overflow_without_splitting() {
        let config = SaxConfig::new(4, 32);
        let s = series(1, 32);
        let e = entry_for(&s, 0, config);
        let key = root_key(&e.sax, 4);
        let mut builder = SubtreeBuilder::new(4, 4);
        let arena = builder.build_subtree(
            node_word_for_root_key(key, 4),
            (0..20u32).map(|i| LeafEntry { pos: i, ..e }),
        );
        assert!(
            arena.is_leaf(TreeArena::ROOT),
            "identical words cannot separate"
        );
        assert_eq!(arena.num_entries(), 20);
    }

    #[test]
    fn structure_accessors() {
        let word = NodeWord::root();
        let mut builder = SubtreeBuilder::new(4, 8);
        let arena = builder.build_subtree(word, std::iter::empty());
        assert!(arena.is_leaf(TreeArena::ROOT));
        assert_eq!(arena.word(TreeArena::ROOT), &word);
        assert_eq!(arena.num_entries(), 0);
        assert_eq!(arena.height(), 1);
        assert!(arena.node_bytes() > 0 || arena.num_nodes() == 1);
        assert_eq!(arena.leaf(TreeArena::ROOT).entries.len(), 0);
        // Even an empty arena has one (empty) run covering its one leaf.
        assert_eq!(arena.num_runs(), 1);
        assert_eq!(arena.run_shapes(), vec![(1, 0)]);
    }

    #[test]
    fn builder_reuse_across_subtrees_is_clean() {
        let config = SaxConfig::new(4, 32);
        let mut builder = SubtreeBuilder::new(4, 4);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..200u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        // Build every group twice — with a fresh builder and with one
        // reused builder — and require identical flattened storage.
        for (key, entries) in groups {
            let word = node_word_for_root_key(key, 4);
            let reused = builder.build_subtree(word, entries.iter().copied());
            let fresh = SubtreeBuilder::new(4, 4).build_subtree(word, entries.iter().copied());
            assert_eq!(reused.num_nodes(), fresh.num_nodes(), "key {key}");
            assert_eq!(reused.num_leaves(), fresh.num_leaves(), "key {key}");
            let collect = |a: &TreeArena| {
                let mut v = Vec::new();
                a.for_each_leaf(&mut |l| v.extend(l.entries.iter().map(|e| e.pos)));
                v
            };
            assert_eq!(collect(&reused), collect(&fresh), "key {key}");
        }
    }

    #[test]
    fn preorder_invariants_hold_and_from_raw_validates() {
        let config = SaxConfig::new(4, 32);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..300u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let (key, entries) = groups
            .into_iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some group");
        let mut builder = SubtreeBuilder::new(4, 4);
        let arena = builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
        // Round-tripping through from_raw accepts the builder's output…
        let nodes = arena.raw_nodes().to_vec();
        let pool = arena.raw_entries().to_vec();
        let back = TreeArena::from_raw(nodes.clone(), pool.clone()).expect("valid arena");
        assert_eq!(back.num_leaves(), arena.num_leaves());
        // …and rejects structural corruption.
        assert!(TreeArena::from_raw(Vec::new(), Vec::new()).is_err());
        if arena.num_nodes() > 1 {
            let mut bad = nodes.clone();
            bad[0].lo = 0; // self-referential child breaks preorder
            assert!(TreeArena::from_raw(bad, pool.clone()).is_err());
        }
        let mut bad = nodes;
        if let Some(last_leaf) = bad.iter().rposition(|n| n.tag == LEAF_TAG) {
            bad[last_leaf].hi += 1; // range past the pool
            assert!(TreeArena::from_raw(bad, pool).is_err());
        }
    }

    #[test]
    fn soa_columns_mirror_leaf_entries() {
        let config = SaxConfig::new(4, 32);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..300u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let mut builder = SubtreeBuilder::new(4, 8);
        for (key, entries) in groups {
            let arena =
                builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
            assert!(arena.allocation_flat());
            assert!(arena.col_bytes() >= arena.num_entries() * MAX_SEGMENTS);
            let mut total = 0usize;
            arena.for_each_leaf(&mut |leaf| {
                let n = leaf.entries.len();
                assert!(leaf.base + n <= leaf.stride);
                assert_eq!(leaf.cols.len(), leaf.stride * MAX_SEGMENTS);
                for (j, e) in leaf.entries.iter().enumerate() {
                    for s in 0..MAX_SEGMENTS {
                        assert_eq!(
                            leaf.cols[s * leaf.stride + leaf.base + j],
                            e.sax.symbol(s),
                            "key {key} entry {j} segment {s}"
                        );
                    }
                }
                total += n;
            });
            assert_eq!(total, arena.num_entries());
            // The round-tripped arena rebuilds identical derived layout.
            let back =
                TreeArena::from_raw(arena.raw_nodes().to_vec(), arena.raw_entries().to_vec())
                    .expect("valid arena");
            assert_eq!(back.cols, arena.cols);
            assert_eq!(back.leaf_starts, arena.leaf_starts);
            assert_eq!(back.runs, arena.runs);
            assert_eq!(back.run_of, arena.run_of);
            arena.check_derived_layout().expect("derived layout intact");
        }
    }

    #[test]
    fn runs_partition_leaves_and_respect_the_target() {
        let config = SaxConfig::new(4, 32);
        let mut groups: std::collections::HashMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..500u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups.entry(root_key(&e.sax, 4)).or_default().push(e);
        }
        let mut builder = SubtreeBuilder::new(4, 4); // tiny leaves → multi-leaf runs
        for (key, entries) in groups {
            let arena =
                builder.build_subtree(node_word_for_root_key(key, 4), entries.iter().copied());
            let shapes = arena.run_shapes();
            assert_eq!(shapes.len(), arena.num_runs(), "key {key}");
            let leaves: usize = shapes.iter().map(|s| s.0).sum();
            let spanned: usize = shapes.iter().map(|s| s.1).sum();
            assert_eq!(leaves, arena.num_leaves(), "runs partition the leaves");
            assert_eq!(spanned, arena.num_entries(), "runs partition the pool");
            for (i, &(leaf_count, entry_count)) in shapes.iter().enumerate() {
                assert!(leaf_count >= 1, "key {key} run {i} spans no leaf");
                // A run only exceeds the target when a single oversized
                // leaf forces it.
                assert!(
                    entry_count <= RUN_TARGET_ENTRIES || leaf_count == 1,
                    "key {key} run {i}: {entry_count} entries over {leaf_count} leaves"
                );
            }
            // leaf_run views agree with per-leaf views entry for entry.
            let mut ord = 0u32;
            for id in 0..arena.num_nodes() as NodeId {
                if !arena.is_leaf(id) {
                    continue;
                }
                assert_eq!(arena.leaf_ordinal(id), ord);
                let run = arena.leaf_run(ord, ord + 1);
                assert_eq!(run.leaf_count(), 1);
                assert_eq!(run.entries, arena.leaf_entries(id));
                let l = arena.leaf(id);
                assert_eq!(run.stride as usize, l.stride);
                assert_eq!(run.base as usize, l.base);
                ord += 1;
            }
            // Whole-run views span all member leaves contiguously.
            let mut lo = 0u32;
            for &(leaf_count, entry_count) in &shapes {
                let hi = lo + leaf_count as u32;
                let run = arena.leaf_run(lo, hi);
                assert_eq!(run.leaf_count(), leaf_count);
                assert_eq!(run.entries.len(), entry_count);
                assert_eq!(run.base, 0, "whole run starts at its block base");
                assert_eq!(run.stride as usize, entry_count);
                // Prefix views truncate on member-leaf boundaries.
                for k in 1..=leaf_count {
                    let p = run.prefix(k);
                    assert_eq!(p.leaf_count(), k);
                    assert_eq!(p.entries.len(), (run.starts[k] - run.starts[0]) as usize);
                }
                lo = hi;
            }
        }
    }

    #[test]
    fn from_raw_rejects_crafted_non_trees() {
        let w = NodeWord::root();
        let leaf = |lo: u32, hi: u32| NodeRecord {
            word: w,
            tag: u8::MAX,
            lo,
            hi,
        };
        let inner = |lo: u32, hi: u32| NodeRecord {
            word: w,
            tag: 0,
            lo,
            hi,
        };
        let entries = |n: usize| {
            vec![
                LeafEntry {
                    sax: SaxWord::zeroed(),
                    pos: 0
                };
                n
            ]
        };
        // Unreachable node: the root only spans ids 1..=2, node 3 never
        // gets visited, but its pool range keeps the linear partition
        // consistent — only the DFS walk can catch it.
        let orphan = vec![inner(1, 2), leaf(0, 3), leaf(3, 6), leaf(6, 9)];
        let err = TreeArena::from_raw(orphan, entries(9)).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
        // Shared child: two parents point at leaf 3 — the DFS visits it
        // twice, out of preorder.
        let shared = vec![inner(1, 3), inner(2, 3), leaf(0, 1), leaf(1, 2)];
        assert!(TreeArena::from_raw(shared, entries(2)).is_err());
        // A left spine deeper than any legitimate build must be refused
        // (honest depth is bounded by total refinable bits), keeping the
        // recursive traversals within sane stack bounds. The spine is a
        // structurally flawless preorder tree of 2D+1 nodes — only the
        // depth cap can reject it.
        let d = (TreeArena::MAX_DEPTH + 8) as u32;
        let mut spine: Vec<NodeRecord> = (0..d).map(|i| inner(i + 1, 2 * d - i)).collect();
        for _ in 0..=d {
            spine.push(leaf(0, 0));
        }
        let err = TreeArena::from_raw(spine, entries(0)).unwrap_err();
        assert!(err.contains("deeper"), "{err}");
    }

    #[test]
    fn forest_groups_pack_greedily_to_the_target() {
        let t = FOREST_TARGET_ENTRIES;
        assert_eq!(forest_groups(&[]), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(forest_groups(&[1]), vec![0..1]);
        // An oversized subtree gets its own group but is never split.
        assert_eq!(forest_groups(&[t * 10]), vec![0..1]);
        // Greedy: a group closes exactly when the next count would
        // overflow the target.
        assert_eq!(forest_groups(&[t / 2, t / 2, 1]), vec![0..2, 2..3]);
        // Sparse singleton subtrees coalesce many-to-one, and the groups
        // tile the input without gaps.
        let counts = vec![1usize; 3 * t + 5];
        let groups = forest_groups(&counts);
        assert!(groups.iter().all(|g| g.len() <= t));
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), counts.len());
        assert_eq!(groups[0].start, 0);
        assert!(groups.windows(2).all(|w| w[0].end == w[1].start));
        assert_eq!(groups.last().expect("nonempty").end, counts.len());
    }

    #[test]
    fn forest_assembly_preserves_per_key_subtrees() {
        let segments = 4usize;
        let config = SaxConfig::new(4, 32);
        let mut groups: std::collections::BTreeMap<usize, Vec<LeafEntry>> = Default::default();
        for i in 0..400u32 {
            let e = entry_for(&series(i, 32), i, config);
            groups
                .entry(root_key(&e.sax, segments))
                .or_default()
                .push(e);
        }
        let mut builder = SubtreeBuilder::new(segments, 4);
        let built: Vec<(usize, TreeArena)> = groups
            .into_iter()
            .map(|(key, entries)| {
                let word = node_word_for_root_key(key, segments);
                (key, builder.build_subtree(word, entries.iter().copied()))
            })
            .collect();
        assert!(built.len() >= 2, "need several keys to form a forest");
        let originals: Vec<(usize, Vec<NodeRecord>, Vec<LeafEntry>)> = built
            .iter()
            .map(|(k, a)| (*k, a.raw_nodes().to_vec(), a.raw_entries().to_vec()))
            .collect();
        let forest = assemble_forest(
            built
                .into_iter()
                .map(|(k, a)| {
                    let (n, e) = a.into_raw();
                    (k, n, e)
                })
                .collect(),
            segments,
        );
        // k member subtrees need exactly k−1 synthetic spine nodes, and
        // the spliced storage stays capacity-tight with a clean derived
        // layout.
        assert!(forest.allocation_flat());
        forest.check_derived_layout().expect("derived layout");
        assert_eq!(
            forest.num_nodes(),
            originals.iter().map(|o| o.1.len()).sum::<usize>() + originals.len() - 1
        );
        assert_eq!(
            forest.num_entries(),
            originals.iter().map(|o| o.2.len()).sum::<usize>()
        );
        // Every member subtree slices back out byte-identical through
        // the spine (descending by the key's bits at each synthetic
        // split, which must land on an unrefined segment).
        for (key, nodes, entries) in &originals {
            let mut id = TreeArena::ROOT;
            loop {
                let word = forest.word(id);
                if (0..segments).all(|s| word.bits(s) >= 1) {
                    break;
                }
                let split = forest.split_segment(id);
                assert_eq!(word.bits(split), 0, "key {key}: split on refined segment");
                let (l, r) = forest.children(id);
                id = if (*key >> (segments - 1 - split)) & 1 == 0 {
                    l
                } else {
                    r
                };
            }
            assert_eq!(forest.word(id), &node_word_for_root_key(*key, segments));
            let (got_nodes, got_entries) = forest.key_subtree_raw(id);
            assert_eq!(&got_nodes, nodes, "key {key}: sliced nodes differ");
            assert_eq!(
                got_entries,
                &entries[..],
                "key {key}: sliced entries differ"
            );
        }
    }
}
