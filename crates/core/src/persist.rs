//! Index snapshot persistence.
//!
//! The arena layout ([`crate::node`]) makes the index a handful of flat
//! arrays, so the whole structure — configuration, per-subtree node
//! records, packed leaf pools, and mindist scales — serializes to one
//! versioned, checksummed file. A server can then `messi build --save`
//! once and answer queries from `--load`ed snapshots without ever paying
//! the build again (the ROADMAP's serve-from-prebuilt-snapshot
//! scenario).
//!
//! ## Container format (little-endian throughout)
//!
//! ```text
//! [0..8)    magic   b"MESSIIDX"
//! [8..12)   format version (u32)
//! [12..20)  payload length in bytes (u64)
//! [20..+n)  payload (see below)
//! [+n..+n+8) FNV-1a 64 checksum of the payload
//! ```
//!
//! The payload carries the [`IndexConfig`], a dataset fingerprint
//! (shape + content hash — snapshots store tree structure, not raw
//! series, so the loader verifies it is being paired with the right
//! data), the mindist scales, and each touched root subtree as its raw
//! arena: node records then pool entries. Loading re-validates the
//! preorder arena invariants *and* the full semantic invariants of
//! [`crate::validate`] (word refinement, containment, root-key filing,
//! summary correctness against the dataset, position completeness), so
//! a torn or tampered file — even one with a correctly resealed
//! checksum — fails with a [`PersistError`] instead of producing a
//! quietly wrong index. The semantic pass recomputes every summary
//! across the configured worker count (subtrees are independent), so a
//! load is a verification-speed streaming pass over the data — it skips
//! all tree construction, splitting, and buffer staging, but it is
//! *not* free: callers loading from a trusted local file at very large
//! scale can measure it against a rebuild with `messi info --load`.

use crate::config::{BuildVariant, IndexConfig};
use crate::index::MessiIndex;
use crate::node::{LeafEntry, NodeRecord, TreeArena};
use messi_sax::convert::SaxConverter;
use messi_sax::word::{NodeWord, SaxWord, CARD_BITS, MAX_SEGMENTS};
use messi_series::io::{fnv1a64, fnv1a64_f32, PayloadReader, PayloadWriter};
use messi_series::Dataset;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// File magic: `MESSIIDX`.
const MAGIC: [u8; 8] = *b"MESSIIDX";
/// Current snapshot format version.
///
/// Version 2 marks builds whose arenas carry the struct-of-arrays leaf
/// symbol columns. The columns are *derived* state — rebuilt by
/// `TreeArena::from_raw` at load, never serialized (a snapshot cannot
/// smuggle in columns that disagree with its entries) — so the payload
/// is byte-identical to version 1 and version-1 files still load.
pub const FORMAT_VERSION: u32 = 2;
/// Oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Serialized bytes per node record: word (16×u16 + 16×u8) + tag + lo + hi.
const NODE_WIRE_BYTES: usize = 2 * MAX_SEGMENTS + MAX_SEGMENTS + 1 + 4 + 4;
/// Serialized bytes per leaf entry: sax symbols + position.
const ENTRY_WIRE_BYTES: usize = MAX_SEGMENTS + 4;
/// Serialized bytes per subtree header: key + node count + entry count.
const SUBTREE_HEADER_BYTES: usize = 12;

/// Errors from loading (or, for `Io`, saving) an index snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file uses an unsupported format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The file is structurally damaged (truncation, checksum mismatch,
    /// or invalid content).
    Corrupt(String),
    /// The snapshot was built over a different dataset than the one
    /// supplied at load time.
    DatasetMismatch(String),
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a MESSI index snapshot (bad magic)"),
            PersistError::Version { found, expected } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {expected})"
            ),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            PersistError::DatasetMismatch(what) => {
                write!(f, "snapshot/dataset mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Saves `index` as a snapshot file at `path`.
///
/// The write is all-or-nothing: the snapshot is assembled in a `.tmp`
/// sibling, synced, and renamed over `path`, so an interrupted save
/// (crash, Ctrl-C, full disk) never destroys a previous good snapshot.
///
/// # Errors
///
/// Any I/O error from creating, writing, or renaming the file.
pub fn save_index(index: &MessiIndex, path: &Path) -> Result<(), PersistError> {
    let payload = encode_payload(index);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&payload)?;
        w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        w.flush()?;
        w.into_inner()
            .map_err(|e| std::io::Error::other(format!("flush failed: {e}")))?
            .sync_all()?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Loads a snapshot previously written by [`save_index`], pairing it
/// with `dataset` (snapshots store tree structure, not raw series).
///
/// # Errors
///
/// [`PersistError::Io`] for filesystem problems; [`PersistError::
/// BadMagic`] / [`PersistError::Version`] for foreign or future files;
/// [`PersistError::Corrupt`] for truncation, checksum mismatches, or
/// invalid content; [`PersistError::DatasetMismatch`] when `dataset` is
/// not the collection the snapshot was built over.
pub fn load_index(path: &Path, dataset: Arc<Dataset>) -> Result<MessiIndex, PersistError> {
    let file = std::fs::File::open(path)?;
    let mut bytes = Vec::new();
    std::io::BufReader::new(file).read_to_end(&mut bytes)?;
    if bytes.len() < 20 || bytes[..8] != MAGIC {
        if bytes.len() >= 8 && bytes[..8] == MAGIC {
            return Err(PersistError::Corrupt("truncated header".into()));
        }
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let expected_total = 20usize
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| PersistError::Corrupt("payload length overflows".into()))?;
    if bytes.len() != expected_total {
        return Err(PersistError::Corrupt(format!(
            "file is {} bytes, header promises {expected_total}",
            bytes.len()
        )));
    }
    let payload = &bytes[20..20 + payload_len];
    let stored = u64::from_le_bytes(bytes[20 + payload_len..].try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    let index = decode_payload(payload, dataset)?;
    // Semantic validation: the structural checks above cannot notice a
    // resealed forgery that tampers with iSAX words or positions while
    // keeping the arenas well-formed — wrong summaries would corrupt
    // pruning bounds and make "exact" answers quietly wrong. The
    // invariant sweep (refinement, containment, key filing, recomputed
    // summaries, each position exactly once) closes that hole; it runs
    // across the configured worker count, so its cost tracks the build's
    // parallel summarize phase, not a serial re-derivation.
    validate_loaded(&index)
        .map_err(|e| PersistError::Corrupt(format!("index invariants violated: {e}")))?;
    Ok(index)
}

/// Load-time semantic validation — the parallel counterpart of
/// [`crate::validate::validate`] for the snapshot trust boundary, built
/// on the *same* per-arena checker
/// ([`crate::validate::check_arena_semantics`]), so an invariant
/// added there automatically guards loaded snapshots. Arenas are
/// independent, so workers claim them via Fetch&Inc; position
/// completeness is folded through a shared atomic seen-array (the
/// `record` hook rejects duplicates on the spot).
fn validate_loaded(index: &MessiIndex) -> Result<(), String> {
    use std::sync::atomic::{AtomicU8, Ordering};
    let arenas = index.arenas();
    let seen: Vec<AtomicU8> = (0..index.num_series()).map(|_| AtomicU8::new(0)).collect();
    let first_error: Mutex<Option<String>> = Mutex::new(None);
    let dispenser = messi_sync::Dispenser::new(arenas.len());
    let workers = index.config().num_workers.min(arenas.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let seen = &seen;
            let first_error = &first_error;
            let dispenser = &dispenser;
            s.spawn(move || {
                let mut conv = SaxConverter::new(index.sax_config());
                while let Some(i) = dispenser.next() {
                    if first_error.lock().is_some() {
                        return; // someone already failed: stop early
                    }
                    let arena = &arenas[i];
                    let mut record = |pos: usize| -> Result<(), String> {
                        match seen.get(pos) {
                            Some(count) if count.fetch_add(1, Ordering::Relaxed) == 0 => Ok(()),
                            Some(_) => Err(format!("position {pos} appears in more than one leaf")),
                            None => Err(format!("position {pos} out of range")),
                        }
                    };
                    if let Err(e) = crate::validate::check_arena_semantics(
                        index,
                        arena,
                        i,
                        &mut conv,
                        &mut record,
                    ) {
                        let mut slot = first_error.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    if let Some(pos) = seen.iter().position(|c| c.load(Ordering::Relaxed) == 0) {
        return Err(format!("position {pos} missing from every leaf"));
    }
    Ok(())
}

fn encode_payload(index: &MessiIndex) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    let config = index.config();
    w.put_u32(config.segments as u32);
    w.put_u32(config.num_workers as u32);
    w.put_u64(config.chunk_size as u64);
    w.put_u64(config.leaf_capacity as u64);
    w.put_u64(config.initial_buffer_capacity as u64);
    w.put_u8(match config.variant {
        BuildVariant::Buffered => 0,
        BuildVariant::NoBuffers => 1,
    });

    let dataset = index.dataset();
    w.put_u32(dataset.series_len() as u32);
    w.put_u64(dataset.len() as u64);
    w.put_u64(fnv1a64_f32(dataset.as_flat()));

    w.put_u32(index.scales().len() as u32);
    for &s in index.scales() {
        w.put_f32(s);
    }

    w.put_u32(index.touched_keys().len() as u32);
    for &key in index.touched_keys() {
        // Slice the per-key subtree back out of its (possibly shared)
        // forest arena, rebased to standalone ids/offsets — the exact
        // bytes a solo per-key arena would have written, so the format
        // is unchanged by forest grouping and old snapshots stay
        // readable (and re-writable) bit for bit.
        let (nodes, entries) = index.key_raw_parts(key).expect("touched ⇒ present");
        w.put_u32(key as u32);
        w.put_u32(nodes.len() as u32);
        w.put_u32(entries.len() as u32);
        for rec in &nodes {
            put_node_word(&mut w, &rec.word);
            w.put_u8(rec.tag);
            w.put_u32(rec.lo);
            w.put_u32(rec.hi);
        }
        for e in entries {
            w.put_bytes(e.sax.symbols());
            w.put_u32(e.pos);
        }
    }
    w.into_bytes()
}

fn decode_payload(payload: &[u8], dataset: Arc<Dataset>) -> Result<MessiIndex, PersistError> {
    let corrupt = |what: &str| PersistError::Corrupt(what.into());
    let mut r = PayloadReader::new(payload);

    let segments = r.take_u32().map_err(corrupt)? as usize;
    let num_workers = r.take_u32().map_err(corrupt)? as usize;
    let chunk_size = r.take_u64().map_err(corrupt)? as usize;
    let leaf_capacity = r.take_u64().map_err(corrupt)? as usize;
    let initial_buffer_capacity = r.take_u64().map_err(corrupt)? as usize;
    let variant = match r.take_u8().map_err(corrupt)? {
        0 => BuildVariant::Buffered,
        1 => BuildVariant::NoBuffers,
        other => {
            return Err(PersistError::Corrupt(format!(
                "unknown build variant {other}"
            )))
        }
    };
    if segments == 0
        || segments > MAX_SEGMENTS
        || num_workers == 0
        || chunk_size == 0
        || leaf_capacity == 0
    {
        return Err(corrupt("configuration out of range"));
    }
    let config = IndexConfig {
        segments,
        num_workers,
        chunk_size,
        leaf_capacity,
        initial_buffer_capacity,
        variant,
    };

    let series_len = r.take_u32().map_err(corrupt)? as usize;
    let num_series = r.take_u64().map_err(corrupt)? as usize;
    let data_hash = r.take_u64().map_err(corrupt)?;
    if series_len != dataset.series_len() || num_series != dataset.len() {
        return Err(PersistError::DatasetMismatch(format!(
            "snapshot indexes {num_series} series × {series_len} points, \
             dataset holds {} × {}",
            dataset.len(),
            dataset.series_len()
        )));
    }
    if data_hash != fnv1a64_f32(dataset.as_flat()) {
        return Err(PersistError::DatasetMismatch(
            "dataset content hash differs — same shape, different values".into(),
        ));
    }
    if segments > series_len {
        return Err(corrupt("more segments than points"));
    }

    let num_scales = r.take_u32().map_err(corrupt)? as usize;
    if num_scales != segments {
        return Err(corrupt("scale count disagrees with segments"));
    }
    let mut scales = Vec::with_capacity(num_scales);
    for _ in 0..num_scales {
        scales.push(r.take_f32().map_err(corrupt)?);
    }

    let num_subtrees = r.take_u32().map_err(corrupt)? as usize;
    let num_keys = 1usize << segments;
    // Every count below is untrusted: cap it by the bytes actually left
    // in the payload before passing it to `Vec::with_capacity`, so a
    // tiny crafted file cannot request a multi-gigabyte allocation (an
    // abort, not a catchable error) by lying about its sizes.
    if num_subtrees > r.remaining() / SUBTREE_HEADER_BYTES {
        return Err(corrupt("subtree count exceeds payload size"));
    }
    let mut subtrees = Vec::with_capacity(num_subtrees);
    let mut total_entries = 0usize;
    for _ in 0..num_subtrees {
        let key = r.take_u32().map_err(corrupt)? as usize;
        if key >= num_keys {
            return Err(PersistError::Corrupt(format!(
                "root key {key} out of range"
            )));
        }
        let num_nodes = r.take_u32().map_err(corrupt)? as usize;
        let num_entries = r.take_u32().map_err(corrupt)? as usize;
        if num_nodes > r.remaining() / NODE_WIRE_BYTES
            || num_entries > r.remaining() / ENTRY_WIRE_BYTES
        {
            return Err(corrupt("subtree counts exceed payload size"));
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let word = take_node_word(&mut r, segments).map_err(PersistError::Corrupt)?;
            let tag = r.take_u8().map_err(corrupt)?;
            let lo = r.take_u32().map_err(corrupt)?;
            let hi = r.take_u32().map_err(corrupt)?;
            nodes.push(NodeRecord { word, tag, lo, hi });
        }
        let mut entries = Vec::with_capacity(num_entries);
        for _ in 0..num_entries {
            let symbols = r.take_bytes(MAX_SEGMENTS).map_err(corrupt)?;
            let pos = r.take_u32().map_err(corrupt)?;
            if pos as usize >= num_series {
                return Err(PersistError::Corrupt(format!(
                    "entry position {pos} out of range (< {num_series})"
                )));
            }
            entries.push(LeafEntry {
                sax: SaxWord::new(symbols),
                pos,
            });
        }
        let arena = TreeArena::from_raw(nodes, entries).map_err(PersistError::Corrupt)?;
        total_entries += arena.num_entries();
        subtrees.push((key, arena));
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after the last subtree"));
    }
    if total_entries != num_series {
        return Err(PersistError::Corrupt(format!(
            "subtrees store {total_entries} entries for {num_series} series"
        )));
    }
    // Duplicate keys are rejected by `from_parts` with a panic; turn that
    // into a recoverable error here.
    {
        let mut keys: Vec<usize> = subtrees.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupt("duplicate root key"));
        }
    }

    let index = MessiIndex::from_parts(dataset, config, subtrees);
    // The scales are derivable state: `from_parts` already rederived
    // them from the sax config. The persisted copy exists so a snapshot
    // is self-describing — but it must never *override* the derivation
    // (a crafted file could inflate them and make mindist prune the true
    // nearest neighbor). Require bit-equality instead.
    if index
        .scales()
        .iter()
        .zip(&scales)
        .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(corrupt(
            "persisted mindist scales disagree with the configuration",
        ));
    }
    Ok(index)
}

fn put_node_word(w: &mut PayloadWriter, word: &NodeWord) {
    for i in 0..MAX_SEGMENTS {
        w.put_u16(word.symbol(i));
    }
    for i in 0..MAX_SEGMENTS {
        w.put_u8(word.bits(i));
    }
}

fn take_node_word(r: &mut PayloadReader<'_>, _segments: usize) -> Result<NodeWord, String> {
    let mut symbols = [0u16; MAX_SEGMENTS];
    for s in &mut symbols {
        *s = r.take_u16().map_err(String::from)?;
    }
    let mut bits = [0u8; MAX_SEGMENTS];
    for b in &mut bits {
        *b = r.take_u8().map_err(String::from)?;
    }
    // Validate before constructing: NodeWord::new asserts, and a crafted
    // file must not be able to panic the loader.
    for i in 0..MAX_SEGMENTS {
        if bits[i] as usize > CARD_BITS {
            return Err(format!("segment {i}: {} cardinality bits", bits[i]));
        }
        if (u32::from(symbols[i]) >> bits[i]) != 0 {
            return Err(format!(
                "segment {i}: prefix {} does not fit {} bits",
                symbols[i], bits[i]
            ));
        }
    }
    Ok(NodeWord::new(&symbols, &bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QueryConfig;
    use messi_series::gen::{self, DatasetKind};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("messi-persist-test-{}-{name}", std::process::id()));
        p
    }

    fn build_small() -> (Arc<Dataset>, MessiIndex) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 23));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        (data, index)
    }

    #[test]
    fn roundtrip_preserves_structure_and_answers() {
        let (data, index) = build_small();
        let path = tmp("roundtrip.msx");
        save_index(&index, &path).unwrap();
        let loaded = load_index(&path, Arc::clone(&data)).unwrap();
        assert_eq!(loaded.touched_keys(), index.touched_keys());
        assert_eq!(loaded.num_leaves(), index.num_leaves());
        assert_eq!(loaded.max_height(), index.max_height());
        assert_eq!(loaded.num_entries(), index.num_entries());
        assert_eq!(loaded.scales(), index.scales());
        assert_eq!(loaded.config(), index.config());
        assert!(crate::validate::validate(&loaded).is_empty());
        // Loaded arenas stay allocation-flat.
        for &key in loaded.touched_keys() {
            assert!(loaded.root(key).unwrap().allocation_flat());
        }
        // Answers are bit-identical.
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 23);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            let (a, _) = index.search(q, &config);
            let (b, _) = loaded.search(q, &config);
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let path = tmp("badmagic.msx");
        std::fs::write(&path, b"NOTANIDXaaaaaaaaaaaaaaaaaaaa").unwrap();
        let (data, _) = build_small();
        match load_index(&path, Arc::clone(&data)) {
            Err(PersistError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        // Valid file with a bumped version byte.
        let (data, index) = build_small();
        let path = tmp("version.msx");
        save_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = FORMAT_VERSION as u8 + 1;
        std::fs::write(&path, &bytes).unwrap();
        match load_index(&path, data) {
            Err(PersistError::Version { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected Version, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loads_version_1_snapshots() {
        // The v1 → v2 bump only marks the SoA-column derivation; the
        // payload is unchanged, so a v1-stamped file must load. The
        // checksum covers the payload only, so re-stamping the header
        // version byte needs no reseal.
        let (data, index) = build_small();
        let path = tmp("v1.msx");
        save_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_index(&path, Arc::clone(&data)).unwrap();
        assert_eq!(loaded.num_entries(), index.num_entries());
        // The derived SoA columns are rebuilt regardless of file version.
        for &key in loaded.touched_keys() {
            let arena = loaded.root(key).unwrap();
            assert!(arena.col_bytes() >= arena.num_entries());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_flipped_payload_byte_and_truncation() {
        let (data, index) = build_small();
        let path = tmp("corrupt.msx");
        save_index(&index, &path).unwrap();
        let original = std::fs::read(&path).unwrap();
        // Flip one payload byte: the checksum must catch it.
        let mut flipped = original.clone();
        let mid = 20 + (flipped.len() - 28) / 2;
        flipped[mid] ^= 0x5A;
        std::fs::write(&path, &flipped).unwrap();
        match load_index(&path, Arc::clone(&data)) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum corruption, got {other:?}"),
        }
        // Truncate: the length header must catch it.
        let mut short = original;
        short.truncate(short.len() - 9);
        std::fs::write(&path, &short).unwrap();
        match load_index(&path, data) {
            Err(PersistError::Corrupt(_)) => {}
            other => panic!("expected truncation corruption, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_dataset() {
        let (_, index) = build_small();
        let path = tmp("mismatch.msx");
        save_index(&index, &path).unwrap();
        // Same shape, different seed → content-hash mismatch.
        let other = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 24));
        match load_index(&path, other) {
            Err(PersistError::DatasetMismatch(msg)) => assert!(msg.contains("hash"), "{msg}"),
            other => panic!("expected DatasetMismatch, got {other:?}"),
        }
        // Different shape → shape mismatch.
        let small = Arc::new(gen::generate(DatasetKind::RandomWalk, 10, 23));
        match load_index(&path, small) {
            Err(PersistError::DatasetMismatch(_)) => {}
            other => panic!("expected DatasetMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Patches payload bytes of a snapshot file and re-seals the
    /// checksum, simulating an attacker who can forge valid containers.
    fn reseal(bytes: &[u8], patch_at: usize, patch: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        out[20 + patch_at..20 + patch_at + patch.len()].copy_from_slice(patch);
        let payload_len = out.len() - 28;
        let sum = fnv1a64(&out[20..20 + payload_len]);
        let at = 20 + payload_len;
        out[at..at + 8].copy_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn checksum_valid_forgeries_still_fail_loudly() {
        let (data, index) = build_small();
        let path = tmp("forged.msx");
        save_index(&index, &path).unwrap();
        let original = std::fs::read(&path).unwrap();
        // Payload offsets for the for_tests config (segments = 8):
        // config 33 B, dataset fingerprint 20 B, scales 4 + 8×4 B.
        let scales_at = 33 + 20 + 4;
        let num_subtrees_at = 33 + 20 + 4 + 8 * 4;

        // Inflated mindist scales prune the true nearest neighbor — the
        // loader must reject them even though the checksum matches.
        let forged = reseal(&original, scales_at, &1.0e9f32.to_le_bytes());
        std::fs::write(&path, &forged).unwrap();
        match load_index(&path, Arc::clone(&data)) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("scales"), "{msg}"),
            other => panic!("expected scales rejection, got {other:?}"),
        }

        // A ludicrous subtree count must be a clean error, not a
        // multi-gigabyte Vec::with_capacity abort.
        let forged = reseal(&original, num_subtrees_at, &u32::MAX.to_le_bytes());
        std::fs::write(&path, &forged).unwrap();
        match load_index(&path, Arc::clone(&data)) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("exceeds payload"), "{msg}")
            }
            other => panic!("expected count rejection, got {other:?}"),
        }

        // An orphaned-subtree forgery: point the first subtree's node
        // count slightly high while keeping the checksum sealed — the
        // structural validation must refuse it (exact error varies).
        let first_nodes_at = num_subtrees_at + 4 + 4;
        let forged = reseal(&original, first_nodes_at, &3u32.to_le_bytes());
        std::fs::write(&path, &forged).unwrap();
        assert!(load_index(&path, Arc::clone(&data)).is_err());

        // A structurally flawless forgery: tamper one leaf entry's iSAX
        // summary (the arenas stay well-formed, the checksum is
        // resealed). Only the semantic validation pass — recomputed
        // summaries / containment — can catch this; without it the
        // forged summary corrupts pruning bounds and exact answers.
        let first_key = index.touched_keys()[0];
        // The snapshot stores per-key subtrees (sliced back out of any
        // forest grouping), so the first subtree's node count comes from
        // the same slicing the writer uses — not the arena's total.
        let (first_nodes, _) = index.key_raw_parts(first_key).expect("touched");
        let first_entry_sax_at = num_subtrees_at
            + 4 // num_subtrees
            + SUBTREE_HEADER_BYTES
            + first_nodes.len() * NODE_WIRE_BYTES;
        let forged_sax = [original[20 + first_entry_sax_at] ^ 0xFF];
        let forged = reseal(&original, first_entry_sax_at, &forged_sax);
        std::fs::write(&path, &forged).unwrap();
        match load_index(&path, Arc::clone(&data)) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("invariants violated"), "{msg}")
            }
            other => panic!("expected semantic rejection, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        let v = PersistError::Version {
            found: 9,
            expected: FORMAT_VERSION,
        };
        assert!(v.to_string().contains('9'));
        assert!(PersistError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
    }
}
