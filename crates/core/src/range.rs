//! Exact ε-range search.
//!
//! Returns *every* series within distance ε of the query — the other
//! fundamental similarity-search primitive next to k-NN (the iSAX
//! lineage the paper builds on supports both). The index algorithm is a
//! simplification of exact 1-NN search: the pruning bound is the fixed
//! ε² instead of a shrinking BSF, so no priority order and no barrier
//! are needed — workers simply traverse root subtrees (Fetch&Inc),
//! prune by node mindist, and cascade per-entry lower bounds to real
//! distances, collecting matches.

use crate::config::QueryConfig;
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::node::Node;
use crate::stats::{LocalStats, QueryStats, SharedQueryStats};
use messi_sax::mindist::{mindist_sq_leaf_scalar, mindist_sq_node, MindistTable};
use messi_series::distance::euclidean::ed_sq_early_abandon_with;
use messi_sync::Dispenser;
use parking_lot::Mutex;
use std::time::Instant;

/// Exact range search: all series with squared Euclidean distance
/// `<= epsilon_sq`, sorted ascending by distance (position breaks ties).
///
/// `config.num_queues` and `config.bsf` are ignored (no BSF exists —
/// the bound is the fixed ε²).
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 2));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let query = data.series(7).to_vec();
///
/// // Radius 0 returns the query's exact duplicates (itself, here).
/// let (hits, _) = messi_core::range::range_search(&index, &query, 0.0, &QueryConfig::for_tests());
/// assert!(hits.iter().any(|a| a.pos == 7));
/// assert!(hits.iter().all(|a| a.dist_sq == 0.0));
/// ```
///
/// # Panics
///
/// Panics if `epsilon_sq` is negative or NaN, the query length differs
/// from the indexed series length, or the configuration is invalid.
pub fn range_search(
    index: &MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStats) {
    config.validate();
    assert!(
        epsilon_sq >= 0.0 && !epsilon_sq.is_nan(),
        "epsilon_sq must be a non-negative number"
    );
    let t_start = Instant::now();
    let (_, query_paa) = index.summarize_query(query);
    let table = MindistTable::new(&query_paa, index.sax_config());
    let use_simd = config.kernel.uses_simd();
    // Early-abandon bound strictly above ε² so a distance of exactly ε²
    // is still computed exactly (the abandon contract only guarantees
    // exactness strictly below the bound).
    let abandon_bound = next_up(epsilon_sq);

    let dispenser = Dispenser::new(index.touched.len());
    let stats = SharedQueryStats::new();
    let results: Mutex<Vec<QueryAnswer>> = Mutex::new(Vec::new());
    let init_ns = t_start.elapsed().as_nanos() as u64;

    messi_sync::WorkerPool::global().run(config.num_workers, &|_pid| {
        let mut local = LocalStats::default();
        let mut found: Vec<QueryAnswer> = Vec::new();
        let mut pending: Vec<&Node> = Vec::new();
        while let Some(i) = dispenser.next() {
            let key = index.touched[i];
            pending.push(index.roots[key].as_deref().expect("touched ⇒ present"));
            // Explicit stack instead of recursion: range search has no
            // queue phase, so the traversal is the whole algorithm.
            while let Some(node) = pending.pop() {
                let d = mindist_sq_node(&query_paa, &index.scales, node.word());
                local.lb += 1;
                if d > epsilon_sq {
                    continue;
                }
                match node {
                    Node::Inner(inner) => {
                        pending.push(&inner.left);
                        pending.push(&inner.right);
                    }
                    Node::Leaf(leaf) => {
                        for e in &leaf.entries {
                            local.lb += 1;
                            let lb = if use_simd {
                                table.mindist_sq(&e.sax)
                            } else {
                                mindist_sq_leaf_scalar(&query_paa, &index.scales, &e.sax)
                            };
                            if lb > epsilon_sq {
                                continue;
                            }
                            local.real += 1;
                            let dist = ed_sq_early_abandon_with(
                                config.kernel,
                                query,
                                index.dataset.series(e.pos as usize),
                                abandon_bound,
                            );
                            if dist <= epsilon_sq {
                                found.push(QueryAnswer {
                                    pos: e.pos,
                                    dist_sq: dist,
                                });
                            }
                        }
                    }
                }
            }
        }
        if !found.is_empty() {
            results.lock().extend(found);
        }
        local.flush(&stats);
    });

    let mut answers = results.into_inner();
    answers.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos)));
    let stats = stats.finish(t_start.elapsed(), init_ns, config.num_workers as u64, false);
    (answers, stats)
}

/// Smallest f32 strictly greater than `x` (for non-negative finite `x`).
#[inline]
fn next_up(x: f32) -> f32 {
    if x == 0.0 {
        f32::MIN_POSITIVE
    } else {
        f32::from_bits(x.to_bits() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::distance::euclidean::ed_sq_scalar;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn setup(count: usize, seed: u64) -> (Arc<messi_series::Dataset>, MessiIndex) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        (data, index)
    }

    fn brute_force_range(
        data: &messi_series::Dataset,
        query: &[f32],
        epsilon_sq: f32,
    ) -> Vec<(u32, f32)> {
        let mut out: Vec<(u32, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, ed_sq_scalar(query, s)))
            .filter(|(_, d)| *d <= epsilon_sq)
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    #[test]
    fn range_matches_brute_force() {
        let (data, index) = setup(500, 71);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 71);
        for q in queries.iter() {
            // Pick ε around the 1-NN distance so results are non-trivial.
            // Factors avoid sitting exactly on a member distance: the SIMD
            // and scalar reductions may disagree by an ulp at the
            // boundary, which would make equality-at-ε ill-defined.
            let (_, nn) = data.nearest_neighbor_brute_force(q);
            for factor in [0.5f32, 1.01, 2.0, 5.0] {
                let eps = nn * factor;
                let (got, stats) = range_search(&index, q, eps, &QueryConfig::for_tests());
                let expect = brute_force_range(&data, q, eps);
                // Every clearly-inside member must be found …
                for (pos, d) in &expect {
                    if *d <= eps * (1.0 - 1e-3) {
                        assert!(
                            got.iter().any(|g| g.pos == *pos),
                            "eps={eps}: missing position {pos} at distance {d}"
                        );
                    }
                }
                // … and nothing clearly outside may appear.
                for g in &got {
                    let d = ed_sq_scalar(q, data.series(g.pos as usize));
                    assert!(
                        d <= eps * (1.0 + 1e-3),
                        "eps={eps}: spurious position {} at distance {d}",
                        g.pos
                    );
                    assert!((g.dist_sq - d).abs() <= 1e-3 * d.max(1.0));
                }
                assert!(stats.real_distance_calcs <= 500);
            }
        }
    }

    #[test]
    fn zero_epsilon_finds_exact_duplicates_only() {
        let (data, index) = setup(200, 72);
        // A member query matches itself (and any exact duplicates).
        let q = data.series(11).to_vec();
        let (got, _) = range_search(&index, &q, 0.0, &QueryConfig::for_tests());
        assert!(!got.is_empty());
        assert!(got.iter().all(|a| a.dist_sq == 0.0));
        assert!(got.iter().any(|a| a.pos == 11));
        // A non-member query matches nothing.
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 72);
        let (got, _) = range_search(&index, queries.series(0), 0.0, &QueryConfig::for_tests());
        assert!(got.is_empty());
    }

    #[test]
    fn huge_epsilon_returns_everything_sorted() {
        let (_, index) = setup(150, 73);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 73);
        let (got, _) = range_search(
            &index,
            queries.series(0),
            f32::MAX,
            &QueryConfig::for_tests(),
        );
        assert_eq!(got.len(), 150);
        for w in got.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn range_prunes() {
        let (_, index) = setup(800, 74);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 74);
        let (_, stats) = range_search(&index, queries.series(0), 1.0, &QueryConfig::for_tests());
        assert!(
            stats.real_distance_calcs < 800 / 4,
            "tiny ε should prune hard ({} real calcs)",
            stats.real_distance_calcs
        );
    }

    #[test]
    fn next_up_is_strictly_greater() {
        for x in [0.0f32, 1.0, 123.456, 1e30] {
            assert!(next_up(x) > x);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_epsilon() {
        let (_, index) = setup(10, 75);
        let q = index.dataset().series(0).to_vec();
        range_search(&index, &q, -1.0, &QueryConfig::for_tests());
    }
}
