//! Exact ε-range search.
//!
//! Returns *every* series within distance ε of the query — the other
//! fundamental similarity-search primitive next to k-NN (the iSAX
//! lineage the paper builds on supports both). In engine terms, range
//! search is the fixed-bound objective: the pruning bound is ε² instead
//! of a shrinking BSF, so no priority order and no barrier are needed —
//! [`crate::engine`] runs in queue-less mode, scanning surviving leaves
//! during the traversal itself. Both metrics compose: Euclidean range
//! ([`range_search`]) and banded-DTW range ([`range_search_dtw`]) share
//! every line of driver code.

use crate::config::QueryConfig;
use crate::engine::{
    self, DtwMetric, Engine, EuclideanMetric, QueryContext, RangeObjective, TableSpec,
};
use crate::exact::QueryAnswer;
use crate::index::MessiIndex;
use crate::stats::{QueryStats, SharedQueryStats};
use messi_series::distance::dtw::DtwParams;
use messi_series::distance::lb_keogh::Envelope;
use messi_series::paa::paa;
use std::time::Instant;

/// Exact range search: all series with squared Euclidean distance
/// `<= epsilon_sq`, sorted ascending by distance (position breaks ties).
///
/// `config.num_queues` and `config.bsf` are ignored (no BSF exists —
/// the bound is the fixed ε²).
///
/// ```
/// use messi_core::{IndexConfig, MessiIndex, QueryConfig};
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 2));
/// let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
/// let query = data.series(7).to_vec();
///
/// // Radius 0 returns the query's exact duplicates (itself, here).
/// let (hits, _) = messi_core::range::range_search(&index, &query, 0.0, &QueryConfig::for_tests());
/// assert!(hits.iter().any(|a| a.pos == 7));
/// assert!(hits.iter().all(|a| a.dist_sq == 0.0));
/// ```
///
/// # Panics
///
/// Panics if `epsilon_sq` is negative or NaN, the query length differs
/// from the indexed series length, or the configuration is invalid.
pub fn range_search(
    index: &MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStats) {
    range_search_with(index, query, epsilon_sq, config, &mut QueryContext::new())
}

/// [`range_search`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`range_search`].
pub fn range_search_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (Vec<QueryAnswer>, QueryStats) {
    range_search_sharded(index, query, epsilon_sq, config, ctx, 0)
}

/// [`range_search_with`] as one shard of a sharded scatter: hit
/// positions are globalized through `offset`
/// ([`crate::shard::global_pos`]). Range search shares no bound across
/// shards — ε is fixed — so the gather step simply merges the per-shard
/// sorted hit lists. Offset 0 *is* the single-index search.
pub(crate) fn range_search_sharded<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    offset: u64,
) -> (Vec<QueryAnswer>, QueryStats) {
    config.validate();
    let t_start = Instant::now();
    let objective = RangeObjective::new(epsilon_sq, offset);
    let (_, query_paa) = index.summarize_query(query);
    let scratch = ctx.prepare(index.sax_config(), TableSpec::Point(&query_paa), None);
    let metric = EuclideanMetric::new(index, query, &query_paa, scratch.table, config.kernel);
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let answers = objective.into_sorted();
    let stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    (answers, stats)
}

/// Exact range search under banded DTW: all series with squared DTW
/// distance `<= epsilon_sq`, sorted ascending by distance. Pruning uses
/// the `mindist_env ≤ LB_Keogh ≤ DTW` cascade of [`crate::dtw`], so
/// every reported hit (and no non-hit) satisfies the DTW radius.
///
/// # Panics
///
/// As [`range_search`].
pub fn range_search_dtw(
    index: &MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    params: DtwParams,
    config: &QueryConfig,
) -> (Vec<QueryAnswer>, QueryStats) {
    range_search_dtw_with(
        index,
        query,
        epsilon_sq,
        params,
        config,
        &mut QueryContext::new(),
    )
}

/// [`range_search_dtw`] with caller-provided reusable scratch.
///
/// # Panics
///
/// As [`range_search`].
pub fn range_search_dtw_with<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
) -> (Vec<QueryAnswer>, QueryStats) {
    range_search_dtw_sharded(index, query, epsilon_sq, params, config, ctx, 0)
}

/// [`range_search_dtw_with`] as one shard of a sharded scatter; see
/// [`range_search_sharded`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn range_search_dtw_sharded<'a>(
    index: &'a MessiIndex,
    query: &[f32],
    epsilon_sq: f32,
    params: DtwParams,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    offset: u64,
) -> (Vec<QueryAnswer>, QueryStats) {
    config.validate();
    let t_start = Instant::now();
    let segments = index.sax_config().segments;
    let objective = RangeObjective::new(epsilon_sq, offset);
    assert_eq!(
        query.len(),
        index.sax_config().series_len,
        "query length must match indexed series length"
    );
    let env = Envelope::new(query, params);
    let paa_lower = paa(&env.lower, segments);
    let paa_upper = paa(&env.upper, segments);
    let scratch = ctx.prepare(
        index.sax_config(),
        TableSpec::Envelope(&paa_lower, &paa_upper),
        None,
    );
    let metric = DtwMetric::new(
        index,
        query,
        &env,
        params,
        &paa_lower,
        &paa_upper,
        scratch.table,
        config.kernel,
    );
    let stats = SharedQueryStats::new();
    let init_ns = t_start.elapsed().as_nanos() as u64;

    engine::run(
        &Engine {
            index,
            scratch,
            stats: &stats,
            queue_policy: config.queue_policy,
            num_workers: config.num_workers,
            collect_breakdown: config.collect_breakdown,
            coalesce: config.run_batching(),
        },
        &metric,
        &objective,
    );

    let answers = objective.into_sorted();
    let stats = stats.finish(
        t_start.elapsed(),
        init_ns,
        config.num_workers as u64,
        config.collect_breakdown,
    );
    (answers, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::distance::euclidean::ed_sq_scalar;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn setup(count: usize, seed: u64) -> (Arc<messi_series::Dataset>, MessiIndex) {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, count, seed));
        let (index, _) = MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests());
        (data, index)
    }

    fn brute_force_range(
        data: &messi_series::Dataset,
        query: &[f32],
        epsilon_sq: f32,
    ) -> Vec<(u64, f32)> {
        let mut out: Vec<(u64, f32)> = data
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, ed_sq_scalar(query, s)))
            .filter(|(_, d)| *d <= epsilon_sq)
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    #[test]
    fn range_matches_brute_force() {
        let (data, index) = setup(500, 71);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 71);
        for q in queries.iter() {
            // Pick ε around the 1-NN distance so results are non-trivial.
            // Factors avoid sitting exactly on a member distance: the SIMD
            // and scalar reductions may disagree by an ulp at the
            // boundary, which would make equality-at-ε ill-defined.
            let (_, nn) = data.nearest_neighbor_brute_force(q);
            for factor in [0.5f32, 1.01, 2.0, 5.0] {
                let eps = nn * factor;
                let (got, stats) = range_search(&index, q, eps, &QueryConfig::for_tests());
                let expect = brute_force_range(&data, q, eps);
                // Every clearly-inside member must be found …
                for (pos, d) in &expect {
                    if *d <= eps * (1.0 - 1e-3) {
                        assert!(
                            got.iter().any(|g| g.pos == *pos),
                            "eps={eps}: missing position {pos} at distance {d}"
                        );
                    }
                }
                // … and nothing clearly outside may appear.
                for g in &got {
                    let d = ed_sq_scalar(q, data.series(g.pos as usize));
                    assert!(
                        d <= eps * (1.0 + 1e-3),
                        "eps={eps}: spurious position {} at distance {d}",
                        g.pos
                    );
                    assert!((g.dist_sq - d).abs() <= 1e-3 * d.max(1.0));
                }
                assert!(stats.real_distance_calcs <= 500);
            }
        }
    }

    #[test]
    fn zero_epsilon_finds_exact_duplicates_only() {
        let (data, index) = setup(200, 72);
        // A member query matches itself (and any exact duplicates).
        let q = data.series(11).to_vec();
        let (got, _) = range_search(&index, &q, 0.0, &QueryConfig::for_tests());
        assert!(!got.is_empty());
        assert!(got.iter().all(|a| a.dist_sq == 0.0));
        assert!(got.iter().any(|a| a.pos == 11));
        // A non-member query matches nothing.
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 72);
        let (got, _) = range_search(&index, queries.series(0), 0.0, &QueryConfig::for_tests());
        assert!(got.is_empty());
    }

    #[test]
    fn huge_epsilon_returns_everything_sorted() {
        let (_, index) = setup(150, 73);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 73);
        // Both the largest finite radius and an unbounded one must return
        // the full collection (ε² = +inf once produced a NaN bound that
        // silently matched nothing).
        for eps in [f32::MAX, f32::INFINITY] {
            let (got, _) = range_search(&index, queries.series(0), eps, &QueryConfig::for_tests());
            assert_eq!(got.len(), 150, "eps = {eps}");
            for w in got.windows(2) {
                assert!(w[0].dist_sq <= w[1].dist_sq);
            }
        }
    }

    #[test]
    fn range_prunes() {
        let (_, index) = setup(800, 74);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 74);
        let (_, stats) = range_search(&index, queries.series(0), 1.0, &QueryConfig::for_tests());
        assert!(
            stats.real_distance_calcs < 800 / 4,
            "tiny ε should prune hard ({} real calcs)",
            stats.real_distance_calcs
        );
    }

    #[test]
    fn range_dtw_matches_brute_force() {
        use messi_series::distance::dtw::dtw_sq;
        let (data, index) = setup(250, 76);
        let params = DtwParams::paper_default(256);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 2, 76);
        for q in queries.iter() {
            // ε around the DTW 1-NN distance, avoiding the exact boundary.
            let nn = data
                .iter()
                .map(|s| dtw_sq(q, s, params))
                .fold(f32::INFINITY, f32::min);
            for factor in [1.01f32, 3.0] {
                let eps = nn * factor;
                let (got, stats) =
                    range_search_dtw(&index, q, eps, params, &QueryConfig::for_tests());
                let expect: Vec<(u64, f32)> = data
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i as u64, dtw_sq(q, s, params)))
                    .filter(|(_, d)| *d <= eps)
                    .collect();
                assert!(!got.is_empty(), "ε above the 1-NN distance must match");
                for (pos, d) in &expect {
                    if *d <= eps * (1.0 - 1e-3) {
                        assert!(
                            got.iter().any(|g| g.pos == *pos),
                            "eps={eps}: missing DTW match {pos} at {d}"
                        );
                    }
                }
                for g in &got {
                    let d = dtw_sq(q, data.series(g.pos as usize), params);
                    assert!(d <= eps * (1.0 + 1e-3), "spurious DTW hit {}", g.pos);
                    assert!((g.dist_sq - d).abs() <= 1e-3 * d.max(1.0));
                }
                assert!(stats.real_distance_calcs <= data.len() as u64);
                // Sorted ascending.
                for w in got.windows(2) {
                    assert!(w[0].dist_sq <= w[1].dist_sq);
                }
            }
        }
    }

    #[test]
    fn range_with_reused_context_is_allocation_free_after_warmup() {
        let (data, index) = setup(300, 78);
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 78);
        let config = QueryConfig::for_tests();
        let mut ctx = QueryContext::new();
        let mut warm = None;
        for q in queries.iter() {
            let (_, nn) = data.nearest_neighbor_brute_force(q);
            let (got, _) = range_search_with(&index, q, nn * 2.0, &config, &mut ctx);
            assert!(!got.is_empty());
            match warm {
                None => warm = Some(ctx.alloc_events()),
                Some(w) => assert_eq!(ctx.alloc_events(), w),
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_epsilon() {
        let (_, index) = setup(10, 75);
        let q = index.dataset().series(0).to_vec();
        range_search(&index, &q, -1.0, &QueryConfig::for_tests());
    }
}
