//! Bounded admission with load-shedding.
//!
//! The daemon puts a fixed-capacity admission gate in front of the query
//! dispenser: at most `capacity` queries may be in flight (executing on a
//! handler thread or about to). When the gate is full, the caller sheds
//! the request — a `503` with a `Retry-After` hint — instead of queueing
//! unboundedly and letting latency collapse. Capacity `0` is the
//! *drain mode*: every query sheds while health and metrics stay up,
//! which is how an operator (or the CI harness) takes a node out of
//! rotation deterministically.

use messi_sync::Counter;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-capacity admission gate with shed accounting.
#[derive(Debug)]
pub struct Admission {
    capacity: usize,
    inflight: AtomicUsize,
    admitted: Counter,
    sheds: Counter,
}

impl Admission {
    /// Creates a gate admitting at most `capacity` concurrent queries
    /// (`0` = drain mode, shed everything).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inflight: AtomicUsize::new(0),
            admitted: Counter::new(),
            sheds: Counter::new(),
        }
    }

    /// Tries to admit one query. `None` means the gate is full and the
    /// request was counted as shed.
    pub fn try_acquire(&self) -> Option<AdmissionPermit<'_>> {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                self.sheds.inc();
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admitted.inc();
                    return Some(AdmissionPermit(self));
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Maximum concurrent admitted queries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queries currently holding a permit.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Total queries ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.get()
    }

    /// Total queries shed at the gate.
    pub fn sheds(&self) -> u64 {
        self.sheds.get()
    }
}

/// An admitted query's slot; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit<'a>(&'a Admission);

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let gate = Admission::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let b = gate.try_acquire().expect("slot 2");
        assert_eq!(gate.inflight(), 2);
        assert!(gate.try_acquire().is_none(), "full gate sheds");
        assert_eq!(gate.sheds(), 1);
        drop(a);
        let c = gate.try_acquire().expect("freed slot is reusable");
        assert_eq!(gate.inflight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.sheds(), 1);
    }

    #[test]
    fn zero_capacity_is_drain_mode() {
        let gate = Admission::new(0);
        for _ in 0..5 {
            assert!(gate.try_acquire().is_none());
        }
        assert_eq!(gate.sheds(), 5);
        assert_eq!(gate.admitted(), 0);
    }

    #[test]
    fn concurrent_acquisition_never_exceeds_capacity() {
        use std::sync::atomic::AtomicUsize;
        let gate = Admission::new(3);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        if let Some(permit) = gate.try_acquire() {
                            peak.fetch_max(gate.inflight(), Ordering::SeqCst);
                            std::hint::black_box(&permit);
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3, "capacity breached");
        assert_eq!(gate.inflight(), 0, "all permits released");
        assert!(gate.admitted() > 0);
    }
}
