//! The daemon's counterpart: a blocking HTTP/1.1 client and the
//! `load-smoke` driver.
//!
//! [`Client`] speaks exactly the dialect the server emits (status line +
//! headers + `Content-Length` body, keep-alive by default), so the pair
//! round-trips without touching a real HTTP stack. [`run_load_smoke`]
//! drives N concurrent keep-alive connections through a list of query
//! bodies and folds the outcome into a [`SmokeReport`] — ok/shed/error
//! counts and p50/p99 latency — which is what the CI daemon-smoke job
//! asserts on.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A parsed response as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` hint in seconds, if the server sent one.
    pub retry_after: Option<u64>,
    /// The response body.
    pub body: Vec<u8>,
    /// Whether the server will close the connection after this exchange.
    pub close: bool,
}

/// A blocking keep-alive HTTP/1.1 connection to the daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7700`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response off the same connection.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: messi\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// Parses one response from any [`BufRead`] (unit-tested without
/// sockets, mirroring the server's request parser).
fn read_response<R: BufRead>(r: &mut R) -> io::Result<ClientResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let mut parts = line.trim_end().splitn(3, ' ');
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported HTTP version"));
    }
    let status: u16 = status.parse().map_err(|_| bad("malformed status code"))?;

    let mut content_length: usize = 0;
    let mut retry_after = None;
    let mut close = false;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(bad("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed response header"));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| bad("invalid content-length"))?;
            }
            "retry-after" => retry_after = value.parse().ok(),
            "connection" => close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        retry_after,
        body,
        close,
    })
}

/// Polls `GET /healthz` until the daemon reports ready or the deadline
/// passes. Returns `true` once ready.
pub fn wait_ready(addr: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(mut client) = Client::connect(addr) {
            if let Ok(resp) = client.request("GET", "/healthz", b"") {
                if resp.status == 200 {
                    return true;
                }
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Shape of a load-smoke run.
#[derive(Debug, Clone)]
pub struct SmokeConfig {
    /// Concurrent keep-alive connections.
    pub clients: usize,
    /// Queries sent per connection.
    pub per_client: usize,
    /// Retry shed (503) queries with backoff until they land. When
    /// `false` a 503 just counts as shed and the driver moves on — the
    /// mode the CI harness uses to assert that shedding happens.
    pub retry: bool,
    /// Attempt cap per query when retrying (connect errors included).
    pub max_attempts: usize,
}

impl Default for SmokeConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            per_client: 25,
            retry: true,
            max_attempts: 50,
        }
    }
}

/// What a load-smoke run observed.
#[derive(Debug, Clone, Default)]
pub struct SmokeReport {
    /// Queries answered `200`.
    pub ok: u64,
    /// `503` responses observed (shed by the admission gate).
    pub shed: u64,
    /// `4xx` responses (should be 0 for well-formed bodies).
    pub client_errors: u64,
    /// `5xx` responses other than 503.
    pub server_errors: u64,
    /// Connect/read/write failures.
    pub transport_errors: u64,
    /// Re-sends performed after a 503 or transport failure.
    pub retries: u64,
    /// Median end-to-end latency of successful queries, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency of successful queries, microseconds.
    pub p99_us: u64,
    /// Worst-case latency of successful queries, microseconds.
    pub max_us: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl SmokeReport {
    /// Successful queries per second over the run's wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.wall.as_secs_f64()
        }
    }

    /// The single stats line the CLI prints and CI greps.
    pub fn render(&self) -> String {
        format!(
            "load-smoke: ok={} shed={} client_errors={} server_errors={} \
             transport_errors={} retries={} p50_us={} p99_us={} max_us={} \
             wall_ms={} qps={:.1}",
            self.ok,
            self.shed,
            self.client_errors,
            self.server_errors,
            self.transport_errors,
            self.retries,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.wall.as_millis(),
            self.throughput()
        )
    }
}

/// The `q`-quantile of an ascending-sorted slice (nearest-rank).
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Per-thread tally, merged into the final report after the run.
#[derive(Default)]
struct ThreadTally {
    latencies_us: Vec<u64>,
    shed: u64,
    client_errors: u64,
    server_errors: u64,
    transport_errors: u64,
    retries: u64,
}

/// Drives `config.clients` concurrent connections through `bodies`
/// (each thread walks the list round-robin from its own offset, so all
/// bodies get exercised even when `per_client < bodies.len()`).
///
/// Every query either succeeds, is counted shed/errored, or exhausts
/// `max_attempts`; the driver itself never blocks indefinitely.
pub fn run_load_smoke(addr: &str, bodies: &[Vec<u8>], config: &SmokeConfig) -> SmokeReport {
    assert!(
        !bodies.is_empty(),
        "load-smoke needs at least one query body"
    );
    let started = Instant::now();
    let tallies: Vec<ThreadTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client_id| s.spawn(move || smoke_thread(addr, bodies, config, client_id)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("smoke thread panicked"))
            .collect()
    });

    let mut report = SmokeReport {
        wall: started.elapsed(),
        ..SmokeReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for tally in tallies {
        report.shed += tally.shed;
        report.client_errors += tally.client_errors;
        report.server_errors += tally.server_errors;
        report.transport_errors += tally.transport_errors;
        report.retries += tally.retries;
        latencies.extend(tally.latencies_us);
    }
    latencies.sort_unstable();
    report.ok = latencies.len() as u64;
    report.p50_us = percentile(&latencies, 0.50);
    report.p99_us = percentile(&latencies, 0.99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report
}

/// Milliseconds to sleep before retrying a shed (503) query.
///
/// The linear per-attempt ramp (`5 ms × attempt`) is the floor: a
/// `Retry-After: 0` hint must never collapse into a hot-spin loop. The
/// hint itself is in whole seconds — far coarser than these
/// sub-millisecond queries — so it is scaled down (20 ms per hinted
/// second) and capped at [`MAX_BACKOFF_MS`], well below a full second,
/// so a large hint cannot stall the smoke run either.
const MAX_BACKOFF_MS: u64 = 250;

fn backoff_ms(attempt: usize, retry_after: Option<u64>) -> u64 {
    let base = (5 * attempt as u64).max(1);
    let hinted = retry_after.map_or(base, |s| base.max(s.saturating_mul(20)));
    hinted.clamp(1, MAX_BACKOFF_MS)
}

/// One connection's worth of the load-smoke run.
fn smoke_thread(
    addr: &str,
    bodies: &[Vec<u8>],
    config: &SmokeConfig,
    client_id: usize,
) -> ThreadTally {
    let mut tally = ThreadTally::default();
    let mut conn: Option<Client> = None;
    for i in 0..config.per_client {
        let body = &bodies[(client_id * config.per_client + i) % bodies.len()];
        for attempt in 1..=config.max_attempts.max(1) {
            if attempt > 1 {
                tally.retries += 1;
            }
            let client = match conn.as_mut() {
                Some(c) => c,
                None => match Client::connect(addr) {
                    Ok(c) => conn.insert(c),
                    Err(_) => {
                        tally.transport_errors += 1;
                        std::thread::sleep(Duration::from_millis(10 * attempt as u64));
                        continue;
                    }
                },
            };
            let sent = Instant::now();
            match client.request("POST", "/query", body) {
                Ok(resp) => {
                    if resp.close {
                        conn = None;
                    }
                    match resp.status {
                        200 => {
                            tally
                                .latencies_us
                                .push(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            break;
                        }
                        503 => {
                            tally.shed += 1;
                            if !config.retry {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(backoff_ms(
                                attempt,
                                resp.retry_after,
                            )));
                        }
                        400..=499 => {
                            tally.client_errors += 1;
                            break;
                        }
                        _ => {
                            tally.server_errors += 1;
                            break;
                        }
                    }
                }
                Err(_) => {
                    tally.transport_errors += 1;
                    conn = None; // framing lost; reconnect
                    std::thread::sleep(Duration::from_millis(10 * attempt as u64));
                }
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::http::{read_request, Response};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn parses_a_response_with_retry_after() {
        let raw: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 4\r\n\
                           Retry-After: 2\r\nConnection: close\r\n\r\nbusy";
        let resp = read_response(&mut BufReader::new(raw)).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(2));
        assert_eq!(resp.body, b"busy");
        assert!(resp.close);
    }

    #[test]
    fn rejects_malformed_responses() {
        for raw in [
            &b"garbage\r\n\r\n"[..],
            &b"HTTP/1.1 abc OK\r\n\r\n"[..],
            &b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab"[..], // short body
            &b""[..],
        ] {
            assert!(read_response(&mut BufReader::new(raw)).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn backoff_zero_second_hint_never_hot_spins() {
        // A `Retry-After: 0` hint must fall back to the per-attempt
        // ramp, never to a 0 ms busy loop.
        for attempt in 1..=10 {
            let ms = backoff_ms(attempt, Some(0));
            assert!(ms >= 1, "attempt {attempt}: zero-ms backoff");
            assert_eq!(ms, backoff_ms(attempt, None), "0 s hint == no hint");
        }
        assert_eq!(backoff_ms(1, Some(0)), 5);
    }

    #[test]
    fn backoff_large_hints_scale_but_stay_sub_second() {
        // Hints are coarse whole seconds; they must raise the backoff
        // monotonically but never stall the run for a full second.
        assert!(backoff_ms(1, Some(1)) > backoff_ms(1, Some(0)));
        assert_eq!(backoff_ms(1, Some(1)), 20, "20 ms per hinted second");
        for hint in [1, 2, 30, 3600, u64::MAX] {
            let ms = backoff_ms(1, Some(hint));
            assert!(ms < 1000, "hint {hint}: backoff {ms} ms not sub-second");
        }
        assert_eq!(backoff_ms(1, Some(3600)), MAX_BACKOFF_MS);
        assert_eq!(backoff_ms(1, Some(u64::MAX)), MAX_BACKOFF_MS, "no overflow");
        // The ramp floor survives even at the attempt cap.
        assert_eq!(backoff_ms(100, Some(0)), MAX_BACKOFF_MS);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    /// A canned loopback server: sheds the first `shed_first` queries
    /// with 503 + Retry-After, answers the rest 200. Accepts exactly
    /// `conns` connections, then returns (so `join` cannot hang).
    fn canned_server(
        listener: TcpListener,
        shed_first: u64,
        conns: usize,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let served = AtomicU64::new(0);
            std::thread::scope(|s| {
                for stream in listener.incoming().take(conns).flatten() {
                    let served = &served;
                    s.spawn(move || {
                        let mut writer = stream.try_clone().unwrap();
                        let mut reader = BufReader::new(stream);
                        while let Ok(Some(req)) = read_request(&mut reader) {
                            assert_eq!(req.path, "/query");
                            let n = served.fetch_add(1, Ordering::SeqCst);
                            let resp = if n < shed_first {
                                Response::error(503, "overloaded").with_retry_after(1)
                            } else {
                                Response::json(200, "{\"answers\":[]}".into())
                            };
                            if resp.write_to(&mut writer, false).is_err() {
                                break;
                            }
                        }
                    });
                }
            });
        })
    }

    #[test]
    fn load_smoke_retries_sheds_until_they_land() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = canned_server(listener, 3, 2);

        let bodies = vec![b"{}".to_vec(), b"{\"k\":1}".to_vec()];
        let report = run_load_smoke(
            &addr,
            &bodies,
            &SmokeConfig {
                clients: 2,
                per_client: 5,
                retry: true,
                max_attempts: 50,
            },
        );
        assert_eq!(report.ok, 10, "every query eventually lands: {report:?}");
        assert_eq!(report.shed, 3);
        assert!(report.retries >= 3);
        assert_eq!(report.client_errors + report.server_errors, 0);
        assert!(report.p50_us <= report.p99_us && report.p99_us <= report.max_us);
        server.join().unwrap();
    }

    #[test]
    fn load_smoke_no_retry_counts_sheds_and_moves_on() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = canned_server(listener, 2, 1);

        let report = run_load_smoke(
            &addr,
            &[b"{}".to_vec()],
            &SmokeConfig {
                clients: 1,
                per_client: 6,
                retry: false,
                max_attempts: 1,
            },
        );
        assert_eq!(report.ok, 4, "{report:?}");
        assert_eq!(report.shed, 2);
        assert_eq!(report.retries, 0);
        server.join().unwrap();
    }
}
