//! Minimal HTTP/1.1 framing: request parsing and fixed-length responses.
//!
//! The daemon speaks just enough HTTP for `curl`, browsers, and the
//! built-in load-smoke client: request line + headers + `Content-Length`
//! body in, status line + fixed-length body out (no chunked transfer
//! coding in either direction — oversized or chunked requests are
//! refused up front). Everything parses from any [`BufRead`], so the
//! wire layer is unit-tested byte-for-byte without sockets.

use std::io::{self, BufRead, Read, Write};

/// Hard cap on request bodies; larger requests get `413` without the
/// body ever being read.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Hard cap on the request line and on each header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of request headers.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target path, query string included.
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to close after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

/// Why a request could not be parsed. Each variant maps to one status
/// code via [`HttpError::status`]; transport failures stay `Io`.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or framing → `400`.
    BadRequest(&'static str),
    /// Declared `Content-Length` above [`MAX_BODY_BYTES`] → `413`.
    PayloadTooLarge,
    /// Transport failure (no response possible).
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps to (`None` for I/O errors,
    /// where the connection is simply dropped).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::PayloadTooLarge => Some(413),
            HttpError::Io(_) => None,
        }
    }

    /// Human-readable detail for the error response body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(msg) => (*msg).to_string(),
            HttpError::PayloadTooLarge => {
                format!("request body exceeds {MAX_BODY_BYTES} bytes")
            }
            HttpError::Io(e) => e.to_string(),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::PayloadTooLarge => write!(f, "payload too large"),
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one line (up to CRLF or LF), rejecting lines over
/// [`MAX_LINE_BYTES`]. Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = r.take(MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(if n > MAX_LINE_BYTES {
            HttpError::BadRequest("line too long")
        } else {
            HttpError::BadRequest("truncated request")
        });
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 header data"))
}

/// Reads and parses one request from `r`.
///
/// Returns `Ok(None)` if the peer closed the connection cleanly before
/// sending a request line (the normal end of a keep-alive session).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest("malformed request line"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest("request target must be absolute"));
    }
    let mut close = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
    };

    let mut content_length: usize = 0;
    for parsed_headers in 0.. {
        if parsed_headers > MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers"));
        }
        let line = read_line(r)?.ok_or(HttpError::BadRequest("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("invalid content-length"))?;
            }
            "transfer-encoding" => {
                return Err(HttpError::BadRequest("transfer-encoding not supported"));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    close = true;
                } else if v.contains("keep-alive") {
                    close = false;
                }
            }
            _ => {}
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close,
    }))
}

/// A response: status, content type, fixed-length body, and an optional
/// `Retry-After` hint (seconds) for load-shedding replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body, sent with an exact `Content-Length`.
    pub body: Vec<u8>,
    /// `Retry-After` hint in seconds (only meaningful on 503).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    /// A JSON error response with an `{"error": …}` body.
    pub fn error(status: u16, detail: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}", super::json::escape(detail)),
        )
    }

    /// Sets the `Retry-After` hint.
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes the response. `close` controls the `Connection` header
    /// (the server echoes the client's keep-alive choice, and forces
    /// close while draining for shutdown).
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after {
            write!(w, "Retry-After: {seconds}\r\n")?;
        }
        write!(
            w,
            "Connection: {}\r\n\r\n",
            if close { "close" } else { "keep-alive" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut io::BufReader::new(raw))
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_with_body_and_close() {
        let req = parse(
            b"POST /query HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
        assert!(req.close);
    }

    #[test]
    fn http_10_defaults_to_close() {
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(req.close);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.close);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let req = parse(b"GET /metrics HTTP/1.1\nHost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_get_400() {
        for raw in [
            b"GARBAGE\r\n\r\n".to_vec(),
            b"GET /x\r\n\r\n".to_vec(),                // missing version
            b"GET /x HTTP/2.0\r\n\r\n".to_vec(),       // unsupported version
            b"GET /x HTTP/1.1 extra\r\n\r\n".to_vec(), // extra token
            b"get /x HTTP/1.1\r\n\r\n".to_vec(),       // lower-case method
            b"GET x HTTP/1.1\r\n\r\n".to_vec(),        // relative target
            b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n".to_vec(), // malformed header
            b"GET /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n".to_vec(),
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nHost: x".to_vec(), // truncated headers
        ] {
            let err = parse(&raw).unwrap_err();
            assert_eq!(err.status(), Some(400), "{raw:?} → {err}");
        }
    }

    #[test]
    fn oversized_declared_body_gets_413_without_reading_it() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(413));
        assert!(err.detail().contains("exceeds"));
    }

    #[test]
    fn oversized_request_line_gets_400() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES));
        let err = parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), Some(400));
        assert!(err.detail().contains("line too long"));
    }

    #[test]
    fn too_many_headers_get_400() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn short_body_is_an_io_error() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(err.status().is_none(), "transport failure, not a 4xx");
    }

    #[test]
    fn keep_alive_sessions_parse_back_to_back_requests() {
        let raw: &[u8] =
            b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = io::BufReader::new(raw);
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.body, b"hi");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/metrics");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::text(200, "ok\n")
            .write_to(&mut out, false)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(
            s,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: 3\r\nConnection: keep-alive\r\n\r\nok\n"
        );

        let mut out = Vec::new();
        Response::error(503, "overloaded")
            .with_retry_after(1)
            .write_to(&mut out, true)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 1\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"), "{s}");
        assert!(s.ends_with("{\"error\":\"overloaded\"}"), "{s}");
    }
}
