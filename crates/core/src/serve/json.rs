//! A minimal JSON parser and string escaper for the wire protocol.
//!
//! The container has no crates.io access, so — like the `shims/`
//! workspace members — the serve layer carries its own std-only JSON
//! support. The subset is complete for the protocol's needs (objects,
//! arrays, strings, finite numbers, booleans, null; `\uXXXX` escapes with
//! surrogate pairs), with hard limits on nesting depth so hostile bodies
//! cannot blow the stack. Responses are produced by plain `format!`
//! against [`escape`] — the protocol only ever *emits* flat objects.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — the grammar has no NaN/∞).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs (duplicate keys
    /// are rejected at parse time).
    Obj(Vec<(String, Json)>),
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys, in document order (empty for non-objects).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        const EMPTY: &[(String, Json)] = &[];
        match self {
            Json::Obj(fields) => fields.as_slice(),
            _ => EMPTY,
        }
        .iter()
        .map(|(k, _)| k.as_str())
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed its input
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is valid UTF-8,
                    // the body was checked before parsing).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .map(|c| c.len_utf8())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (cursor on the first hex
    /// digit), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.err("unpaired high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let doc = r#"{"objective": "knn", "k": 5, "series": [0.5, -1.25e2, 3], "dtw": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("objective").and_then(Json::as_str), Some("knn"));
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("dtw"), Some(&Json::Bool(true)));
        let series = v.get("series").and_then(Json::as_arr).unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[1].as_f64(), Some(-125.0));
        assert_eq!(
            v.keys().collect::<Vec<_>>(),
            ["objective", "k", "series", "dtw"]
        );
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
        assert_eq!(
            Json::parse(r#"[[1],[2,[3]]]"#).unwrap(),
            Json::Arr(vec![
                Json::Arr(vec![Json::Num(1.0)]),
                Json::Arr(vec![Json::Num(2.0), Json::Arr(vec![Json::Num(3.0)])]),
            ])
        );
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\n\t\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\té 😀"));
        let re = format!("\"{}\"", escape(v.as_str().unwrap()));
        assert_eq!(Json::parse(&re).unwrap(), v);
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "1e999",
            "nan",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("deep"), "{err}");
    }
}
