//! Server-side counters and their Prometheus text exposition.
//!
//! `/metrics` exports three families of numbers: the HTTP frontend's own
//! counters (requests, sheds, in-flight gauge), the executor's
//! [`QueryStatsAggregate`] — the same throughput / Fig. 13 phase
//! breakdown / prune-rate / budget-stop counters the CLI bench reports,
//! so a dashboard over the daemon reads exactly what the offline harness
//! prints — and, when the daemon serves a sharded index, per-shard
//! labeled counters (`messi_shard_*_total{shard="i"}`) folded from the
//! scatter's per-shard [`QueryStats`], so load imbalance and cross-shard
//! pruning effectiveness are visible per shard. [`encode_prometheus`]
//! destructures the aggregate exhaustively: adding a stats field without
//! exporting it is a compile error, not a silent observability gap.

use crate::stats::{QueryStats, QueryStatsAggregate, TimeBreakdown};
use messi_sync::Counter;
use parking_lot::Mutex;
use std::time::Instant;

use super::admission::Admission;

/// Counters the HTTP frontend maintains, plus the folded query stats.
#[derive(Debug)]
pub struct ServerMetrics {
    /// When the server started (for the uptime gauge).
    pub started: Instant,
    /// Every request that produced a response, any route or status.
    pub http_requests: Counter,
    /// Requests answered with a 4xx (bad JSON, unknown route, oversized
    /// body, wrong method).
    pub http_client_errors: Counter,
    /// Queries that failed inside the engine (500s).
    pub query_failures: Counter,
    /// Per-query scratch allocation events observed after warm-up —
    /// stays 0 on a healthy daemon (the zero-alloc invariant, live).
    pub query_alloc_events: Counter,
    /// The folded stats of every answered query.
    agg: Mutex<QueryStatsAggregate>,
    /// Per-shard folds of the same queries (index = shard id), fed by
    /// the scatter's per-shard [`QueryStats`].
    shard_aggs: Vec<Mutex<QueryStatsAggregate>>,
}

impl ServerMetrics {
    /// Fresh counters for a daemon over `num_shards` shards, uptime
    /// starting now.
    pub fn new(num_shards: usize) -> Self {
        Self {
            started: Instant::now(),
            http_requests: Counter::new(),
            http_client_errors: Counter::new(),
            query_failures: Counter::new(),
            query_alloc_events: Counter::new(),
            agg: Mutex::new(QueryStatsAggregate::default()),
            shard_aggs: (0..num_shards)
                .map(|_| Mutex::new(QueryStatsAggregate::default()))
                .collect(),
        }
    }

    /// Folds one answered query into the aggregate; `alloc_delta` is the
    /// context's allocation-event delta across the query and `per_shard`
    /// the scatter's per-shard stats (one entry per shard).
    pub fn record_query(&self, stats: &QueryStats, alloc_delta: u64, per_shard: &[QueryStats]) {
        self.agg.lock().add(stats);
        self.query_alloc_events.add(alloc_delta);
        for (agg, shard_stats) in self.shard_aggs.iter().zip(per_shard) {
            agg.lock().add(shard_stats);
        }
    }

    /// A snapshot of the folded query stats.
    pub fn aggregate(&self) -> QueryStatsAggregate {
        self.agg.lock().clone()
    }

    /// Snapshots of the per-shard folds, indexed by shard id.
    pub fn shard_aggregates(&self) -> Vec<QueryStatsAggregate> {
        self.shard_aggs.iter().map(|a| a.lock().clone()).collect()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new(1)
    }
}

/// One metric family: `# HELP` + `# TYPE` + one sample line.
fn family(out: &mut String, name: &str, kind: &str, help: &str, value: impl std::fmt::Display) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Renders the Prometheus text exposition ([text format 0.0.4]) of the
/// server's state, including the live-ingest families from `ingest`
/// (a [`DeltaIndex::stats`](crate::ingest::DeltaIndex::stats) snapshot;
/// a daemon without ingest enabled exports them as zeros so dashboards
/// keep a stable series set).
///
/// [text format 0.0.4]: https://prometheus.io/docs/instrumenting/exposition_formats/
pub fn encode_prometheus(
    metrics: &ServerMetrics,
    admission: &Admission,
    ready: bool,
    ingest: &crate::ingest::IngestStats,
) -> String {
    let mut out = String::with_capacity(4096);

    family(
        &mut out,
        "messi_ready",
        "gauge",
        "1 once the snapshot is loaded and the context pool is prewarmed.",
        ready as u8,
    );
    family(
        &mut out,
        "messi_uptime_seconds",
        "gauge",
        "Seconds since the daemon started.",
        format_args!("{:.3}", metrics.started.elapsed().as_secs_f64()),
    );
    family(
        &mut out,
        "messi_http_requests_total",
        "counter",
        "HTTP requests answered, any route or status.",
        metrics.http_requests.get(),
    );
    family(
        &mut out,
        "messi_http_client_errors_total",
        "counter",
        "Requests answered with a 4xx status.",
        metrics.http_client_errors.get(),
    );
    family(
        &mut out,
        "messi_query_failures_total",
        "counter",
        "Queries that failed inside the engine (5xx).",
        metrics.query_failures.get(),
    );
    family(
        &mut out,
        "messi_queries_shed_total",
        "counter",
        "Queries shed at the admission gate (503).",
        admission.sheds(),
    );
    family(
        &mut out,
        "messi_admission_inflight",
        "gauge",
        "Queries currently holding an admission permit.",
        admission.inflight(),
    );
    family(
        &mut out,
        "messi_admission_capacity",
        "gauge",
        "Admission gate capacity (0 = drain mode).",
        admission.capacity(),
    );
    family(
        &mut out,
        "messi_query_alloc_events_total",
        "counter",
        "Per-query scratch allocations observed after warm-up (should stay 0).",
        metrics.query_alloc_events.get(),
    );

    // Live-ingest families: destructured exhaustively like the query
    // aggregate, so a new IngestStats field is a compile error here
    // until it is exported.
    let crate::ingest::IngestStats {
        epoch,
        epoch_age,
        overlay_series,
        total_series,
        batches,
        series_ingested,
        republishes,
        republish_time,
        log_bytes,
    } = *ingest;
    family(
        &mut out,
        "messi_ingest_epoch",
        "gauge",
        "Published epoch id (bumps on every insert and republish).",
        epoch,
    );
    family(
        &mut out,
        "messi_ingest_epoch_age_seconds",
        "gauge",
        "Age of the published index core (resets on republish).",
        format_args!("{:.3}", epoch_age.as_secs_f64()),
    );
    family(
        &mut out,
        "messi_ingest_delta_series",
        "gauge",
        "Series in the sealed overlay, not yet flattened into arenas.",
        overlay_series,
    );
    family(
        &mut out,
        "messi_ingest_live_series",
        "gauge",
        "Total live series (published base + overlay).",
        total_series,
    );
    family(
        &mut out,
        "messi_ingest_batches_total",
        "counter",
        "Ingest batches accepted.",
        batches,
    );
    family(
        &mut out,
        "messi_ingest_series_total",
        "counter",
        "Series ingested.",
        series_ingested,
    );
    family(
        &mut out,
        "messi_ingest_republishes_total",
        "counter",
        "Overlay flattens (epoch republishes).",
        republishes,
    );
    family(
        &mut out,
        "messi_ingest_republish_seconds_total",
        "counter",
        "Summed republish wall time in seconds.",
        format_args!("{:.6}", republish_time.as_secs_f64()),
    );
    family(
        &mut out,
        "messi_ingest_log_bytes",
        "gauge",
        "Current delta-log size in bytes (0 without a log).",
        log_bytes,
    );

    // The executor aggregate, destructured exhaustively: a new stats
    // field fails this function (and the covering unit test) at compile
    // time until it is exported below.
    let agg = metrics.aggregate();
    let QueryStatsAggregate {
        queries,
        lb_distance_calcs,
        real_distance_calcs,
        bsf_updates,
        approx_inflation_prunes,
        budget_stops,
        total_time,
        breakdown,
        latencies_us: _, // exported below as quantile gauges via `agg`
    } = agg.clone();
    family(
        &mut out,
        "messi_queries_total",
        "counter",
        "Queries answered successfully.",
        queries,
    );
    family(
        &mut out,
        "messi_query_lb_distance_calcs_total",
        "counter",
        "Lower-bound (mindist) distance calculations (Fig. 17a).",
        lb_distance_calcs,
    );
    family(
        &mut out,
        "messi_query_real_distance_calcs_total",
        "counter",
        "Real (ED/DTW) distance calculations (Fig. 17b).",
        real_distance_calcs,
    );
    family(
        &mut out,
        "messi_query_bsf_updates_total",
        "counter",
        "Successful shared-BSF improvements.",
        bsf_updates,
    );
    family(
        &mut out,
        "messi_query_approx_inflation_prunes_total",
        "counter",
        "Prunes only the ε-inflated approximate bound allowed.",
        approx_inflation_prunes,
    );
    family(
        &mut out,
        "messi_query_budget_stops_total",
        "counter",
        "Approximate queries stopped by the δ leaf-visit budget.",
        budget_stops,
    );
    family(
        &mut out,
        "messi_query_seconds_total",
        "counter",
        "Summed query wall time in seconds.",
        format_args!("{:.6}", total_time.as_secs_f64()),
    );
    out.push_str(
        "# HELP messi_query_latency_us Per-query latency quantiles in microseconds \
         (nearest-rank over the daemon's lifetime).\n\
         # TYPE messi_query_latency_us gauge\n",
    );
    for (label, p) in [("0.5", 50.0), ("0.99", 99.0), ("1.0", 100.0)] {
        out.push_str(&format!(
            "messi_query_latency_us{{quantile=\"{label}\"}} {}\n",
            agg.latency_percentile_us(p).unwrap_or(0)
        ));
    }

    // The Fig. 13 per-phase breakdown, likewise exhaustively
    // destructured. Absent (no query ran with collect_breakdown) it
    // exports as all-zero rather than disappearing, so dashboards keep a
    // stable series set.
    let TimeBreakdown {
        init_ns,
        tree_pass_ns,
        pq_insert_ns,
        pq_remove_ns,
        dist_calc_ns,
    } = breakdown.unwrap_or_default();
    let phase = |out: &mut String, label: &str, ns: u64| {
        out.push_str(&format!(
            "messi_query_phase_seconds_total{{phase=\"{label}\"}} {:.6}\n",
            ns as f64 / 1e9
        ));
    };
    out.push_str("# HELP messi_query_phase_seconds_total Summed per-phase query time (Fig. 13 breakdown).\n# TYPE messi_query_phase_seconds_total counter\n");
    phase(&mut out, "init", init_ns);
    phase(&mut out, "tree_pass", tree_pass_ns);
    phase(&mut out, "pq_insert", pq_insert_ns);
    phase(&mut out, "pq_remove", pq_remove_ns);
    phase(&mut out, "dist_calc", dist_calc_ns);

    // Per-shard counter families, one labeled sample per shard. The
    // scatter hands every query's per-shard stats to `record_query`, so
    // per-shard `queries` counters advance in lockstep while the work
    // counters split by shard — imbalance and cross-shard pruning (a
    // shard pruned by another's BSF shows few real-distance calcs) read
    // straight off the label dimension.
    let shard_aggs = metrics.shard_aggregates();
    let labeled =
        |out: &mut String, name: &str, help: &str, value: fn(&QueryStatsAggregate) -> String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (i, agg) in shard_aggs.iter().enumerate() {
                out.push_str(&format!("{name}{{shard=\"{i}\"}} {}\n", value(agg)));
            }
        };
    labeled(
        &mut out,
        "messi_shard_queries_total",
        "Queries this shard participated in answering.",
        |a| a.queries.to_string(),
    );
    labeled(
        &mut out,
        "messi_shard_query_lb_distance_calcs_total",
        "Lower-bound (mindist) calculations performed by this shard.",
        |a| a.lb_distance_calcs.to_string(),
    );
    labeled(
        &mut out,
        "messi_shard_query_real_distance_calcs_total",
        "Real (ED/DTW) distance calculations performed by this shard.",
        |a| a.real_distance_calcs.to_string(),
    );
    labeled(
        &mut out,
        "messi_shard_query_seconds_total",
        "Summed per-shard query wall time in seconds.",
        |a| format!("{:.6}", a.total_time.as_secs_f64()),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StopReason;
    use std::time::Duration;

    fn sample_metrics() -> (ServerMetrics, Admission) {
        let metrics = ServerMetrics::new(2);
        metrics.http_requests.add(7);
        metrics.http_client_errors.add(2);
        metrics.record_query(
            &QueryStats {
                lb_distance_calcs: 100,
                real_distance_calcs: 40,
                bsf_updates: 11,
                approx_inflation_prunes: 3,
                stop_reason: Some(StopReason::BudgetExhausted),
                total_time: Duration::from_millis(5),
                breakdown: Some(TimeBreakdown {
                    init_ns: 1_000,
                    tree_pass_ns: 2_000,
                    pq_insert_ns: 3_000,
                    pq_remove_ns: 4_000,
                    dist_calc_ns: 5_000,
                }),
                ..Default::default()
            },
            0,
            &[
                QueryStats {
                    lb_distance_calcs: 60,
                    real_distance_calcs: 39,
                    ..Default::default()
                },
                QueryStats {
                    lb_distance_calcs: 40,
                    real_distance_calcs: 1,
                    ..Default::default()
                },
            ],
        );
        let admission = Admission::new(4);
        let _ = admission.try_acquire().map(std::mem::forget); // pin inflight = 1
        (metrics, admission)
    }

    /// Every aggregate field maps to exactly one metric family, and every
    /// family appears exactly once. The destructuring makes a new
    /// `QueryStatsAggregate` / `TimeBreakdown` field a compile error
    /// here until its expected sample line is added.
    #[test]
    fn every_counter_is_exported_exactly_once() {
        let (metrics, admission) = sample_metrics();
        let ingest = crate::ingest::IngestStats {
            epoch: 5,
            epoch_age: Duration::from_millis(1500),
            overlay_series: 12,
            total_series: 1012,
            batches: 4,
            series_ingested: 17,
            republishes: 2,
            republish_time: Duration::from_millis(250),
            log_bytes: 4096,
        };
        let text = encode_prometheus(&metrics, &admission, true, &ingest);

        let QueryStatsAggregate {
            queries,
            lb_distance_calcs,
            real_distance_calcs,
            bsf_updates,
            approx_inflation_prunes,
            budget_stops,
            total_time: _,
            breakdown,
            latencies_us: _,
        } = metrics.aggregate();
        let TimeBreakdown {
            init_ns,
            tree_pass_ns,
            pq_insert_ns,
            pq_remove_ns,
            dist_calc_ns,
        } = breakdown.expect("sample query collected a breakdown");

        let expect_exactly_once = |line: String| {
            let hits = text.matches(&line).count();
            assert_eq!(hits, 1, "`{line}` appears {hits}× in:\n{text}");
        };
        expect_exactly_once(format!("\nmessi_queries_total {queries}\n"));
        expect_exactly_once(format!(
            "\nmessi_query_lb_distance_calcs_total {lb_distance_calcs}\n"
        ));
        expect_exactly_once(format!(
            "\nmessi_query_real_distance_calcs_total {real_distance_calcs}\n"
        ));
        expect_exactly_once(format!("\nmessi_query_bsf_updates_total {bsf_updates}\n"));
        expect_exactly_once(format!(
            "\nmessi_query_approx_inflation_prunes_total {approx_inflation_prunes}\n"
        ));
        expect_exactly_once(format!("\nmessi_query_budget_stops_total {budget_stops}\n"));
        expect_exactly_once("\nmessi_query_seconds_total 0.005000\n".to_string());
        // One query of 5 ms: every latency quantile is 5000 µs.
        for label in ["0.5", "0.99", "1.0"] {
            expect_exactly_once(format!(
                "messi_query_latency_us{{quantile=\"{label}\"}} 5000\n"
            ));
        }
        for (label, ns) in [
            ("init", init_ns),
            ("tree_pass", tree_pass_ns),
            ("pq_insert", pq_insert_ns),
            ("pq_remove", pq_remove_ns),
            ("dist_calc", dist_calc_ns),
        ] {
            expect_exactly_once(format!(
                "\nmessi_query_phase_seconds_total{{phase=\"{label}\"}} {:.6}\n",
                ns as f64 / 1e9
            ));
        }

        // Server-side families.
        expect_exactly_once("\nmessi_ready 1\n".to_string());
        expect_exactly_once("\nmessi_http_requests_total 7\n".to_string());
        expect_exactly_once("\nmessi_http_client_errors_total 2\n".to_string());
        expect_exactly_once("\nmessi_query_failures_total 0\n".to_string());
        expect_exactly_once("\nmessi_queries_shed_total 0\n".to_string());
        expect_exactly_once("\nmessi_admission_inflight 1\n".to_string());
        expect_exactly_once("\nmessi_admission_capacity 4\n".to_string());
        expect_exactly_once("\nmessi_query_alloc_events_total 0\n".to_string());

        // Live-ingest families, one sample each.
        expect_exactly_once("\nmessi_ingest_epoch 5\n".to_string());
        expect_exactly_once("\nmessi_ingest_epoch_age_seconds 1.500\n".to_string());
        expect_exactly_once("\nmessi_ingest_delta_series 12\n".to_string());
        expect_exactly_once("\nmessi_ingest_live_series 1012\n".to_string());
        expect_exactly_once("\nmessi_ingest_batches_total 4\n".to_string());
        expect_exactly_once("\nmessi_ingest_series_total 17\n".to_string());
        expect_exactly_once("\nmessi_ingest_republishes_total 2\n".to_string());
        expect_exactly_once("\nmessi_ingest_republish_seconds_total 0.250000\n".to_string());
        expect_exactly_once("\nmessi_ingest_log_bytes 4096\n".to_string());

        // Per-shard families: the scatter's per-shard stats land under
        // their own shard label, and both shards count the query.
        expect_exactly_once("\nmessi_shard_queries_total{shard=\"0\"} 1\n".to_string());
        expect_exactly_once("messi_shard_queries_total{shard=\"1\"} 1\n".to_string());
        expect_exactly_once(
            "messi_shard_query_real_distance_calcs_total{shard=\"0\"} 39\n".to_string(),
        );
        expect_exactly_once(
            "messi_shard_query_real_distance_calcs_total{shard=\"1\"} 1\n".to_string(),
        );
        expect_exactly_once(
            "messi_shard_query_lb_distance_calcs_total{shard=\"0\"} 60\n".to_string(),
        );

        // Exposition-format hygiene: every sample has HELP + TYPE.
        let samples = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count();
        let types = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
        let helps = text.lines().filter(|l| l.starts_with("# HELP ")).count();
        assert_eq!(types, helps);
        // The phase family contributes 5 samples under one TYPE, the
        // latency family 3 quantiles under one TYPE; each of the 4
        // per-shard families contributes one sample per shard (2 shards
        // here).
        assert_eq!(samples, types + 4 + 2 + 4);
    }

    #[test]
    fn missing_breakdown_exports_zeroed_phases() {
        let metrics = ServerMetrics::new(1);
        metrics.record_query(&QueryStats::default(), 0, &[QueryStats::default()]);
        let text = encode_prometheus(
            &metrics,
            &Admission::new(1),
            false,
            &crate::ingest::IngestStats::default(),
        );
        assert!(text.contains("messi_ready 0\n"));
        assert!(text.contains("messi_ingest_batches_total 0\n"), "{text}");
        assert!(
            text.contains("messi_query_phase_seconds_total{phase=\"init\"} 0.000000\n"),
            "{text}"
        );
    }

    #[test]
    fn alloc_events_accumulate() {
        let metrics = ServerMetrics::new(1);
        metrics.record_query(&QueryStats::default(), 3, &[QueryStats::default()]);
        metrics.record_query(&QueryStats::default(), 0, &[QueryStats::default()]);
        assert_eq!(metrics.query_alloc_events.get(), 3);
        assert_eq!(metrics.aggregate().queries, 2);
        assert_eq!(metrics.shard_aggregates()[0].queries, 2);
    }
}
