//! The index service daemon: serve a built (or snapshot-loaded) MESSI
//! index over the network.
//!
//! The paper's evaluation answers queries from an offline harness; a
//! production deployment answers them from a long-running process. This
//! module is that process, built entirely on `std::net` + the crate's
//! own synchronization primitives (no HTTP framework):
//!
//! - [`http`] — minimal HTTP/1.1 framing (request parsing, fixed-length
//!   responses), unit-tested byte-for-byte without sockets.
//! - [`json`] — a small strict JSON parser for query bodies.
//! - [`proto`] — the query/ingest wire protocol: JSON body ⇄
//!   [`QuerySpec`](crate::exec::QuerySpec) + query series, ingest
//!   batches, and answer encoding.
//! - [`admission`] — the bounded admission gate with load-shedding
//!   (503 + `Retry-After`) and drain mode.
//! - [`metrics`] — frontend counters + Prometheus text exposition of
//!   the executor's [`QueryStatsAggregate`](crate::stats::QueryStatsAggregate).
//! - [`server`] — the daemon itself: acceptor + bounded handler pool
//!   over a [`messi_sync::BoundedChannel`], readiness gating, live
//!   ingest (`POST /ingest` onto a [`DeltaIndex`](crate::ingest::DeltaIndex)
//!   epoch seam, republish on the acceptor's idle ticks), graceful
//!   drain on SIGTERM/SIGINT.
//! - [`client`] — the matching blocking client and the `load-smoke`
//!   driver (concurrent connections, p50/p99 latency, shed accounting).

pub mod admission;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmissionPermit};
pub use client::{run_load_smoke, wait_ready, Client, ClientResponse, SmokeConfig, SmokeReport};
pub use server::{shutdown_flag, IndexServer, ServeConfig, ServeSummary};
