//! The query wire protocol: JSON bodies in, JSON answers out.
//!
//! A `POST /query` body names one cell of the executor's
//! Objective × Metric matrix plus the query series itself:
//!
//! ```json
//! {"objective": "knn", "k": 5, "metric": "dtw", "series": [0.1, -0.2]}
//! ```
//!
//! Field rules mirror the CLI exactly (and are validated just as
//! strictly): `k` only with `knn`; `epsilon` is a *distance* for `range`
//! and a *relative error ratio* for `approx`; `delta` only with `approx`;
//! `window` only with `metric: "dtw"`. Unknown fields are rejected so
//! typos fail loudly instead of silently running a default query.

use super::json::{escape, Json};
use crate::exact::QueryAnswer;
use crate::exec::{MetricSpec, Objective, QuerySpec};
use crate::stats::{QueryStats, StopReason};
use messi_series::distance::dtw::DtwParams;

/// A decoding/validation failure, reported to the client as a 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// The fields a `/query` body may carry (anything else is rejected).
const KNOWN_FIELDS: &[&str] = &[
    "objective",
    "metric",
    "series",
    "k",
    "epsilon",
    "delta",
    "window",
];

/// Decodes and validates a `/query` body against an index whose series
/// have `series_len` points.
pub fn decode_query(body: &[u8], series_len: usize) -> Result<(QuerySpec, Vec<f32>), ProtoError> {
    let text = std::str::from_utf8(body).map_err(|_| err("body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(err("empty body; expected a JSON query object"));
    }
    let doc = Json::parse(text).map_err(|e| err(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(err("body must be a JSON object"));
    }
    for key in doc.keys() {
        if !KNOWN_FIELDS.contains(&key) {
            return Err(err(format!(
                "unknown field `{key}` (expected one of: {})",
                KNOWN_FIELDS.join(", ")
            )));
        }
    }

    // --- the query series ---
    let series_json = doc
        .get("series")
        .ok_or_else(|| err("missing `series`"))?
        .as_arr()
        .ok_or_else(|| err("`series` must be an array of numbers"))?;
    if series_json.len() != series_len {
        return Err(err(format!(
            "`series` has {} points, index expects {series_len}",
            series_json.len()
        )));
    }
    let mut series = Vec::with_capacity(series_json.len());
    for (i, v) in series_json.iter().enumerate() {
        let x = v
            .as_f64()
            .ok_or_else(|| err(format!("`series[{i}]` is not a number")))?;
        series.push(x as f32);
    }

    // --- the objective, with per-objective field rules ---
    let objective_name = match doc.get("objective") {
        None => "exact",
        Some(v) => v
            .as_str()
            .ok_or_else(|| err("`objective` must be a string"))?,
    };
    let field_f64 = |name: &str| -> Result<Option<f64>, ProtoError> {
        match doc.get(name) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| err(format!("`{name}` must be a number"))),
        }
    };
    let reject = |name: &str| -> Result<(), ProtoError> {
        if doc.get(name).is_some() {
            Err(err(format!(
                "`{name}` is not valid for objective `{objective_name}`"
            )))
        } else {
            Ok(())
        }
    };
    let objective = match objective_name {
        "exact" => {
            reject("k")?;
            reject("epsilon")?;
            reject("delta")?;
            Objective::Exact
        }
        "knn" => {
            reject("epsilon")?;
            reject("delta")?;
            let k = field_f64("k")?.unwrap_or(10.0);
            if k < 1.0 || k.fract() != 0.0 || k > u32::MAX as f64 {
                return Err(err("`k` must be a positive integer"));
            }
            Objective::Knn { k: k as usize }
        }
        "range" => {
            reject("k")?;
            reject("delta")?;
            let epsilon = field_f64("epsilon")?.ok_or_else(|| err("`range` needs `epsilon`"))?;
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(err("`epsilon` must be a non-negative distance"));
            }
            let epsilon = epsilon as f32;
            Objective::Range {
                epsilon_sq: epsilon * epsilon,
            }
        }
        "approx" => {
            reject("k")?;
            let epsilon = field_f64("epsilon")?.unwrap_or(0.05);
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(err("`epsilon` must be a finite non-negative ratio"));
            }
            let delta = field_f64("delta")?.unwrap_or(1.0);
            if !(0.0..=1.0).contains(&delta) {
                return Err(err("`delta` must be within [0, 1]"));
            }
            Objective::Approx {
                epsilon: epsilon as f32,
                delta: delta as f32,
            }
        }
        other => {
            return Err(err(format!(
                "unknown objective `{other}` (exact|knn|range|approx)"
            )))
        }
    };

    // --- the metric ---
    let metric_name = match doc.get("metric") {
        None => "ed",
        Some(v) => v.as_str().ok_or_else(|| err("`metric` must be a string"))?,
    };
    let metric = match metric_name {
        "ed" | "euclidean" => {
            if doc.get("window").is_some() {
                return Err(err("`window` is only valid with `metric: \"dtw\"`"));
            }
            MetricSpec::Euclidean
        }
        "dtw" => {
            let params = match field_f64("window")? {
                None => DtwParams::paper_default(series_len),
                Some(w) => {
                    if w < 1.0 || w.fract() != 0.0 || w as usize >= series_len {
                        return Err(err(format!(
                            "`window` must be an integer in 1..{series_len}"
                        )));
                    }
                    DtwParams { window: w as usize }
                }
            };
            MetricSpec::Dtw(params)
        }
        other => return Err(err(format!("unknown metric `{other}` (ed|dtw)"))),
    };

    Ok((QuerySpec { objective, metric }, series))
}

/// The fields a `/ingest` body may carry (anything else is rejected).
const INGEST_FIELDS: &[&str] = &["series"];

/// Decodes and validates a `POST /ingest` body — a batch of series to
/// append, every one exactly `series_len` points:
///
/// ```json
/// {"series": [[0.1, -0.2, ...], [1.3, 0.7, ...]]}
/// ```
///
/// Shape is enforced here (400); value-level validation (non-finite
/// points, position-ceiling overflow) is the ingest layer's job so the
/// endpoint and the CLI reject identically.
pub fn decode_ingest(body: &[u8], series_len: usize) -> Result<messi_series::Dataset, ProtoError> {
    let text = std::str::from_utf8(body).map_err(|_| err("body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(err("empty body; expected a JSON ingest object"));
    }
    let doc = Json::parse(text).map_err(|e| err(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(err("body must be a JSON object"));
    }
    for key in doc.keys() {
        if !INGEST_FIELDS.contains(&key) {
            return Err(err(format!(
                "unknown field `{key}` (expected one of: {})",
                INGEST_FIELDS.join(", ")
            )));
        }
    }
    let batch = doc
        .get("series")
        .ok_or_else(|| err("missing `series`"))?
        .as_arr()
        .ok_or_else(|| err("`series` must be an array of series"))?;
    if batch.is_empty() {
        return Err(err("`series` holds no series"));
    }
    let mut values = Vec::with_capacity(batch.len() * series_len);
    for (i, row) in batch.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| err(format!("`series[{i}]` must be an array of numbers")))?;
        if row.len() != series_len {
            return Err(err(format!(
                "`series[{i}]` has {} points, index expects {series_len}",
                row.len()
            )));
        }
        for (j, v) in row.iter().enumerate() {
            let x = v
                .as_f64()
                .ok_or_else(|| err(format!("`series[{i}][{j}]` is not a number")))?;
            values.push(x as f32);
        }
    }
    messi_series::Dataset::from_flat(values, series_len).map_err(|e| err(e.to_string()))
}

/// Encodes a successful ingest response.
pub fn encode_ingest_report(report: &crate::ingest::IngestReport) -> String {
    format!(
        "{{\"accepted\":{},\"total_series\":{},\"epoch\":{},\"republished\":{}}}",
        report.accepted, report.total_series, report.epoch, report.republished
    )
}

/// Encodes a successful query response: the answers plus the per-query
/// stats counters (times in microseconds).
pub fn encode_answer(spec: &QuerySpec, answers: &[QueryAnswer], stats: &QueryStats) -> String {
    let mut out = String::with_capacity(64 + answers.len() * 32);
    out.push_str("{\"answers\":[");
    for (i, a) in answers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"pos\":{},\"distance\":{:.6},\"dist_sq\":{:.6}}}",
            a.pos,
            a.distance(),
            a.dist_sq
        ));
    }
    out.push_str(&format!(
        "],\"objective\":\"{}\",\"stats\":{{\"time_us\":{},\"lb_distance_calcs\":{},\
         \"real_distance_calcs\":{},\"bsf_updates\":{}",
        objective_name(spec),
        stats.total_time.as_micros(),
        stats.lb_distance_calcs,
        stats.real_distance_calcs,
        stats.bsf_updates
    ));
    if let Some(reason) = stats.stop_reason {
        let reason = match reason {
            StopReason::HomeLeafOnly => "home_leaf_only",
            StopReason::Completed => "completed",
            StopReason::BudgetExhausted => "budget_exhausted",
        };
        out.push_str(&format!(",\"stop_reason\":\"{}\"", escape(reason)));
    }
    out.push_str("}}");
    out
}

fn objective_name(spec: &QuerySpec) -> &'static str {
    match spec.objective {
        Objective::Exact => "exact",
        Objective::Knn { .. } => "knn",
        Objective::Range { .. } => "range",
        Objective::Approx { .. } => "approx",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEN: usize = 8;

    fn body(fields: &str) -> Vec<u8> {
        let series: Vec<String> = (0..LEN).map(|i| format!("{}.5", i)).collect();
        format!("{{{fields}\"series\":[{}]}}", series.join(",")).into_bytes()
    }

    #[test]
    fn decodes_every_objective_and_metric() {
        let (spec, series) = decode_query(&body(""), LEN).unwrap();
        assert_eq!(spec, QuerySpec::exact());
        assert_eq!(series.len(), LEN);
        assert_eq!(series[2], 2.5);

        let (spec, _) = decode_query(&body("\"objective\":\"knn\",\"k\":3,"), LEN).unwrap();
        assert_eq!(spec.objective, Objective::Knn { k: 3 });

        let (spec, _) =
            decode_query(&body("\"objective\":\"range\",\"epsilon\":2.0,"), LEN).unwrap();
        assert_eq!(spec.objective, Objective::Range { epsilon_sq: 4.0 });

        let (spec, _) = decode_query(
            &body("\"objective\":\"approx\",\"epsilon\":0.1,\"delta\":0.5,"),
            LEN,
        )
        .unwrap();
        assert_eq!(
            spec.objective,
            Objective::Approx {
                epsilon: 0.1,
                delta: 0.5
            }
        );

        let (spec, _) = decode_query(&body("\"metric\":\"dtw\",\"window\":2,"), LEN).unwrap();
        assert_eq!(spec.metric, MetricSpec::Dtw(DtwParams { window: 2 }));
        let (spec, _) = decode_query(&body("\"metric\":\"dtw\","), LEN).unwrap();
        assert_eq!(
            spec.metric,
            MetricSpec::Dtw(DtwParams::paper_default(LEN)),
            "window defaults to the paper's 10%"
        );
    }

    #[test]
    fn rejects_contradictory_field_combinations() {
        // The same contradictions the CLI rejects with exit code 2.
        for (fields, needle) in [
            ("\"k\":3,", "not valid for objective `exact`"),
            ("\"objective\":\"exact\",\"epsilon\":1,", "not valid"),
            ("\"objective\":\"knn\",\"delta\":0.5,", "not valid"),
            ("\"objective\":\"knn\",\"epsilon\":1,", "not valid"),
            (
                "\"objective\":\"range\",\"epsilon\":1,\"k\":2,",
                "not valid",
            ),
            ("\"objective\":\"approx\",\"k\":2,", "not valid"),
            ("\"window\":4,", "only valid with `metric: \"dtw\"`"),
        ] {
            let e = decode_query(&body(fields), LEN).unwrap_err();
            assert!(e.0.contains(needle), "{fields} → {e}");
        }
    }

    #[test]
    fn rejects_malformed_bodies() {
        for (raw, needle) in [
            (b"".to_vec(), "empty body"),
            (b"not json".to_vec(), "invalid JSON"),
            (b"[1,2]".to_vec(), "must be a JSON object"),
            (b"{\"series\":[1,2]}".to_vec(), "points, index expects"),
            (body("\"typo_field\":1,"), "unknown field `typo_field`"),
            (body("\"objective\":\"fuzzy\","), "unknown objective"),
            (body("\"metric\":\"manhattan\","), "unknown metric"),
            (body("\"objective\":\"range\","), "needs `epsilon`"),
            (body("\"objective\":\"knn\",\"k\":0,"), "positive integer"),
            (body("\"objective\":\"knn\",\"k\":2.5,"), "positive integer"),
            (
                body("\"objective\":\"approx\",\"delta\":1.5,"),
                "within [0, 1]",
            ),
            (
                body("\"objective\":\"range\",\"epsilon\":-1,"),
                "non-negative",
            ),
            (body("\"metric\":\"dtw\",\"window\":0,"), "integer in 1.."),
            (
                b"{\"series\":[1,\"x\",3,4,5,6,7,8]}".to_vec(),
                "`series[1]` is not a number",
            ),
        ] {
            let e = decode_query(&raw, LEN).unwrap_err();
            assert!(
                e.0.contains(needle),
                "{:?} → {e}",
                String::from_utf8_lossy(&raw)
            );
        }
    }

    #[test]
    fn decodes_and_rejects_ingest_bodies() {
        let ds = decode_ingest(br#"{"series":[[1,2,3,4,5,6,7,8],[8,7,6,5,4,3,2,1]]}"#, LEN)
            .expect("well-formed batch");
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.series(1)[0], 8.0);

        for (raw, needle) in [
            (&b""[..], "empty body"),
            (br#"[1]"#, "must be a JSON object"),
            (br#"{"series":[]}"#, "holds no series"),
            (br#"{"series":[[1,2]]}"#, "points, index expects"),
            (br#"{"batch":[[1]]}"#, "unknown field `batch`"),
            (
                br#"{"series":[[1,2,3,4,5,6,7,"x"]]}"#,
                "`series[0][7]` is not a number",
            ),
            (
                br#"{"series":[1,2]}"#,
                "`series[0]` must be an array of numbers",
            ),
        ] {
            let e = decode_ingest(raw, LEN).unwrap_err();
            assert!(
                e.0.contains(needle),
                "{} → {e}",
                String::from_utf8_lossy(raw)
            );
        }

        let text = encode_ingest_report(&crate::ingest::IngestReport {
            accepted: 2,
            total_series: 102,
            epoch: 3,
            republished: true,
        });
        let doc = Json::parse(&text).expect("report is valid JSON");
        assert_eq!(doc.get("accepted").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("total_series").and_then(Json::as_f64), Some(102.0));
        assert_eq!(doc.get("republished"), Some(&Json::Bool(true)));
    }

    #[test]
    fn encodes_answers_as_valid_json() {
        let answers = [
            QueryAnswer {
                pos: 42,
                dist_sq: 4.0,
            },
            QueryAnswer {
                pos: 7,
                dist_sq: 9.0,
            },
        ];
        let stats = QueryStats {
            lb_distance_calcs: 10,
            real_distance_calcs: 5,
            stop_reason: Some(StopReason::Completed),
            ..Default::default()
        };
        let text = encode_answer(&QuerySpec::knn(2), &answers, &stats);
        let doc = Json::parse(&text).expect("response is valid JSON");
        let list = doc.get("answers").and_then(Json::as_arr).unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].get("pos").and_then(Json::as_f64), Some(42.0));
        assert_eq!(list[0].get("distance").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("objective").and_then(Json::as_str), Some("knn"));
        let s = doc.get("stats").unwrap();
        assert_eq!(
            s.get("lb_distance_calcs").and_then(Json::as_f64),
            Some(10.0)
        );
        assert_eq!(
            s.get("stop_reason").and_then(Json::as_str),
            Some("completed")
        );
    }
}
