//! The index service daemon: a long-running network frontend over one
//! live [`DeltaIndex`] — a prewarmed [`crate::shard::ShardedExecutor`]
//! behind an epoch seam that absorbs `/ingest` appends without blocking
//! queries (a single-index deployment is just the one-shard case,
//! [`crate::shard::ShardedIndex::from_single`]).
//!
//! One acceptor thread plus a bounded pool of connection handlers (both
//! running on a dedicated [`messi_sync::WorkerPool`], handed connections
//! through a [`messi_sync::BoundedChannel`]) serve four endpoints:
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `POST /query` | decode a JSON query body into a [`crate::QuerySpec`], answer from the warm context pool |
//! | `POST /ingest` | decode a JSON batch of series, append it to the live index (durable when a delta log is attached) |
//! | `GET /healthz` | `200 ok` only after the index is loaded and the pool prewarmed, `503` before |
//! | `GET /metrics` | Prometheus text exposition of the executor + frontend + ingest counters, including per-shard `messi_shard_*{shard="i"}` families |
//!
//! Queries pass a bounded [`Admission`] gate: when `admission` permits
//! are in flight, further queries get `503` + `Retry-After` instead of
//! queueing unboundedly. Handlers answer queries *on their own thread*
//! (`query_workers = 1` runs the engine inline, no pool dispatch), so
//! concurrency comes from the handler pool and stays bounded end to end.
//!
//! Shutdown is cooperative: when the `shutdown` flag flips (SIGTERM /
//! Ctrl-C via [`shutdown_flag`], or any writer in-process), the acceptor
//! stops, in-flight requests finish and are answered, idle keep-alive
//! connections are closed at their next read-timeout tick, and
//! [`IndexServer::serve`] returns a [`ServeSummary`] for the final stats
//! line.

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use messi_sync::{BoundedChannel, WorkerPool};

use super::admission::Admission;
use super::http::{self, Request, Response};
use super::metrics::{encode_prometheus, ServerMetrics};
use super::proto;
use crate::config::QueryConfig;
use crate::ingest::{DeltaIndex, IngestError};
use crate::stats::QueryStatsAggregate;
use messi_series::distance::Kernel;

/// How long an idle keep-alive connection may sit between requests
/// before the handler re-checks the shutdown flag. Bounds drain latency.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Tuning knobs of the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handler threads (each answers one request at a time).
    pub threads: usize,
    /// Admission-gate capacity for `/query` (`0` = drain mode: shed
    /// every query while health/metrics stay up).
    pub admission: usize,
    /// Search workers *per query* (default 1: the engine runs inline on
    /// the handler thread and concurrency comes from `threads`).
    pub query_workers: usize,
    /// Collect the Fig. 13 per-phase breakdown for every query so
    /// `/metrics` exports per-phase time (small timing overhead).
    pub collect_breakdown: bool,
    /// Distance-kernel dispatch for every served query (`Auto` resolves
    /// to SIMD when the CPU has AVX2+FMA). Answers are identical either
    /// way — the scalar twins are bit-identical — so this is an
    /// operational/ablation knob, not a correctness one.
    pub kernel: Kernel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = crate::config::available_cores();
        Self {
            threads: cores,
            admission: 2 * cores,
            query_workers: 1,
            collect_breakdown: false,
            kernel: Kernel::Auto,
        }
    }
}

/// What the daemon did over its lifetime, for the final stats line.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Queries answered successfully.
    pub served: u64,
    /// Queries shed at the admission gate.
    pub shed: u64,
    /// Queries that failed inside the engine.
    pub failures: u64,
    /// The folded per-query statistics.
    pub aggregate: QueryStatsAggregate,
}

/// A bound-but-not-yet-serving daemon (separate from [`IndexServer::serve`]
/// so callers — tests, the CLI — can learn the ephemeral port first).
#[derive(Debug)]
pub struct IndexServer {
    listener: TcpListener,
    config: ServeConfig,
}

impl IndexServer {
    /// Binds the listening socket.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` flips to `true`, then drains in-flight
    /// requests and returns the lifetime summary.
    ///
    /// Readiness (`/healthz` → 200) is reached after the executor pool
    /// has been prewarmed against every shard of the live index, so a
    /// load balancer polling health never routes to a cold daemon. The
    /// acceptor's idle ticks drive [`DeltaIndex::maybe_republish`], so
    /// overlay flattening happens off the query path on the ingest
    /// cadence trigger.
    pub fn serve(self, live: &DeltaIndex, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let threads = self.config.threads.max(1);
        let state = ServeState::new(live, &self.config);
        state.prewarm();

        self.listener.set_nonblocking(true)?;
        let conns: BoundedChannel<TcpStream> = BoundedChannel::new(2 * threads);
        // A dedicated pool: monopolizing the process-global one for the
        // daemon's lifetime would starve every other caller.
        let pool = WorkerPool::new(threads + 1);
        let state_ref = &state;
        let conns_ref = &conns;
        let listener_ref = &self.listener;
        pool.run(threads + 1, &|pid| {
            if pid == 0 {
                accept_loop(listener_ref, conns_ref, live, shutdown);
                conns_ref.close(); // acceptor done → handlers drain + exit
            } else {
                while let Some(stream) = conns_ref.pop() {
                    handle_connection(state_ref, stream, shutdown);
                }
            }
        });
        Ok(state.summary())
    }
}

/// Everything a request handler needs, shared across handler threads.
struct ServeState<'a> {
    live: &'a DeltaIndex,
    series_len: usize,
    query_config: QueryConfig,
    metrics: ServerMetrics,
    admission: Admission,
    ready: AtomicBool,
}

impl<'a> ServeState<'a> {
    fn new(live: &'a DeltaIndex, config: &ServeConfig) -> Self {
        let query_workers = config.query_workers.max(1);
        Self {
            live,
            series_len: live.series_len(),
            query_config: QueryConfig {
                num_workers: query_workers,
                num_queues: query_workers,
                collect_breakdown: config.collect_breakdown,
                kernel: config.kernel,
                ..QueryConfig::default()
            },
            metrics: ServerMetrics::new(live.index().num_shards()),
            admission: Admission::new(config.admission),
            ready: AtomicBool::new(false),
        }
    }

    /// Warms every pooled context of every shard so the first real query
    /// of every handler thread runs allocation-free, then flips
    /// readiness. The live index remembers the configuration and
    /// re-warms every republished epoch the same way before the swap.
    fn prewarm(&self) {
        self.live.prewarm(&self.query_config);
        self.ready.store(true, Ordering::Release);
    }

    fn summary(&self) -> ServeSummary {
        let aggregate = self.metrics.aggregate();
        ServeSummary {
            served: aggregate.queries,
            shed: self.admission.sheds(),
            failures: self.metrics.query_failures.get(),
            aggregate,
        }
    }
}

/// Accepts connections until shutdown, handing them to the handler pool.
/// Idle ticks double as the republish heartbeat: an aged epoch with a
/// pending overlay is flattened here, off every request path.
fn accept_loop(
    listener: &TcpListener,
    conns: &BoundedChannel<TcpStream>,
    live: &DeltaIndex,
    shutdown: &AtomicBool,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(mut stream) = conns.try_push(stream) {
                    // Handler pool and hand-off buffer both full: shed at
                    // the door (best effort — the client may already be
                    // gone) rather than queue unboundedly.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = Response::error(503, "server saturated")
                        .with_retry_after(1)
                        .write_to(&mut stream, true);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Err(e) = live.maybe_republish() {
                    // Republish failing is not fatal to serving — the
                    // overlay keeps answering — but it must be loud.
                    eprintln!("messi serve: republish failed: {e}");
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off and
                // keep the daemon alive.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Serves one (possibly keep-alive) connection to completion.
fn handle_connection(state: &ServeState<'_>, stream: TcpStream, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(IDLE_TICK)).is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        // Idle tick: wait for the next request to start (or the peer to
        // leave) without committing to a full parse, so drain latency is
        // bounded by IDLE_TICK even with idle keep-alive clients parked.
        match reader.fill_buf() {
            Ok([]) => break, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
        match http::read_request(&mut reader) {
            Ok(Some(req)) => {
                // Force close while draining so the client re-connects
                // elsewhere instead of parking on a dying daemon.
                let close = req.close || shutdown.load(Ordering::Relaxed);
                let response = route(state, &req);
                state.metrics.http_requests.inc();
                if (400..500).contains(&response.status) {
                    state.metrics.http_client_errors.inc();
                }
                if response.write_to(&mut write_half, close).is_err() || close {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                if let Some(status) = e.status() {
                    state.metrics.http_requests.inc();
                    state.metrics.http_client_errors.inc();
                    let _ = Response::error(status, &e.detail()).write_to(&mut write_half, true);
                }
                break; // framing is lost either way
            }
        }
    }
}

/// Maps one request to one response. Pure with respect to the socket, so
/// the whole routing table is unit-testable without I/O.
fn route(state: &ServeState<'_>, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            if state.ready.load(Ordering::Acquire) {
                Response::text(200, "ok\n")
            } else {
                Response::text(503, "warming up\n").with_retry_after(1)
            }
        }
        ("GET", "/metrics") => Response::text(
            200,
            encode_prometheus(
                &state.metrics,
                &state.admission,
                state.ready.load(Ordering::Acquire),
                &state.live.stats(),
            ),
        ),
        ("POST", "/query") => answer_query(state, req),
        ("POST", "/ingest") => answer_ingest(state, req),
        ("GET" | "POST", "/healthz" | "/metrics" | "/query" | "/ingest") => {
            Response::error(405, &format!("{} not allowed on {path}", req.method))
        }
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

/// The `/query` endpoint: admission gate → decode → prewarmed executor.
fn answer_query(state: &ServeState<'_>, req: &Request) -> Response {
    if !state.ready.load(Ordering::Acquire) {
        return Response::error(503, "index not ready").with_retry_after(1);
    }
    // Shed before parsing: under overload the cheap path must win.
    let Some(_permit) = state.admission.try_acquire() else {
        return Response::error(503, "overloaded: admission gate full").with_retry_after(1);
    };
    let (spec, series) = match proto::decode_query(&req.body, state.series_len) {
        Ok(decoded) => decoded,
        Err(e) => return Response::error(400, &e.0),
    };
    // A panicking query (engine invariant violation) must not take the
    // daemon down with it; the checked-out context is sacrificed and the
    // pool rebuilds a fresh one on the next checkout.
    match catch_unwind(AssertUnwindSafe(|| {
        state.live.query_traced(&series, &spec, &state.query_config)
    })) {
        Ok((answers, stats, alloc_delta, per_shard)) => {
            state.metrics.record_query(&stats, alloc_delta, &per_shard);
            Response::json(200, proto::encode_answer(&spec, &answers, &stats))
        }
        Err(_) => {
            state.metrics.query_failures.inc();
            Response::error(500, "query execution failed")
        }
    }
}

/// The `/ingest` endpoint: decode a batch → [`DeltaIndex::insert_batch`].
///
/// Not admission-gated: ingest is serialized by the writer lock inside
/// the live index, so its concurrency is already bounded at one, and a
/// full query gate must not be able to starve writers.
fn answer_ingest(state: &ServeState<'_>, req: &Request) -> Response {
    if !state.ready.load(Ordering::Acquire) {
        return Response::error(503, "index not ready").with_retry_after(1);
    }
    let batch = match proto::decode_ingest(&req.body, state.series_len) {
        Ok(batch) => batch,
        Err(e) => return Response::error(400, &e.0),
    };
    match state.live.insert_batch(&batch) {
        Ok(report) => Response::json(200, proto::encode_ingest_report(&report)),
        Err(e @ IngestError::PositionOverflow { .. }) => Response::error(409, &e.to_string()),
        Err(
            e @ (IngestError::ShapeMismatch { .. }
            | IngestError::NonFinite { .. }
            | IngestError::EmptyBatch),
        ) => Response::error(400, &e.to_string()),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Returns the process-wide shutdown flag, wiring SIGINT and SIGTERM to
/// it on Unix (no-op installation elsewhere — the flag can still be
/// flipped programmatically). Idempotent.
pub fn shutdown_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is async-signal-safe (single atomic store)
        // and matches the C `void (*)(int)` handler ABI.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::ingest::IngestOptions;
    use crate::shard::ShardedIndex;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn test_live() -> DeltaIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 11));
        let index = ShardedIndex::build(data, 2, &IndexConfig::for_tests()).0;
        DeltaIndex::new(index, IngestOptions::default())
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            body: Vec::new(),
            close: false,
        }
    }

    fn post(path: &str, body: String) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            body: body.into_bytes(),
            close: false,
        }
    }

    fn post_query(body: String) -> Request {
        post("/query", body)
    }

    fn series_json(series: &[f32]) -> String {
        let vals: Vec<String> = series.iter().map(|x| format!("{x:?}")).collect();
        format!("[{}]", vals.join(","))
    }

    fn query_body(live: &DeltaIndex, fields: &str) -> String {
        let json = series_json(live.index().dataset().series(0));
        format!("{{{fields}\"series\":{json}}}")
    }

    #[test]
    fn healthz_gates_on_readiness() {
        let live = test_live();
        let state = ServeState::new(&live, &ServeConfig::default());
        let resp = route(&state, &get("/healthz"));
        assert_eq!(resp.status, 503, "not ready before prewarm");
        assert_eq!(resp.retry_after, Some(1));
        let resp = route(&state, &post_query(query_body(&live, "")));
        assert_eq!(resp.status, 503, "queries are also gated on readiness");
        let resp = route(&state, &post("/ingest", "{}".into()));
        assert_eq!(resp.status, 503, "ingest is also gated on readiness");

        state.prewarm();
        let resp = route(&state, &get("/healthz"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }

    #[test]
    fn query_route_answers_like_the_index() {
        let live = test_live();
        let state = ServeState::new(&live, &ServeConfig::default());
        state.prewarm();

        let resp = route(&state, &post_query(query_body(&live, "")));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc =
            super::super::json::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let answers = doc.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers.len(), 1);
        // Query = series 0 of the dataset, so the 1-NN is series 0 itself.
        assert_eq!(answers[0].get("pos").unwrap().as_f64(), Some(0.0));
        assert_eq!(state.metrics.aggregate().queries, 1);

        let resp = route(
            &state,
            &post_query(query_body(&live, "\"objective\":\"knn\",\"k\":4,")),
        );
        let doc =
            super::super::json::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("answers").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn ingest_route_appends_and_serves_the_new_series() {
        let live = test_live();
        let state = ServeState::new(&live, &ServeConfig::default());
        state.prewarm();

        // A fresh series far from the random walks: ingest it, then an
        // exact query for it must come back at the appended position.
        let fresh: Vec<f32> = (0..live.series_len())
            .map(|i| (i as f32).sin() + 40.0)
            .collect();
        let body = format!("{{\"series\":[{}]}}", series_json(&fresh));
        let resp = route(&state, &post("/ingest", body));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc =
            super::super::json::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("accepted").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("total_series").unwrap().as_f64(), Some(301.0));

        let query = format!("{{\"series\":{}}}", series_json(&fresh));
        let resp = route(&state, &post_query(query));
        let doc =
            super::super::json::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let answers = doc.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers[0].get("pos").unwrap().as_f64(), Some(300.0));
        assert_eq!(answers[0].get("distance").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn ingest_route_maps_typed_errors_to_statuses() {
        let live = test_live();
        let state = ServeState::new(&live, &ServeConfig::default());
        state.prewarm();
        assert_eq!(route(&state, &get("/ingest")).status, 405);
        assert_eq!(
            route(&state, &post("/ingest", "not json".into())).status,
            400,
            "malformed body"
        );
        assert_eq!(
            route(&state, &post("/ingest", "{\"series\":[[1.0,2.0]]}".into())).status,
            400,
            "wrong series_len"
        );
        let nan = format!(
            "{{\"series\":[{}]}}",
            series_json(&vec![f32::NAN; live.series_len()])
        );
        // NaN never survives the JSON number grammar, so it is a decode
        // error (400) before the index even sees the batch.
        assert_eq!(route(&state, &post("/ingest", nan)).status, 400);
    }

    #[test]
    fn router_maps_errors_to_statuses() {
        let live = test_live();
        let state = ServeState::new(&live, &ServeConfig::default());
        state.prewarm();
        assert_eq!(route(&state, &get("/nope")).status, 404);
        assert_eq!(route(&state, &get("/query")).status, 405);
        let mut req = get("/healthz");
        req.method = "POST".into();
        assert_eq!(route(&state, &req).status, 405);
        assert_eq!(
            route(&state, &post_query("not json".into())).status,
            400,
            "malformed body"
        );
        assert_eq!(
            route(&state, &post_query(query_body(&live, "\"k\":3,"))).status,
            400,
            "contradictory fields"
        );
    }

    #[test]
    fn drain_mode_sheds_queries_with_retry_hint_but_serves_health() {
        let live = test_live();
        let state = ServeState::new(
            &live,
            &ServeConfig {
                admission: 0,
                ..ServeConfig::default()
            },
        );
        state.prewarm();
        let resp = route(&state, &post_query(query_body(&live, "")));
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
        assert!(String::from_utf8_lossy(&resp.body).contains("overloaded"));
        assert_eq!(state.admission.sheds(), 1);
        assert_eq!(route(&state, &get("/healthz")).status, 200);
        let metrics = route(&state, &get("/metrics"));
        assert!(String::from_utf8_lossy(&metrics.body).contains("messi_queries_shed_total 1"));
    }

    #[test]
    fn metrics_expose_query_and_ingest_counters() {
        let live = test_live();
        let state = ServeState::new(&live, &ServeConfig::default());
        state.prewarm();
        let _ = route(&state, &post_query(query_body(&live, "")));
        let fresh = vec![0.25_f32; live.series_len()];
        let body = format!("{{\"series\":[{}]}}", series_json(&fresh));
        assert_eq!(route(&state, &post("/ingest", body)).status, 200);
        let text = route(&state, &get("/metrics"));
        let body = String::from_utf8(text.body).unwrap();
        assert!(body.contains("messi_queries_total 1"), "{body}");
        assert!(body.contains("messi_ready 1"), "{body}");
        assert!(
            body.contains("messi_query_real_distance_calcs_total"),
            "{body}"
        );
        assert!(body.contains("messi_ingest_batches_total 1"), "{body}");
        assert!(body.contains("messi_ingest_delta_series 1"), "{body}");
        assert!(body.contains("messi_ingest_live_series 301"), "{body}");
    }

    #[test]
    fn summary_reflects_served_and_shed() {
        let live = test_live();
        let state = ServeState::new(
            &live,
            &ServeConfig {
                admission: 0,
                ..ServeConfig::default()
            },
        );
        state.prewarm();
        let _ = route(&state, &post_query(query_body(&live, "")));
        let summary = state.summary();
        assert_eq!(summary.served, 0);
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.failures, 0);
    }
}
