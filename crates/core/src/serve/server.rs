//! The index service daemon: a long-running network frontend over one
//! prewarmed [`ShardedExecutor`] (a single-index deployment is just the
//! one-shard case, [`crate::shard::ShardedIndex::from_single`]).
//!
//! One acceptor thread plus a bounded pool of connection handlers (both
//! running on a dedicated [`messi_sync::WorkerPool`], handed connections
//! through a [`messi_sync::BoundedChannel`]) serve three endpoints:
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `POST /query` | decode a JSON query body into a [`QuerySpec`], answer from the warm context pool |
//! | `GET /healthz` | `200 ok` only after the index is loaded and the pool prewarmed, `503` before |
//! | `GET /metrics` | Prometheus text exposition of the executor + frontend counters, including per-shard `messi_shard_*{shard="i"}` families |
//!
//! Queries pass a bounded [`Admission`] gate: when `admission` permits
//! are in flight, further queries get `503` + `Retry-After` instead of
//! queueing unboundedly. Handlers answer queries *on their own thread*
//! (`query_workers = 1` runs the engine inline, no pool dispatch), so
//! concurrency comes from the handler pool and stays bounded end to end.
//!
//! Shutdown is cooperative: when the `shutdown` flag flips (SIGTERM /
//! Ctrl-C via [`shutdown_flag`], or any writer in-process), the acceptor
//! stops, in-flight requests finish and are answered, idle keep-alive
//! connections are closed at their next read-timeout tick, and
//! [`IndexServer::serve`] returns a [`ServeSummary`] for the final stats
//! line.

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use messi_sync::{BoundedChannel, WorkerPool};

use super::admission::Admission;
use super::http::{self, Request, Response};
use super::metrics::{encode_prometheus, ServerMetrics};
use super::proto;
use crate::config::QueryConfig;
use crate::exec::QuerySpec;
use crate::shard::{ShardedExecutor, ShardedIndex};
use crate::stats::QueryStatsAggregate;
use messi_series::distance::Kernel;

/// How long an idle keep-alive connection may sit between requests
/// before the handler re-checks the shutdown flag. Bounds drain latency.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Tuning knobs of the daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handler threads (each answers one request at a time).
    pub threads: usize,
    /// Admission-gate capacity for `/query` (`0` = drain mode: shed
    /// every query while health/metrics stay up).
    pub admission: usize,
    /// Search workers *per query* (default 1: the engine runs inline on
    /// the handler thread and concurrency comes from `threads`).
    pub query_workers: usize,
    /// Collect the Fig. 13 per-phase breakdown for every query so
    /// `/metrics` exports per-phase time (small timing overhead).
    pub collect_breakdown: bool,
    /// Distance-kernel dispatch for every served query (`Auto` resolves
    /// to SIMD when the CPU has AVX2+FMA). Answers are identical either
    /// way — the scalar twins are bit-identical — so this is an
    /// operational/ablation knob, not a correctness one.
    pub kernel: Kernel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = crate::config::available_cores();
        Self {
            threads: cores,
            admission: 2 * cores,
            query_workers: 1,
            collect_breakdown: false,
            kernel: Kernel::Auto,
        }
    }
}

/// What the daemon did over its lifetime, for the final stats line.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Queries answered successfully.
    pub served: u64,
    /// Queries shed at the admission gate.
    pub shed: u64,
    /// Queries that failed inside the engine.
    pub failures: u64,
    /// The folded per-query statistics.
    pub aggregate: QueryStatsAggregate,
}

/// A bound-but-not-yet-serving daemon (separate from [`IndexServer::serve`]
/// so callers — tests, the CLI — can learn the ephemeral port first).
#[derive(Debug)]
pub struct IndexServer {
    listener: TcpListener,
    config: ServeConfig,
}

impl IndexServer {
    /// Binds the listening socket.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` flips to `true`, then drains in-flight
    /// requests and returns the lifetime summary.
    ///
    /// Readiness (`/healthz` → 200) is reached after the executor pool
    /// has been prewarmed against every shard of `index`, so a load
    /// balancer polling health never routes to a cold daemon.
    pub fn serve(self, index: &ShardedIndex, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let threads = self.config.threads.max(1);
        let state = ServeState::new(index, &self.config);
        state.prewarm(index);

        self.listener.set_nonblocking(true)?;
        let conns: BoundedChannel<TcpStream> = BoundedChannel::new(2 * threads);
        // A dedicated pool: monopolizing the process-global one for the
        // daemon's lifetime would starve every other caller.
        let pool = WorkerPool::new(threads + 1);
        let state_ref = &state;
        let conns_ref = &conns;
        let listener_ref = &self.listener;
        pool.run(threads + 1, &|pid| {
            if pid == 0 {
                accept_loop(listener_ref, conns_ref, shutdown);
                conns_ref.close(); // acceptor done → handlers drain + exit
            } else {
                while let Some(stream) = conns_ref.pop() {
                    handle_connection(state_ref, stream, shutdown);
                }
            }
        });
        Ok(state.summary())
    }
}

/// Everything a request handler needs, shared across handler threads.
struct ServeState<'a> {
    executor: ShardedExecutor<'a>,
    series_len: usize,
    query_config: QueryConfig,
    metrics: ServerMetrics,
    admission: Admission,
    ready: AtomicBool,
}

impl<'a> ServeState<'a> {
    fn new(index: &'a ShardedIndex, config: &ServeConfig) -> Self {
        let query_workers = config.query_workers.max(1);
        Self {
            executor: ShardedExecutor::with_capacity(index, config.threads.max(1)),
            series_len: index.dataset().series_len(),
            query_config: QueryConfig {
                num_workers: query_workers,
                num_queues: query_workers,
                collect_breakdown: config.collect_breakdown,
                kernel: config.kernel,
                ..QueryConfig::default()
            },
            metrics: ServerMetrics::new(index.num_shards()),
            admission: Admission::new(config.admission),
            ready: AtomicBool::new(false),
        }
    }

    /// Warms every pooled context of every shard so the first real query
    /// of every handler thread runs allocation-free, then flips
    /// readiness.
    fn prewarm(&self, index: &ShardedIndex) {
        let warm_query: Vec<f32> = if index.num_series() > 0 {
            index.dataset().series(0).to_vec()
        } else {
            vec![0.0; self.series_len]
        };
        self.executor
            .prewarm(&warm_query, &QuerySpec::exact(), &self.query_config);
        self.ready.store(true, Ordering::Release);
    }

    fn summary(&self) -> ServeSummary {
        let aggregate = self.metrics.aggregate();
        ServeSummary {
            served: aggregate.queries,
            shed: self.admission.sheds(),
            failures: self.metrics.query_failures.get(),
            aggregate,
        }
    }
}

/// Accepts connections until shutdown, handing them to the handler pool.
fn accept_loop(listener: &TcpListener, conns: &BoundedChannel<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(mut stream) = conns.try_push(stream) {
                    // Handler pool and hand-off buffer both full: shed at
                    // the door (best effort — the client may already be
                    // gone) rather than queue unboundedly.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = Response::error(503, "server saturated")
                        .with_retry_after(1)
                        .write_to(&mut stream, true);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off and
                // keep the daemon alive.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Serves one (possibly keep-alive) connection to completion.
fn handle_connection(state: &ServeState<'_>, stream: TcpStream, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(IDLE_TICK)).is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        // Idle tick: wait for the next request to start (or the peer to
        // leave) without committing to a full parse, so drain latency is
        // bounded by IDLE_TICK even with idle keep-alive clients parked.
        match reader.fill_buf() {
            Ok([]) => break, // peer closed
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
        match http::read_request(&mut reader) {
            Ok(Some(req)) => {
                // Force close while draining so the client re-connects
                // elsewhere instead of parking on a dying daemon.
                let close = req.close || shutdown.load(Ordering::Relaxed);
                let response = route(state, &req);
                state.metrics.http_requests.inc();
                if (400..500).contains(&response.status) {
                    state.metrics.http_client_errors.inc();
                }
                if response.write_to(&mut write_half, close).is_err() || close {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                if let Some(status) = e.status() {
                    state.metrics.http_requests.inc();
                    state.metrics.http_client_errors.inc();
                    let _ = Response::error(status, &e.detail()).write_to(&mut write_half, true);
                }
                break; // framing is lost either way
            }
        }
    }
}

/// Maps one request to one response. Pure with respect to the socket, so
/// the whole routing table is unit-testable without I/O.
fn route(state: &ServeState<'_>, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            if state.ready.load(Ordering::Acquire) {
                Response::text(200, "ok\n")
            } else {
                Response::text(503, "warming up\n").with_retry_after(1)
            }
        }
        ("GET", "/metrics") => Response::text(
            200,
            encode_prometheus(
                &state.metrics,
                &state.admission,
                state.ready.load(Ordering::Acquire),
            ),
        ),
        ("POST", "/query") => answer_query(state, req),
        ("GET" | "POST", "/healthz" | "/metrics" | "/query") => {
            Response::error(405, &format!("{} not allowed on {path}", req.method))
        }
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

/// The `/query` endpoint: admission gate → decode → prewarmed executor.
fn answer_query(state: &ServeState<'_>, req: &Request) -> Response {
    if !state.ready.load(Ordering::Acquire) {
        return Response::error(503, "index not ready").with_retry_after(1);
    }
    // Shed before parsing: under overload the cheap path must win.
    let Some(_permit) = state.admission.try_acquire() else {
        return Response::error(503, "overloaded: admission gate full").with_retry_after(1);
    };
    let (spec, series) = match proto::decode_query(&req.body, state.series_len) {
        Ok(decoded) => decoded,
        Err(e) => return Response::error(400, &e.0),
    };
    // A panicking query (engine invariant violation) must not take the
    // daemon down with it; the checked-out context is sacrificed and the
    // pool rebuilds a fresh one on the next checkout.
    match catch_unwind(AssertUnwindSafe(|| {
        state
            .executor
            .run_one_traced(&series, &spec, &state.query_config)
    })) {
        Ok((answers, stats, alloc_delta, per_shard)) => {
            state.metrics.record_query(&stats, alloc_delta, &per_shard);
            Response::json(200, proto::encode_answer(&spec, &answers, &stats))
        }
        Err(_) => {
            state.metrics.query_failures.inc();
            Response::error(500, "query execution failed")
        }
    }
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Returns the process-wide shutdown flag, wiring SIGINT and SIGTERM to
/// it on Unix (no-op installation elsewhere — the flag can still be
/// flipped programmatically). Idempotent.
pub fn shutdown_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is async-signal-safe (single atomic store)
        // and matches the C `void (*)(int)` handler ABI.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    fn test_index() -> ShardedIndex {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 11));
        ShardedIndex::build(data, 2, &IndexConfig::for_tests()).0
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            body: Vec::new(),
            close: false,
        }
    }

    fn post_query(body: String) -> Request {
        Request {
            method: "POST".into(),
            path: "/query".into(),
            body: body.into_bytes(),
            close: false,
        }
    }

    fn query_body(index: &ShardedIndex, fields: &str) -> String {
        let series: Vec<String> = index
            .dataset()
            .series(0)
            .iter()
            .map(|x| format!("{x}"))
            .collect();
        format!("{{{fields}\"series\":[{}]}}", series.join(","))
    }

    #[test]
    fn healthz_gates_on_readiness() {
        let index = test_index();
        let state = ServeState::new(&index, &ServeConfig::default());
        let resp = route(&state, &get("/healthz"));
        assert_eq!(resp.status, 503, "not ready before prewarm");
        assert_eq!(resp.retry_after, Some(1));
        let resp = route(&state, &post_query(query_body(&index, "")));
        assert_eq!(resp.status, 503, "queries are also gated on readiness");

        state.prewarm(&index);
        let resp = route(&state, &get("/healthz"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }

    #[test]
    fn query_route_answers_like_the_index() {
        let index = test_index();
        let state = ServeState::new(&index, &ServeConfig::default());
        state.prewarm(&index);

        let resp = route(&state, &post_query(query_body(&index, "")));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc =
            super::super::json::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let answers = doc.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers.len(), 1);
        // Query = series 0 of the dataset, so the 1-NN is series 0 itself.
        assert_eq!(answers[0].get("pos").unwrap().as_f64(), Some(0.0));
        assert_eq!(state.metrics.aggregate().queries, 1);

        let resp = route(
            &state,
            &post_query(query_body(&index, "\"objective\":\"knn\",\"k\":4,")),
        );
        let doc =
            super::super::json::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("answers").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn router_maps_errors_to_statuses() {
        let index = test_index();
        let state = ServeState::new(&index, &ServeConfig::default());
        state.prewarm(&index);
        assert_eq!(route(&state, &get("/nope")).status, 404);
        assert_eq!(route(&state, &get("/query")).status, 405);
        let mut req = get("/healthz");
        req.method = "POST".into();
        assert_eq!(route(&state, &req).status, 405);
        assert_eq!(
            route(&state, &post_query("not json".into())).status,
            400,
            "malformed body"
        );
        assert_eq!(
            route(&state, &post_query(query_body(&index, "\"k\":3,"))).status,
            400,
            "contradictory fields"
        );
    }

    #[test]
    fn drain_mode_sheds_queries_with_retry_hint_but_serves_health() {
        let index = test_index();
        let state = ServeState::new(
            &index,
            &ServeConfig {
                admission: 0,
                ..ServeConfig::default()
            },
        );
        state.prewarm(&index);
        let resp = route(&state, &post_query(query_body(&index, "")));
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
        assert!(String::from_utf8_lossy(&resp.body).contains("overloaded"));
        assert_eq!(state.admission.sheds(), 1);
        assert_eq!(route(&state, &get("/healthz")).status, 200);
        let metrics = route(&state, &get("/metrics"));
        assert!(String::from_utf8_lossy(&metrics.body).contains("messi_queries_shed_total 1"));
    }

    #[test]
    fn metrics_expose_query_counters() {
        let index = test_index();
        let state = ServeState::new(&index, &ServeConfig::default());
        state.prewarm(&index);
        let _ = route(&state, &post_query(query_body(&index, "")));
        let text = route(&state, &get("/metrics"));
        let body = String::from_utf8(text.body).unwrap();
        assert!(body.contains("messi_queries_total 1"), "{body}");
        assert!(body.contains("messi_ready 1"), "{body}");
        assert!(
            body.contains("messi_query_real_distance_calcs_total"),
            "{body}"
        );
    }

    #[test]
    fn summary_reflects_served_and_shed() {
        let index = test_index();
        let state = ServeState::new(
            &index,
            &ServeConfig {
                admission: 0,
                ..ServeConfig::default()
            },
        );
        state.prewarm(&index);
        let _ = route(&state, &post_query(query_body(&index, "")));
        let summary = state.summary();
        assert_eq!(summary.served, 0);
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.failures, 0);
    }
}
