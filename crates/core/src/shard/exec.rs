//! The [`ShardedExecutor`]: scatter-gather query answering over a
//! [`ShardedIndex`].

use super::ShardedIndex;
use crate::config::QueryConfig;
use crate::engine::{QueryContext, ShardSlot, SharedBound};
use crate::exact::QueryAnswer;
use crate::exec::{MetricSpec, Objective, QuerySpec, Schedule};
use crate::index::MessiIndex;
use crate::knn::KnnSet;
use crate::stats::{QueryStats, QueryStatsAggregate, StopReason};
use messi_series::Dataset;
use messi_sync::{Dispenser, SlotPool, WorkerPool};
use parking_lot::Mutex;
use std::time::Instant;

/// What one shard hands back from a scatter: its local answers, its
/// [`QueryStats`], and the context allocation-event delta.
type ShardReturn = (Vec<QueryAnswer>, QueryStats, u64);

/// A pooled scatter-gather frontend over one [`ShardedIndex`]: the
/// sharded counterpart of [`crate::exec::QueryExecutor`], answering the
/// full [`QuerySpec`] matrix under both [`Schedule`]s.
///
/// Per query, the executor fans out to every shard's engine and merges:
///
/// * Under [`Schedule::IntraQuery`] (and [`ShardedExecutor::run_one`])
///   the shards run *concurrently*, splitting `config.num_workers`
///   between them; 1-NN objectives share one atomic cross-shard BSF, so
///   whichever shard tightens the bound first prunes the others in
///   flight.
/// * Under [`Schedule::InterQuery`] each batch worker owns whole
///   queries and walks the shards *sequentially* (one engine worker per
///   shard); the shared BSF then makes shard `i`'s answer prune shards
///   `i+1..` almost entirely — the cross-shard pruning throughput win.
///
/// k-NN scatters over one shared `KnnSet` keyed by global positions
/// (the k-th-best bound is automatically collection-global); range
/// search shares nothing (the bound is the fixed ε²) and concatenates.
/// Per-shard [`QueryStats`] are summed through the same counters the
/// single-index path reports, so batch aggregation flows through
/// [`QueryStatsAggregate`] unchanged.
///
/// With one shard the executor delegates straight to the single-index
/// adapters (no shared bound, full worker complement) — byte-identical
/// to [`crate::exec::QueryExecutor`].
#[derive(Debug)]
pub struct ShardedExecutor<'a> {
    index: &'a ShardedIndex,
    /// One warm-context pool per shard: contexts are sized by the shard
    /// they serve (queue sets, mindist tables), so they park next to it.
    contexts: Vec<SlotPool<QueryContext<'a>>>,
}

impl<'a> ShardedExecutor<'a> {
    /// Creates an executor whose per-shard context pools match the
    /// process worker pool (2 × cores each).
    pub fn new(index: &'a ShardedIndex) -> Self {
        Self::with_capacity(index, 2 * crate::config::available_cores())
    }

    /// Creates an executor holding at most `capacity` warm contexts per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(index: &'a ShardedIndex, capacity: usize) -> Self {
        Self {
            index,
            contexts: (0..index.num_shards())
                .map(|_| SlotPool::new(capacity))
                .collect(),
        }
    }

    /// The sharded index this executor serves.
    pub fn index(&self) -> &'a ShardedIndex {
        self.index
    }

    /// Number of currently parked warm contexts across all shard pools.
    pub fn warm_contexts(&self) -> usize {
        self.contexts.iter().map(SlotPool::parked).sum()
    }

    /// Answers one query with a concurrent shard scatter: exact 1-NN
    /// and approximate return exactly one answer; k-NN up to `k`,
    /// ascending; range every match, ascending. Positions are global.
    ///
    /// # Panics
    ///
    /// As [`crate::exec::QueryExecutor::run_one`].
    pub fn run_one(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats) {
        let (answers, stats, _, _) = self.run_one_scattered(query, spec, config);
        (answers, stats)
    }

    /// As [`ShardedExecutor::run_one`], additionally reporting the
    /// summed context allocation-event delta (the zero-alloc-after-
    /// warm-up observable) and the raw per-shard [`QueryStats`] — the
    /// serve daemon feeds the latter into its per-shard Prometheus
    /// counter families.
    pub fn run_one_traced(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats, u64, Vec<QueryStats>) {
        self.run_one_scattered(query, spec, config)
    }

    /// The concurrent scatter behind `run_one` / `run_one_traced`.
    fn run_one_scattered(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
    ) -> (Vec<QueryAnswer>, QueryStats, u64, Vec<QueryStats>) {
        let n = self.index.num_shards();
        let t_start = Instant::now();
        let knn = make_knn(spec);

        if n == 1 {
            // Solo fast path: the single-index search, byte for byte.
            let mut ctx = self.contexts[0].checkout().unwrap_or_default();
            let before = ctx.alloc_events();
            let (answers, stats) = run_shard(
                self.index.shard(0),
                query,
                spec,
                config,
                &mut ctx,
                ShardSlot::solo(),
                knn.as_ref(),
            );
            let delta = ctx.alloc_events().saturating_sub(before);
            self.contexts[0].checkin(ctx);
            let per_shard = vec![stats.clone()];
            let answers = gather(spec, answers, knn);
            return (answers, stats, delta, per_shard);
        }

        // Split the worker complement between the concurrent shards.
        let shard_config = QueryConfig {
            num_workers: (config.num_workers / n).max(1),
            ..config.clone()
        };
        let shared = SharedBound::new();
        let slots: Vec<Mutex<Option<ShardReturn>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // One pool party per shard; each shard's engine either runs
        // inline (one worker) or forks scoped threads for its share.
        WorkerPool::global().run(n, &|shard_id| {
            let shard = self.index.shard(shard_id);
            let slot = ShardSlot {
                offset: self.index.shard_offset(shard_id),
                shared: Some(&shared),
            };
            let mut ctx = self.contexts[shard_id].checkout().unwrap_or_default();
            let before = ctx.alloc_events();
            let out = run_shard(
                shard,
                query,
                spec,
                &shard_config,
                &mut ctx,
                slot,
                knn.as_ref(),
            );
            let delta = ctx.alloc_events().saturating_sub(before);
            self.contexts[shard_id].checkin(ctx);
            *slots[shard_id].lock() = Some((out.0, out.1, delta));
        });

        let mut per_shard_answers = Vec::new();
        let mut per_shard_stats = Vec::with_capacity(n);
        let mut alloc_delta = 0u64;
        for slot in slots {
            let (answers, stats, delta) = slot.into_inner().expect("every shard answered");
            per_shard_answers.extend(answers);
            per_shard_stats.push(stats);
            alloc_delta += delta;
        }
        let merged = merge_shard_stats(&per_shard_stats, t_start.elapsed());
        let answers = gather(spec, per_shard_answers, knn);
        (answers, merged, alloc_delta, per_shard_stats)
    }

    /// Answers one query by walking the shards *sequentially* with the
    /// given (already inter-query-shaped) config — the per-batch-worker
    /// path where the shared BSF carries shard `i`'s answer into shard
    /// `i+1`'s pruning. `ctxs` holds one checked-out context per shard.
    fn answer_sequential(
        &self,
        query: &[f32],
        spec: &QuerySpec,
        config: &QueryConfig,
        ctxs: &mut [QueryContext<'a>],
    ) -> (Vec<QueryAnswer>, QueryStats) {
        let n = self.index.num_shards();
        let knn = make_knn(spec);
        if n == 1 {
            let (answers, stats) = run_shard(
                self.index.shard(0),
                query,
                spec,
                config,
                &mut ctxs[0],
                ShardSlot::solo(),
                knn.as_ref(),
            );
            return (gather(spec, answers, knn), stats);
        }
        let t_start = Instant::now();
        let shared = SharedBound::new();
        let mut per_shard_answers = Vec::with_capacity(n);
        let mut per_shard_stats = Vec::with_capacity(n);
        for (shard_id, ctx) in ctxs.iter_mut().enumerate() {
            let slot = ShardSlot {
                offset: self.index.shard_offset(shard_id),
                shared: Some(&shared),
            };
            let (answers, stats) = run_shard(
                self.index.shard(shard_id),
                query,
                spec,
                config,
                ctx,
                slot,
                knn.as_ref(),
            );
            per_shard_answers.extend(answers);
            per_shard_stats.push(stats);
        }
        let merged = merge_shard_stats(&per_shard_stats, t_start.elapsed());
        (gather(spec, per_shard_answers, knn), merged)
    }

    /// Answers a whole batch of queries under `schedule`; the sharded
    /// counterpart of [`crate::exec::QueryExecutor::run_batch`], with
    /// the same contract (answers in query order, aggregate statistics
    /// merged through [`QueryStatsAggregate`]).
    ///
    /// # Panics
    ///
    /// As [`ShardedExecutor::run_one`]; additionally if an inter-query
    /// schedule's `parallelism` is zero.
    pub fn run_batch(
        &self,
        queries: &Dataset,
        spec: &QuerySpec,
        schedule: Schedule,
        config: &QueryConfig,
    ) -> (Vec<Vec<QueryAnswer>>, QueryStatsAggregate) {
        match schedule {
            Schedule::IntraQuery => {
                let mut answers = Vec::with_capacity(queries.len());
                let mut agg = QueryStatsAggregate::default();
                for q in queries.iter() {
                    let (ans, stats, _, _) = self.run_one_scattered(q, spec, config);
                    agg.add(&stats);
                    answers.push(ans);
                }
                (answers, agg)
            }
            Schedule::InterQuery { parallelism } => {
                self.run_batch_inter(queries, spec, parallelism, config)
            }
        }
    }

    /// Inter-query scheduling: queries parallel across batch workers,
    /// shards sequential inside each query (one engine worker each).
    fn run_batch_inter(
        &self,
        queries: &Dataset,
        spec: &QuerySpec,
        parallelism: usize,
        config: &QueryConfig,
    ) -> (Vec<Vec<QueryAnswer>>, QueryStatsAggregate) {
        assert!(parallelism > 0, "parallelism must be positive");
        let n = self.index.num_shards();
        let per_query = QueryConfig {
            num_workers: 1,
            num_queues: 1,
            ..config.clone()
        };
        let dispenser = Dispenser::new(queries.len());
        let slots: Vec<Mutex<Option<Vec<QueryAnswer>>>> =
            (0..queries.len()).map(|_| Mutex::new(None)).collect();
        let agg = Mutex::new(QueryStatsAggregate::default());
        WorkerPool::global().run(parallelism.min(queries.len().max(1)), &|_pid| {
            let mut local_agg = QueryStatsAggregate::default();
            let mut ctxs: Vec<QueryContext<'a>> = (0..n)
                .map(|i| self.contexts[i].checkout().unwrap_or_default())
                .collect();
            while let Some(qi) = dispenser.next() {
                let (ans, stats) =
                    self.answer_sequential(queries.series(qi), spec, &per_query, &mut ctxs);
                local_agg.add(&stats);
                *slots[qi].lock() = Some(ans);
            }
            agg.lock().merge(&local_agg);
            for (i, ctx) in ctxs.into_iter().enumerate() {
                self.contexts[i].checkin(ctx);
            }
        });
        let answers = slots
            .into_iter()
            .map(|s| s.into_inner().expect("every query answered"))
            .collect();
        (answers, agg.into_inner())
    }

    /// Warms every slot of every shard pool by running `query` against
    /// the owning shard once per slot, then parks all contexts — the
    /// sharded counterpart of
    /// [`crate::exec::QueryExecutor::prewarm`], used by the serve
    /// daemon so first real queries run allocation-free.
    pub fn prewarm(&self, query: &[f32], spec: &QuerySpec, config: &QueryConfig) {
        for (shard_id, pool) in self.contexts.iter().enumerate() {
            let shard = self.index.shard(shard_id);
            let mut held = Vec::with_capacity(pool.capacity());
            for _ in 0..pool.capacity() {
                let mut ctx = pool.checkout().unwrap_or_default();
                let knn = make_knn(spec);
                let _ = run_shard(
                    shard,
                    query,
                    spec,
                    config,
                    &mut ctx,
                    ShardSlot::solo(),
                    knn.as_ref(),
                );
                held.push(ctx);
            }
            for ctx in held {
                pool.checkin(ctx);
            }
        }
    }
}

/// The shared k-NN set for `spec`, if the objective is k-NN.
fn make_knn(spec: &QuerySpec) -> Option<KnnSet> {
    match spec.objective {
        Objective::Knn { k } => Some(KnnSet::new(k)),
        _ => None,
    }
}

/// Runs one shard's share of a query: the sharded Metric × Objective
/// dispatch, mirroring the single-index chokepoint in
/// [`crate::exec`] but through the `*_sharded` adapters. k-NN answers
/// land in the shared set (the returned list is empty); everything else
/// returns globalized answers directly.
fn run_shard<'a>(
    shard: &'a MessiIndex,
    query: &[f32],
    spec: &QuerySpec,
    config: &QueryConfig,
    ctx: &mut QueryContext<'a>,
    slot: ShardSlot<'_>,
    knn: Option<&KnnSet>,
) -> (Vec<QueryAnswer>, QueryStats) {
    match (spec.metric, spec.objective) {
        (MetricSpec::Euclidean, Objective::Exact) => {
            let (ans, stats) = crate::exact::exact_search_sharded(shard, query, config, ctx, slot);
            (vec![ans], stats)
        }
        (MetricSpec::Euclidean, Objective::Knn { .. }) => {
            let set = knn.expect("k-NN scatter owns a shared set");
            let stats = crate::knn::exact_knn_shared(shard, query, set, slot.offset, config, ctx);
            (Vec::new(), stats)
        }
        (MetricSpec::Euclidean, Objective::Range { epsilon_sq }) => {
            crate::range::range_search_sharded(shard, query, epsilon_sq, config, ctx, slot.offset)
        }
        (MetricSpec::Euclidean, Objective::Approx { epsilon, delta }) => {
            let (ans, stats) = crate::approximate::approx_search_sharded(
                shard, query, epsilon, delta, config, ctx, slot,
            );
            (vec![ans], stats)
        }
        (MetricSpec::Dtw(params), Objective::Exact) => {
            let (ans, stats) =
                crate::dtw::exact_search_dtw_sharded(shard, query, params, config, ctx, slot);
            (vec![ans], stats)
        }
        (MetricSpec::Dtw(params), Objective::Knn { .. }) => {
            let set = knn.expect("k-NN scatter owns a shared set");
            let stats = crate::knn::exact_knn_dtw_shared(
                shard,
                query,
                set,
                slot.offset,
                params,
                config,
                ctx,
            );
            (Vec::new(), stats)
        }
        (MetricSpec::Dtw(params), Objective::Range { epsilon_sq }) => {
            crate::range::range_search_dtw_sharded(
                shard,
                query,
                epsilon_sq,
                params,
                config,
                ctx,
                slot.offset,
            )
        }
        (MetricSpec::Dtw(params), Objective::Approx { epsilon, delta }) => {
            let (ans, stats) = crate::approximate::approx_search_dtw_sharded(
                shard, query, epsilon, delta, params, config, ctx, slot,
            );
            (vec![ans], stats)
        }
    }
}

/// Merges per-shard partial answers into the final, globally-ordered
/// answer list.
fn gather(spec: &QuerySpec, per_shard: Vec<QueryAnswer>, knn: Option<KnnSet>) -> Vec<QueryAnswer> {
    match spec.objective {
        Objective::Knn { .. } => knn.expect("k-NN scatter owns a shared set").into_sorted(),
        Objective::Exact | Objective::Approx { .. } => {
            let best = per_shard
                .into_iter()
                .min_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos)))
                .expect("at least one shard answers");
            vec![best]
        }
        Objective::Range { .. } => {
            let mut all = per_shard;
            all.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.pos.cmp(&b.pos)));
            all
        }
    }
}

/// Folds per-shard [`QueryStats`] into one query-level record: counters
/// sum (they flow into the same [`QueryStatsAggregate`] fields the
/// single-index path feeds), `total_time` is the scatter's wall clock,
/// the initial BSF is the tightest seed any shard produced, breakdowns
/// sum component-wise, and the stop reason merges pessimistically
/// (any shard budget-exhausted ⇒ budget-exhausted; all home-leaf-only ⇒
/// home-leaf-only; else completed).
fn merge_shard_stats(per_shard: &[QueryStats], total_time: std::time::Duration) -> QueryStats {
    let mut out = QueryStats {
        total_time,
        ..QueryStats::default()
    };
    let mut initial = f32::INFINITY;
    for s in per_shard {
        out.lb_distance_calcs += s.lb_distance_calcs;
        out.real_distance_calcs += s.real_distance_calcs;
        out.bsf_updates += s.bsf_updates;
        out.nodes_inserted += s.nodes_inserted;
        out.nodes_popped += s.nodes_popped;
        out.nodes_filtered_on_pop += s.nodes_filtered_on_pop;
        out.approx_inflation_prunes += s.approx_inflation_prunes;
        initial = initial.min(s.initial_bsf_dist_sq);
        out.breakdown = match (out.breakdown.take(), s.breakdown) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        out.stop_reason = merge_stop(out.stop_reason, s.stop_reason);
    }
    if initial.is_finite() {
        out.initial_bsf_dist_sq = initial;
    }
    out
}

fn merge_stop(a: Option<StopReason>, b: Option<StopReason>) -> Option<StopReason> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(StopReason::BudgetExhausted), _) | (_, Some(StopReason::BudgetExhausted)) => {
            Some(StopReason::BudgetExhausted)
        }
        (Some(StopReason::HomeLeafOnly), Some(StopReason::HomeLeafOnly)) => {
            Some(StopReason::HomeLeafOnly)
        }
        _ => Some(StopReason::Completed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;
    use std::time::Duration;

    fn stats_with(real: u64, initial: f32, stop: Option<StopReason>) -> QueryStats {
        QueryStats {
            real_distance_calcs: real,
            initial_bsf_dist_sq: initial,
            stop_reason: stop,
            ..QueryStats::default()
        }
    }

    #[test]
    fn merged_stats_sum_counters_and_take_tightest_seed() {
        let merged = merge_shard_stats(
            &[
                stats_with(10, 4.0, None),
                stats_with(7, 2.5, None),
                stats_with(0, 9.0, None),
            ],
            Duration::from_millis(3),
        );
        assert_eq!(merged.real_distance_calcs, 17);
        assert_eq!(merged.initial_bsf_dist_sq, 2.5);
        assert_eq!(merged.total_time, Duration::from_millis(3));
        assert_eq!(merged.stop_reason, None);
    }

    #[test]
    fn stop_reasons_merge_pessimistically() {
        use StopReason::*;
        let m = |reasons: &[StopReason]| {
            merge_shard_stats(
                &reasons
                    .iter()
                    .map(|&r| stats_with(0, 1.0, Some(r)))
                    .collect::<Vec<_>>(),
                Duration::ZERO,
            )
            .stop_reason
        };
        assert_eq!(m(&[Completed, Completed]), Some(Completed));
        assert_eq!(m(&[Completed, BudgetExhausted]), Some(BudgetExhausted));
        assert_eq!(m(&[HomeLeafOnly, HomeLeafOnly]), Some(HomeLeafOnly));
        assert_eq!(m(&[HomeLeafOnly, Completed]), Some(Completed));
    }

    #[test]
    fn sharded_exact_matches_brute_force_with_global_positions() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 500, 42));
        let (sharded, _) = ShardedIndex::build(Arc::clone(&data), 3, &IndexConfig::for_tests());
        let exec = sharded.executor();
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 5, 42);
        let config = QueryConfig::for_tests();
        for q in queries.iter() {
            let (ans, stats) = exec.run_one(q, &QuerySpec::exact(), &config);
            let (bf_pos, bf_dist) = data.nearest_neighbor_brute_force(q);
            assert_eq!(ans.len(), 1);
            assert!(
                (ans[0].dist_sq - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                "{} vs {bf_dist}",
                ans[0].dist_sq
            );
            if ans[0].pos != bf_pos as u64 {
                let d =
                    messi_series::distance::euclidean::ed_sq(q, data.series(ans[0].pos as usize));
                assert!(
                    (d - bf_dist).abs() <= 1e-3 * bf_dist.max(1.0),
                    "non-tie mismatch"
                );
            }
            assert!(stats.lb_distance_calcs > 0);
            assert!(stats.total_time.as_nanos() > 0);
        }
    }

    #[test]
    fn sharded_knn_positions_are_global_and_deduplicated() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 51));
        let (sharded, _) = ShardedIndex::build(Arc::clone(&data), 4, &IndexConfig::for_tests());
        let exec = sharded.executor();
        let q = data.series(317).to_vec(); // lives in a late shard
        let (ans, _) = exec.run_one(&q, &QuerySpec::knn(5), &QueryConfig::for_tests());
        assert_eq!(ans.len(), 5);
        assert_eq!(
            ans[0].pos, 317,
            "member query's nearest is itself, globally"
        );
        assert_eq!(ans[0].dist_sq, 0.0);
        let mut positions: Vec<u64> = ans.iter().map(|a| a.pos).collect();
        positions.sort_unstable();
        positions.dedup();
        assert_eq!(positions.len(), 5, "global positions must not collide");
    }

    #[test]
    fn both_schedules_agree_on_a_sharded_index() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 63));
        let (sharded, _) = ShardedIndex::build(Arc::clone(&data), 2, &IndexConfig::for_tests());
        let exec = sharded.executor();
        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 4, 63);
        let config = QueryConfig::for_tests();
        let (_, nn) = data.nearest_neighbor_brute_force(queries.series(0));
        for spec in [
            QuerySpec::exact(),
            QuerySpec::knn(3),
            QuerySpec::range(nn * 2.0),
            QuerySpec::approximate(0.0, 1.0),
        ] {
            let (intra, agg_a) = exec.run_batch(&queries, &spec, Schedule::IntraQuery, &config);
            let (inter, agg_b) = exec.run_batch(
                &queries,
                &spec,
                Schedule::InterQuery { parallelism: 3 },
                &config,
            );
            assert_eq!(agg_a.queries, queries.len() as u64);
            assert_eq!(agg_b.queries, queries.len() as u64);
            for (qi, (a, b)) in intra.iter().zip(&inter).enumerate() {
                assert_eq!(a.len(), b.len(), "{spec:?} query {qi}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.dist_sq.to_bits(),
                        y.dist_sq.to_bits(),
                        "{spec:?} query {qi}: schedules must agree bit-for-bit"
                    );
                }
            }
        }
    }
}
