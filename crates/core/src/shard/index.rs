//! The [`ShardedIndex`]: N independent [`MessiIndex`] shards over
//! contiguous position ranges, built in parallel.

use crate::config::IndexConfig;
use crate::index::MessiIndex;
use crate::stats::BuildStats;
use messi_series::Dataset;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A sharded MESSI index: the collection partitioned into contiguous
/// position ranges, one independent [`MessiIndex`] per range.
///
/// Shard `i` covers global positions
/// `[shard_offset(i), shard_offset(i) + shard(i).num_series())`; inside
/// the shard, positions are local `u32`s, globalized with
/// [`super::global_pos`]. Shards are built in parallel (one build per
/// shard, each with a proportional slice of the configured index
/// workers) and queried through a [`super::ShardedExecutor`], which
/// fans each query out and merges the partial answers.
///
/// Why shard at all:
///
/// * **Parallel build wall-clock** — per-shard builds overlap end to
///   end, including their serial phases.
/// * **Scale** — a single `MessiIndex` caps the collection at
///   `u32::MAX` series (positions are `u32`); N shards multiply that
///   ceiling by N while answers carry `u64` global positions.
/// * **Inter-query throughput** — a batch worker walks the shards
///   sequentially per query, and the cross-shard shared BSF lets a
///   tight answer from an early shard prune most of the later shards'
///   work.
///
/// ```
/// use messi_core::{IndexConfig, QueryConfig, ShardedIndex};
/// use messi_core::exec::QuerySpec;
/// use messi_series::gen::{self, DatasetKind};
/// use std::sync::Arc;
///
/// let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 600, 9));
/// let (sharded, _) = ShardedIndex::build(Arc::clone(&data), 4, &IndexConfig::for_tests());
/// assert_eq!(sharded.num_shards(), 4);
///
/// let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 1, 9);
/// let exec = sharded.executor();
/// let (answers, _) = exec.run_one(queries.series(0), &QuerySpec::exact(), &QueryConfig::for_tests());
/// let (bf_pos, _) = data.nearest_neighbor_brute_force(queries.series(0));
/// assert_eq!(answers[0].pos, bf_pos as u64);
/// ```
#[derive(Debug)]
pub struct ShardedIndex {
    /// Shards are `Arc`-shared so a grown copy ([`ShardedIndex::absorb`])
    /// can reuse every untouched shard without rebuilding it.
    shards: Vec<Arc<MessiIndex>>,
    /// First global position of each shard (ascending, `offsets[0] == 0`).
    offsets: Vec<u64>,
    /// The full collection (shards hold their own sub-dataset `Arc`s).
    dataset: Arc<Dataset>,
}

/// The contiguous balanced partition of `len` positions into `n`
/// ranges: every range gets `len / n` positions and the first `len % n`
/// ranges get one extra, so range sizes differ by at most one. This is
/// the *canonical* partition — [`super::load_sharded`] recomputes the
/// same split to reconstruct per-shard sub-datasets, and the manifest
/// cross-checks it.
pub(crate) fn shard_ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    let base = len / n;
    let extra = len % n;
    let mut start = 0;
    (0..n)
        .map(|i| {
            let size = base + usize::from(i < extra);
            let range = (start, start + size);
            start += size;
            range
        })
        .collect()
}

impl ShardedIndex {
    /// Builds `num_shards` independent shards over `dataset` in
    /// parallel and returns the sharded index plus merged construction
    /// statistics (phase times are the *maximum* across the overlapping
    /// per-shard builds; `total_time` is the scatter's wall clock).
    ///
    /// At most `available_cores` builds run at once (extra shards queue
    /// behind a shared counter), and each concurrent build gets a
    /// proportional slice of the configured index workers, so the
    /// machine is never oversubscribed. `num_shards == 1` builds a single shard
    /// over the full dataset `Arc` directly (no copy) — byte-identical
    /// to [`MessiIndex::build`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or exceeds the number of series,
    /// if the dataset is empty, if any shard would exceed the per-shard
    /// `u32` position cap, or if the configuration is invalid.
    pub fn build(
        dataset: Arc<Dataset>,
        num_shards: usize,
        config: &IndexConfig,
    ) -> (Self, BuildStats) {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            num_shards <= dataset.len(),
            "more shards ({num_shards}) than series ({})",
            dataset.len()
        );
        let t_start = Instant::now();
        if num_shards == 1 {
            let (index, stats) = MessiIndex::build(Arc::clone(&dataset), config);
            return (
                Self {
                    shards: vec![Arc::new(index)],
                    offsets: vec![0],
                    dataset,
                },
                stats,
            );
        }

        let ranges = shard_ranges(dataset.len(), num_shards);
        // At most `available_cores` shard builds run concurrently —
        // more would just time-slice and thrash caches (on a 1-core
        // host the builds run back to back). Each concurrent build gets
        // a proportional slice of the configured worker budget.
        let concurrency = num_shards.min(crate::config::available_cores()).max(1);
        let shard_config = IndexConfig {
            num_workers: (config.num_workers / concurrency).max(1),
            ..config.clone()
        };
        let built: Vec<parking_lot::Mutex<Option<(MessiIndex, BuildStats)>>> = (0..num_shards)
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        // `concurrency` scoped threads drain the shard list via a shared
        // counter. `MessiIndex::build` parallelizes internally with
        // scoped threads of its own (never the global worker pool), so
        // nesting is plain fork-join.
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..concurrency {
                let next = &next;
                let built = &built;
                let ranges = &ranges;
                let dataset = &dataset;
                let shard_config = &shard_config;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&(start, end)) = ranges.get(i) else {
                        break;
                    };
                    let sub = shard_dataset(dataset, start, end);
                    *built[i].lock() = Some(MessiIndex::build(sub, shard_config));
                });
            }
        });

        let mut shards = Vec::with_capacity(num_shards);
        let mut stats = BuildStats {
            summarize_time: Duration::ZERO,
            tree_time: Duration::ZERO,
            total_time: t_start.elapsed(),
            num_series: 0,
            num_leaves: 0,
            num_root_subtrees: 0,
            max_height: 0,
        };
        for slot in built {
            let (index, s) = slot.into_inner().expect("every shard built");
            stats.summarize_time = stats.summarize_time.max(s.summarize_time);
            stats.tree_time = stats.tree_time.max(s.tree_time);
            stats.num_series += s.num_series;
            stats.num_leaves += s.num_leaves;
            stats.num_root_subtrees += s.num_root_subtrees;
            stats.max_height = stats.max_height.max(s.max_height);
            shards.push(Arc::new(index));
        }
        let offsets = ranges.iter().map(|&(start, _)| start as u64).collect();
        (
            Self {
                shards,
                offsets,
                dataset,
            },
            stats,
        )
    }

    /// Wraps an already-built single [`MessiIndex`] as a one-shard
    /// sharded index (offset 0), so code written against the sharded
    /// frontend — the serve daemon, the CLI — also accepts single-file
    /// snapshots and `--shards 1` builds without a separate path.
    pub fn from_single(index: MessiIndex) -> Self {
        let dataset = Arc::clone(index.dataset());
        Self {
            shards: vec![Arc::new(index)],
            offsets: vec![0],
            dataset,
        }
    }

    /// Assembles a sharded index from parts — the loader's entry point.
    /// `shards[i]` must index exactly the sub-range of `dataset`
    /// starting at global position `offsets[i]`.
    pub(crate) fn from_parts(
        shards: Vec<MessiIndex>,
        offsets: Vec<u64>,
        dataset: Arc<Dataset>,
    ) -> Self {
        debug_assert_eq!(shards.len(), offsets.len());
        Self {
            shards: shards.into_iter().map(Arc::new).collect(),
            offsets,
            dataset,
        }
    }

    /// A grown copy of this index over `grown` — a dataset that starts
    /// with this index's series and appends new ones at the tail.
    ///
    /// Only the **last** shard is rebuilt (via
    /// [`MessiIndex::insert_batch`], which reuses every untouched root
    /// subtree's arena verbatim); all earlier shards are shared with
    /// `self` through their `Arc`s. The contiguous-partition invariant
    /// is preserved — the last shard simply covers a longer tail — but
    /// the split is no longer the canonical balanced one, so snapshot
    /// loading validates the manifest's recorded partition rather than
    /// recomputing it.
    ///
    /// # Panics
    ///
    /// Panics if `grown` is not a strict extension of this index's
    /// dataset shape (same `series_len`, at least as many series).
    pub fn absorb(&self, grown: Arc<Dataset>) -> Result<Self, crate::ingest::IngestError> {
        assert_eq!(
            grown.series_len(),
            self.dataset.series_len(),
            "grown dataset changes series_len"
        );
        assert!(
            grown.len() >= self.dataset.len(),
            "grown dataset shrank: {} -> {}",
            self.dataset.len(),
            grown.len()
        );
        let n = self.shards.len();
        let last_start = self.offsets[n - 1] as usize;
        let already_indexed = self.dataset.len() - last_start;
        let sub = shard_dataset(&grown, last_start, grown.len());
        let last = self.shards[n - 1].insert_batch(sub, already_indexed)?;
        let mut shards: Vec<Arc<MessiIndex>> = self.shards[..n - 1].to_vec();
        shards.push(Arc::new(last));
        Ok(Self {
            shards,
            offsets: self.offsets.clone(),
            dataset: grown,
        })
    }

    /// The full collection this index covers.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s index (positions local to the shard).
    pub fn shard(&self, i: usize) -> &MessiIndex {
        &self.shards[i]
    }

    /// All shards, ascending by global position range.
    pub fn shards(&self) -> &[Arc<MessiIndex>] {
        &self.shards
    }

    /// Shard `i`'s first global position — the `offset` argument of
    /// [`super::global_pos`].
    pub fn shard_offset(&self, i: usize) -> u64 {
        self.offsets[i]
    }

    /// Maps a global position back to `(shard, local position)` — the
    /// inverse of [`super::global_pos`].
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn locate(&self, pos: u64) -> (usize, u32) {
        assert!(
            pos < self.num_series(),
            "global position {pos} out of range"
        );
        let shard = match self.offsets.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (shard, (pos - self.offsets[shard]) as u32)
    }

    /// Total series across all shards (equals the dataset length).
    pub fn num_series(&self) -> u64 {
        self.shards.iter().map(|s| s.num_series() as u64).sum()
    }

    /// Total leaves across all shards.
    pub fn num_leaves(&self) -> usize {
        self.shards.iter().map(|s| s.num_leaves()).sum()
    }

    /// Total stored leaf entries across all shards.
    pub fn num_entries(&self) -> usize {
        self.shards.iter().map(|s| s.num_entries()).sum()
    }

    /// Height of the tallest root subtree of any shard.
    pub fn max_height(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.max_height())
            .max()
            .unwrap_or(0)
    }

    /// Bytes held by all node arenas across all shards.
    pub fn node_storage_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.node_storage_bytes()).sum()
    }

    /// Bytes held by all leaf-entry pools across all shards.
    pub fn entry_storage_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.entry_storage_bytes()).sum()
    }

    /// Mean leaf fill factor across all shards (entry-weighted).
    pub fn leaf_fill_factor(&self) -> f64 {
        let leaves = self.num_leaves();
        if leaves == 0 {
            return 0.0;
        }
        self.num_entries() as f64 / (leaves * self.shard(0).config().leaf_capacity) as f64
    }

    /// Creates a pooled [`super::ShardedExecutor`] over this index —
    /// the scatter-gather frontend serving every objective × metric ×
    /// schedule combination.
    pub fn executor(&self) -> super::ShardedExecutor<'_> {
        super::ShardedExecutor::new(self)
    }
}

/// The sub-dataset for global positions `[start, end)`: a zero-copy
/// [`Dataset::view`] sharing the full collection's backing buffer (a
/// 4-shard build over 50M series would otherwise memcpy the entire
/// collection once before building). The view exposes exactly the
/// range's bytes, so a per-shard snapshot's dataset fingerprint
/// ([`crate::persist`]) reproduces at load time from the same range of
/// the full collection.
pub(crate) fn shard_dataset(dataset: &Arc<Dataset>, start: usize, end: usize) -> Arc<Dataset> {
    if start == 0 && end == dataset.len() {
        return Arc::clone(dataset);
    }
    Arc::new(dataset.view(start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use messi_series::gen::{self, DatasetKind};

    #[test]
    fn ranges_are_contiguous_balanced_and_exhaustive() {
        for (len, n) in [(10, 3), (9, 3), (1, 1), (7, 7), (1000, 4), (5, 2)] {
            let ranges = shard_ranges(len, n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[n - 1].1, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
            assert!(*min >= 1, "no empty shard");
        }
    }

    #[test]
    fn build_partitions_and_globalizes() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 503, 77));
        let (sharded, stats) = ShardedIndex::build(Arc::clone(&data), 4, &IndexConfig::for_tests());
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.num_series(), 503);
        assert_eq!(stats.num_series, 503);
        assert_eq!(sharded.num_entries(), 503);
        assert!(stats.total_time.as_nanos() > 0);
        // Offsets are the partial sums of shard sizes.
        let mut expect = 0u64;
        for i in 0..4 {
            assert_eq!(sharded.shard_offset(i), expect);
            expect += sharded.shard(i).num_series() as u64;
        }
        // Every shard's sub-dataset is the matching slice of the full
        // collection, so local position p in shard i is global
        // offset+p of the original.
        for i in 0..4 {
            let off = sharded.shard_offset(i) as usize;
            let shard_data = sharded.shard(i).dataset();
            for p in [0usize, shard_data.len() - 1] {
                assert_eq!(shard_data.series(p), data.series(off + p));
            }
        }
    }

    #[test]
    fn locate_inverts_global_pos() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 101, 3));
        let (sharded, _) = ShardedIndex::build(data, 3, &IndexConfig::for_tests());
        for pos in [0u64, 1, 33, 34, 67, 100] {
            let (shard, local) = sharded.locate(pos);
            assert_eq!(
                super::super::global_pos(sharded.shard_offset(shard), local),
                pos
            );
            assert!((local as usize) < sharded.shard(shard).num_series());
        }
    }

    #[test]
    fn single_shard_build_shares_the_dataset_arc() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 64, 5));
        let (sharded, _) = ShardedIndex::build(Arc::clone(&data), 1, &IndexConfig::for_tests());
        assert!(Arc::ptr_eq(sharded.shard(0).dataset(), &data));
        let single = ShardedIndex::from_single(
            MessiIndex::build(Arc::clone(&data), &IndexConfig::for_tests()).0,
        );
        assert_eq!(single.num_shards(), 1);
        assert_eq!(single.shard_offset(0), 0);
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn rejects_more_shards_than_series() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 3, 1));
        ShardedIndex::build(data, 4, &IndexConfig::for_tests());
    }
}
