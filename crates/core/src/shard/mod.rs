//! Sharded multi-index scatter-gather.
//!
//! A [`ShardedIndex`] splits the collection into N contiguous position
//! ranges and builds one independent [`MessiIndex`](crate::MessiIndex)
//! per range — in parallel, one build per shard. Queries fan out to
//! per-shard engines and the partial results are merged:
//!
//! * **1-NN (exact, DTW, δ-ε-approximate)** — every shard runs the full
//!   engine, but all shards publish BSF improvements into one atomic
//!   cross-shard bound and prune against it
//!   (`engine::SharedBound`), so a tight early answer found in shard 0
//!   prunes shard 3's traversal and queue drain. The gather step takes
//!   the minimum. Pruning never changes which distances are *computed
//!   for the winner* — only which losers are skipped — so the merged
//!   answer is bit-identical to the single-index answer.
//! * **k-NN** — all shards offer into one shared
//!   `KnnSet` keyed by global positions; the k-th-best
//!   bound is therefore automatically global and the set *is* the
//!   merged answer.
//! * **ε-range** — the bound is the fixed ε², nothing is shared; the
//!   gather concatenates the per-shard hit lists and re-sorts.
//!
//! Per-shard indexes store positions as local `u32`s (that cap is the
//! reason `--shards` exists: N shards lift the collection ceiling to
//! N × `u32::MAX`); every cross-shard artifact — answers, the shared
//! k-NN set — uses `u64` *global* positions produced by [`global_pos`].
//!
//! [`save_sharded`] / [`load_sharded`] persist a sharded index as a
//! snapshot *directory*: one `shard-N.messi` file per shard (the
//! [`crate::persist`] container format, unchanged) plus a checksummed
//! `manifest.messi` recording the partition, so loads can reconstruct
//! the exact per-shard sub-datasets and run in parallel.

mod exec;
mod index;
mod persist;

pub use exec::ShardedExecutor;
pub use index::ShardedIndex;
pub use persist::{load_sharded, save_sharded};

/// Converts a shard-local `u32` position into a collection-global `u64`
/// position: `offset + local`, where `offset` is the shard's first
/// global position ([`ShardedIndex::shard_offset`]).
///
/// This is the *single* place global-position arithmetic lives: the
/// shard-aware search adapters, the shared k-NN set, the gather/merge
/// steps, and the equivalence tests all call it, so the globalization
/// rule cannot drift between layers. The inverse direction (global →
/// shard + local) is [`ShardedIndex::locate`].
///
/// Shard ranges are contiguous and disjoint, so `global_pos` is
/// injective across shards: two distinct (shard, local) pairs never
/// collide, which is what makes deduplication by global position in the
/// shared k-NN set sound.
#[inline]
pub fn global_pos(offset: u64, local: u32) -> u64 {
    offset + u64::from(local)
}

#[cfg(test)]
mod tests {
    use super::global_pos;

    #[test]
    fn global_pos_is_offset_plus_local() {
        assert_eq!(global_pos(0, 0), 0);
        assert_eq!(global_pos(0, 7), 7);
        assert_eq!(global_pos(1_000, 7), 1_007);
        // The whole point of u64 globals: local positions near the u32
        // cap still globalize without wrapping.
        assert_eq!(
            global_pos(u64::from(u32::MAX), u32::MAX),
            2 * u64::from(u32::MAX)
        );
    }
}
