//! Per-shard snapshot persistence: a sharded index saves as a
//! *directory* of single-index snapshots plus a checksummed manifest.
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! dir/
//!   manifest.messi   MESSISHD container: the partition table
//!   shard-0.messi    ordinary crate::persist container (shard 0)
//!   shard-1.messi    ...one per shard, loadable individually
//! ```
//!
//! Each `shard-N.messi` is a regular [`crate::persist`] snapshot whose
//! dataset fingerprint covers that shard's sub-range only, so
//! [`load_sharded`] reconstructs the same sub-datasets from the
//! partition recorded in the manifest and loads every shard in
//! parallel. A corrupt, missing, or swapped shard file fails the load
//! loudly with the offending path in the error.

use super::index::{shard_dataset, ShardedIndex};
use crate::persist::{load_index, save_index, PersistError};
use messi_series::io::{fnv1a64, PayloadReader, PayloadWriter};
use messi_series::Dataset;
use parking_lot::Mutex;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Magic prefix of a sharded-snapshot manifest.
const MANIFEST_MAGIC: [u8; 8] = *b"MESSISHD";
/// Current manifest format version.
const MANIFEST_VERSION: u32 = 1;
/// Manifest file name inside a snapshot directory.
const MANIFEST_NAME: &str = "manifest.messi";

/// File name of shard `i`'s snapshot inside a snapshot directory.
fn shard_file_name(i: usize) -> String {
    format!("shard-{i}.messi")
}

/// Saves `index` as a sharded snapshot directory at `dir` (created if
/// absent): one `shard-N.messi` per shard plus a checksummed
/// `manifest.messi` recording the partition.
///
/// Every file is written through the same tmp-file + rename discipline
/// as [`save_index`], and the manifest is written *last*, so a
/// directory with a valid manifest always has valid shard files newer
/// than it — an interrupted save leaves no loadable-but-wrong state.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing its files.
pub fn save_sharded(index: &ShardedIndex, dir: &Path) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    for (i, shard) in index.shards().iter().enumerate() {
        save_index(shard, &dir.join(shard_file_name(i)))?;
    }

    let mut w = PayloadWriter::new();
    w.put_u32(index.num_shards() as u32);
    w.put_u32(index.dataset().series_len() as u32);
    w.put_u64(index.num_series());
    for (i, shard) in index.shards().iter().enumerate() {
        w.put_u64(index.shard_offset(i));
        w.put_u64(shard.num_series() as u64);
    }
    let payload = w.into_bytes();

    let path = dir.join(MANIFEST_NAME);
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let write = || -> std::io::Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(&MANIFEST_MAGIC)?;
        out.write_all(&MANIFEST_VERSION.to_le_bytes())?;
        out.write_all(&(payload.len() as u64).to_le_bytes())?;
        out.write_all(&payload)?;
        out.write_all(&fnv1a64(&payload).to_le_bytes())?;
        out.flush()?;
        out.into_inner()
            .map_err(|e| std::io::Error::other(format!("flush failed: {e}")))?
            .sync_all()?;
        std::fs::rename(&tmp, &path)
    };
    if let Err(e) = write() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Loads a sharded snapshot directory previously written by
/// [`save_sharded`], pairing it with the *full* `dataset` (shard
/// sub-datasets are reconstructed from the manifest's partition table).
/// Shards load in parallel, one thread each.
///
/// # Errors
///
/// As [`load_index`], plus [`PersistError::Corrupt`] when the manifest
/// is damaged or its partition disagrees with itself, and
/// [`PersistError::DatasetMismatch`] when the manifest was written over
/// a different collection shape. Per-shard failures are annotated with
/// the shard file's path, so one bad shard out of N names itself.
pub fn load_sharded(dir: &Path, dataset: Arc<Dataset>) -> Result<ShardedIndex, PersistError> {
    let manifest = read_manifest(&dir.join(MANIFEST_NAME))?;
    if manifest.series_len != dataset.series_len() {
        return Err(PersistError::DatasetMismatch(format!(
            "manifest records series length {}, dataset has {}",
            manifest.series_len,
            dataset.series_len()
        )));
    }
    if manifest.total_series != dataset.len() as u64 {
        return Err(PersistError::DatasetMismatch(format!(
            "manifest records {} series, dataset has {}",
            manifest.total_series,
            dataset.len()
        )));
    }
    // The manifest's partition table is authoritative: read_manifest
    // already proved it contiguous from zero, gap-free, and covering
    // exactly `total_series`. It need *not* be the canonical balanced
    // split of ShardedIndex::build — a live-ingested index grows its
    // last shard past the balanced size, and its snapshot records that
    // partition verbatim (see ShardedIndex::absorb).

    let n = manifest.shards.len();
    let slots: Vec<Mutex<Option<Result<crate::MessiIndex, PersistError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (i, slot) in slots.iter().enumerate() {
            let (offset, len) = manifest.shards[i];
            let sub = shard_dataset(&dataset, offset as usize, (offset + len) as usize);
            let path = dir.join(shard_file_name(i));
            scope.spawn(move || {
                let loaded = load_index(&path, sub).map_err(|e| annotate(&path, e));
                *slot.lock() = Some(loaded);
            });
        }
    });

    let mut shards = Vec::with_capacity(n);
    let mut offsets = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        let shard = slot.into_inner().expect("every shard load ran")?;
        if shard.num_series() as u64 != manifest.shards[i].1 {
            return Err(PersistError::Corrupt(format!(
                "{}: holds {} series, manifest promises {}",
                dir.join(shard_file_name(i)).display(),
                shard.num_series(),
                manifest.shards[i].1
            )));
        }
        offsets.push(manifest.shards[i].0);
        shards.push(shard);
    }
    Ok(ShardedIndex::from_parts(shards, offsets, dataset))
}

/// Decoded `manifest.messi` contents: per-shard `(offset, len)` in
/// global positions, plus the collection shape it was written over.
struct Manifest {
    series_len: usize,
    total_series: u64,
    shards: Vec<(u64, u64)>,
}

/// Reads and verifies the manifest container (magic, version, length,
/// checksum), then decodes the partition table.
fn read_manifest(path: &Path) -> Result<Manifest, PersistError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 20 || bytes[..8] != MANIFEST_MAGIC {
        if bytes.len() >= 8 && bytes[..8] == MANIFEST_MAGIC {
            return Err(PersistError::Corrupt("truncated manifest header".into()));
        }
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != MANIFEST_VERSION {
        return Err(PersistError::Version {
            found: version,
            expected: MANIFEST_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let expected_total = 20usize
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| PersistError::Corrupt("manifest payload length overflows".into()))?;
    if bytes.len() != expected_total {
        return Err(PersistError::Corrupt(format!(
            "manifest is {} bytes, header promises {expected_total}",
            bytes.len()
        )));
    }
    let payload = &bytes[20..20 + payload_len];
    let stored = u64::from_le_bytes(bytes[20 + payload_len..].try_into().expect("8 bytes"));
    let actual = fnv1a64(payload);
    if stored != actual {
        return Err(PersistError::Corrupt(format!(
            "manifest checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }

    let corrupt = |what: &str| PersistError::Corrupt(format!("manifest: {what}"));
    let mut r = PayloadReader::new(payload);
    let num_shards = r.take_u32().map_err(corrupt)? as usize;
    if num_shards == 0 {
        return Err(corrupt("zero shards"));
    }
    let series_len = r.take_u32().map_err(corrupt)? as usize;
    let total_series = r.take_u64().map_err(corrupt)?;
    let mut shards = Vec::with_capacity(num_shards);
    let mut expected_offset = 0u64;
    for i in 0..num_shards {
        let offset = r.take_u64().map_err(corrupt)?;
        let len = r.take_u64().map_err(corrupt)?;
        if offset != expected_offset {
            return Err(corrupt(&format!(
                "shard {i} starts at {offset}, expected {expected_offset}"
            )));
        }
        if len == 0 {
            return Err(corrupt(&format!("shard {i} is empty")));
        }
        expected_offset += len;
        shards.push((offset, len));
    }
    if expected_offset != total_series {
        return Err(corrupt(&format!(
            "partition covers {expected_offset} series, manifest promises {total_series}"
        )));
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after partition table"));
    }
    Ok(Manifest {
        series_len,
        total_series,
        shards,
    })
}

/// Prefixes a per-shard load error with the shard file's path, folding
/// non-string variants into [`PersistError::Corrupt`] so the message
/// always names the file that failed.
fn annotate(path: &Path, e: PersistError) -> PersistError {
    let at = path.display();
    match e {
        PersistError::Corrupt(s) => PersistError::Corrupt(format!("{at}: {s}")),
        PersistError::DatasetMismatch(s) => PersistError::DatasetMismatch(format!("{at}: {s}")),
        other => PersistError::Corrupt(format!("{at}: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IndexConfig, QueryConfig};
    use crate::exec::QuerySpec;
    use messi_series::gen::{self, DatasetKind};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("messi-shard-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip_preserves_answers() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 400, 99));
        let (built, _) = ShardedIndex::build(Arc::clone(&data), 3, &IndexConfig::for_tests());
        let dir = tmp_dir("roundtrip");
        save_sharded(&built, &dir).expect("save");
        let loaded = load_sharded(&dir, Arc::clone(&data)).expect("load");
        assert_eq!(loaded.num_shards(), 3);
        assert_eq!(loaded.num_series(), 400);

        let queries = gen::queries::generate_queries(DatasetKind::RandomWalk, 3, 99);
        let config = QueryConfig::for_tests();
        let (e_built, e_loaded) = (built.executor(), loaded.executor());
        for q in queries.iter() {
            let (a, _) = e_built.run_one(q, &QuerySpec::exact(), &config);
            let (b, _) = e_loaded.run_one(q, &QuerySpec::exact(), &config);
            assert_eq!(a[0].pos, b[0].pos);
            assert_eq!(a[0].dist_sq.to_bits(), b[0].dist_sq.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grown_non_canonical_partition_round_trips() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 21));
        let (built, _) = ShardedIndex::build(Arc::clone(&data), 3, &IndexConfig::for_tests());
        // Grow past the canonical balanced split: the last shard
        // absorbs 7 appended series (copy-on-grow, see Dataset::concat).
        let extra = gen::generate(DatasetKind::RandomWalk, 7, 22);
        let grown = Arc::new(data.concat([&extra]).expect("same shape"));
        let absorbed = built.absorb(Arc::clone(&grown)).expect("absorb");
        assert_eq!(absorbed.num_series(), 307);

        let dir = tmp_dir("grown");
        save_sharded(&absorbed, &dir).expect("save");
        let loaded = load_sharded(&dir, Arc::clone(&grown)).expect("non-canonical load");
        assert_eq!(loaded.num_series(), 307);

        let config = QueryConfig::for_tests();
        let q = extra.series(3);
        let (a, _) = absorbed.executor().run_one(q, &QuerySpec::exact(), &config);
        let (b, _) = loaded.executor().run_one(q, &QuerySpec::exact(), &config);
        assert_eq!(a, b, "loaded grown snapshot answers identically");
        assert_eq!(a[0].pos, 303, "appended series keeps its global position");
        assert_eq!(a[0].dist_sq, 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupting_one_shard_fails_loudly_naming_the_file() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 300, 7));
        let (built, _) = ShardedIndex::build(Arc::clone(&data), 3, &IndexConfig::for_tests());
        let dir = tmp_dir("corrupt");
        save_sharded(&built, &dir).expect("save");

        // Flip one payload byte in shard 1's snapshot.
        let victim = dir.join(shard_file_name(1));
        let mut bytes = std::fs::read(&victim).expect("read shard");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        std::fs::write(&victim, &bytes).expect("rewrite shard");

        let err = load_sharded(&dir, Arc::clone(&data)).expect_err("must fail");
        let msg = err.to_string();
        assert!(
            msg.contains("shard-1.messi"),
            "error must name the corrupt file, got: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_file_names_itself() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 200, 11));
        let (built, _) = ShardedIndex::build(Arc::clone(&data), 2, &IndexConfig::for_tests());
        let dir = tmp_dir("missing");
        save_sharded(&built, &dir).expect("save");
        std::fs::remove_file(dir.join(shard_file_name(0))).expect("remove");
        let err = load_sharded(&dir, Arc::clone(&data)).expect_err("must fail");
        assert!(err.to_string().contains("shard-0.messi"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_checksum_guards_partition_table() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 200, 13));
        let (built, _) = ShardedIndex::build(Arc::clone(&data), 2, &IndexConfig::for_tests());
        let dir = tmp_dir("manifest");
        save_sharded(&built, &dir).expect("save");
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).expect("read manifest");
        let mid = 20 + (bytes.len() - 28) / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite manifest");
        match load_sharded(&dir, Arc::clone(&data)) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected Corrupt(checksum), got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_dataset_is_rejected_at_the_manifest() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 200, 17));
        let (built, _) = ShardedIndex::build(Arc::clone(&data), 2, &IndexConfig::for_tests());
        let dir = tmp_dir("mismatch");
        save_sharded(&built, &dir).expect("save");
        let other = Arc::new(gen::generate(DatasetKind::RandomWalk, 150, 17));
        match load_sharded(&dir, other) {
            Err(PersistError::DatasetMismatch(_)) => {}
            other => panic!("expected DatasetMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
