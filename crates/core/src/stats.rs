//! Build and query statistics.
//!
//! Two of the paper's evaluation figures are *about* these numbers:
//! Fig. 13 breaks a query's wall time into initialization, tree pass,
//! queue insertion, queue removal, and distance calculation; Fig. 17
//! counts lower-bound and real distance calculations per algorithm. The
//! structures here are shared by MESSI and the baseline implementations
//! so the harness reports them uniformly.

use messi_sync::Counter;
use std::time::Duration;

/// Statistics of one index construction.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildStats {
    /// Wall time of the iSAX summarization phase (Alg. 3).
    pub summarize_time: Duration,
    /// Wall time of the tree-construction phase (Alg. 4).
    pub tree_time: Duration,
    /// Total wall time (summarize + barrier + tree).
    pub total_time: Duration,
    /// Series indexed.
    pub num_series: usize,
    /// Leaves in the finished tree.
    pub num_leaves: usize,
    /// Non-empty root subtrees.
    pub num_root_subtrees: usize,
    /// Height of the tallest root subtree.
    pub max_height: usize,
}

/// Per-phase wall-time breakdown of a query (Fig. 13's stacked bars).
///
/// Components are summed across workers and then divided by the worker
/// count, approximating per-phase elapsed time the way the paper reports
/// it (the phases of different workers overlap almost perfectly thanks to
/// the barrier and the balanced queues).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Approximate search + query summarization + queue setup (single
    /// threaded), in nanoseconds.
    pub init_ns: u64,
    /// Index tree traversal (Alg. 7), averaged over workers.
    pub tree_pass_ns: u64,
    /// Priority-queue insertions, averaged over workers.
    pub pq_insert_ns: u64,
    /// Priority-queue removals, averaged over workers.
    pub pq_remove_ns: u64,
    /// Lower-bound + real distance calculations on leaf entries,
    /// averaged over workers.
    pub dist_calc_ns: u64,
}

impl TimeBreakdown {
    /// Total of all components.
    pub fn total_ns(&self) -> u64 {
        self.init_ns + self.tree_pass_ns + self.pq_insert_ns + self.pq_remove_ns + self.dist_calc_ns
    }

    /// Component-wise division, for turning a batch sum into a per-query
    /// mean.
    pub fn div(&self, n: u64) -> Self {
        let n = n.max(1);
        Self {
            init_ns: self.init_ns / n,
            tree_pass_ns: self.tree_pass_ns / n,
            pq_insert_ns: self.pq_insert_ns / n,
            pq_remove_ns: self.pq_remove_ns / n,
            dist_calc_ns: self.dist_calc_ns / n,
        }
    }
}

impl std::ops::Add for TimeBreakdown {
    type Output = Self;

    /// Component-wise sum — how batch aggregation folds per-query
    /// breakdowns.
    fn add(self, other: Self) -> Self {
        Self {
            init_ns: self.init_ns + other.init_ns,
            tree_pass_ns: self.tree_pass_ns + other.tree_pass_ns,
            pq_insert_ns: self.pq_insert_ns + other.pq_insert_ns,
            pq_remove_ns: self.pq_remove_ns + other.pq_remove_ns,
            dist_calc_ns: self.dist_calc_ns + other.dist_calc_ns,
        }
    }
}

/// How an *approximate* search stopped (exact objectives never stop
/// early, so their [`QueryStats::stop_reason`] is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// ng-approximate (δ = 0): only the query's home leaf was visited —
    /// the tree pass never ran.
    HomeLeafOnly,
    /// The queue phase drained naturally: every leaf that survived the
    /// (possibly ε-inflated) bound was scanned. When δ = 1 this is the
    /// only possible outcome, and the `(1+ε)` guarantee is deterministic.
    Completed,
    /// The δ-derived leaf-visit budget ran out before the queues drained;
    /// the best-so-far at that moment is the answer.
    BudgetExhausted,
}

/// Statistics of one search query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Lower-bound (mindist) distance calculations performed, counting
    /// both node mindists during traversal and per-entry mindists during
    /// queue processing (Fig. 17a).
    pub lb_distance_calcs: u64,
    /// Real (Euclidean or DTW) distance calculations performed (Fig. 17b).
    pub real_distance_calcs: u64,
    /// Times the shared BSF was improved (§III-B reports 10–12 per query).
    pub bsf_updates: u64,
    /// Leaf nodes inserted into priority queues.
    pub nodes_inserted: u64,
    /// Entries popped from priority queues.
    pub nodes_popped: u64,
    /// Popped entries discarded by the second filtering (bound ≥ BSF).
    pub nodes_filtered_on_pop: u64,
    /// Wall time of the whole query.
    pub total_time: Duration,
    /// The initial BSF (squared) produced by the approximate search —
    /// §III-B observes it is "very close to its final value". Zero when
    /// the algorithm has no approximate-search stage.
    pub initial_bsf_dist_sq: f32,
    /// Lower-bound prunes (tree nodes and popped queue entries) that only
    /// the ε-inflated approximate bound allowed — the raw BSF would have
    /// kept them. Always 0 for exact objectives and at ε = 0.
    pub approx_inflation_prunes: u64,
    /// How an approximate search stopped; `None` for exact objectives.
    pub stop_reason: Option<StopReason>,
    /// Optional per-phase breakdown (collected when
    /// `QueryConfig::collect_breakdown` is set).
    pub breakdown: Option<TimeBreakdown>,
}

impl QueryStats {
    /// Ratio `final BSF / initial BSF` in *distance* (not squared) terms —
    /// 1.0 means the approximate search already found the answer.
    pub fn approx_quality(&self, final_dist_sq: f32) -> f32 {
        if self.initial_bsf_dist_sq <= 0.0 {
            return 1.0;
        }
        (final_dist_sq / self.initial_bsf_dist_sq).sqrt()
    }
}

/// Per-worker counter block, accumulated in plain registers inside the
/// hot loops and flushed into the shared atomics once per worker.
///
/// Incrementing shared atomics per *event* would bounce their cache line
/// between all Ns search workers and serialize the distance loops — the
/// counters exist to measure pruning (Fig. 17), not to throttle it.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalStats {
    /// Lower-bound distance calculations.
    pub lb: u64,
    /// Real distance calculations.
    pub real: u64,
    /// Successful BSF improvements.
    pub bsf_updates: u64,
    /// Leaf nodes inserted into priority queues.
    pub inserted: u64,
    /// Entries popped from priority queues.
    pub popped: u64,
    /// Popped entries discarded by the second filtering.
    pub filtered: u64,
}

impl LocalStats {
    /// Adds this worker's counts into the shared accumulator.
    pub fn flush(&self, stats: &SharedQueryStats) {
        stats.lb_distance_calcs.add(self.lb);
        stats.real_distance_calcs.add(self.real);
        stats.bsf_updates.add(self.bsf_updates);
        stats.nodes_inserted.add(self.inserted);
        stats.nodes_popped.add(self.popped);
        stats.nodes_filtered_on_pop.add(self.filtered);
    }
}

/// Thread-safe accumulator behind [`QueryStats`], shared by the search
/// workers of one query.
#[derive(Debug, Default)]
pub struct SharedQueryStats {
    /// See [`QueryStats::lb_distance_calcs`].
    pub lb_distance_calcs: Counter,
    /// See [`QueryStats::real_distance_calcs`].
    pub real_distance_calcs: Counter,
    /// See [`QueryStats::bsf_updates`].
    pub bsf_updates: Counter,
    /// See [`QueryStats::nodes_inserted`].
    pub nodes_inserted: Counter,
    /// See [`QueryStats::nodes_popped`].
    pub nodes_popped: Counter,
    /// See [`QueryStats::nodes_filtered_on_pop`].
    pub nodes_filtered_on_pop: Counter,
    /// Per-worker accumulated phase times (ns).
    pub tree_pass_ns: Counter,
    /// See [`TimeBreakdown::pq_insert_ns`].
    pub pq_insert_ns: Counter,
    /// See [`TimeBreakdown::pq_remove_ns`].
    pub pq_remove_ns: Counter,
    /// See [`TimeBreakdown::dist_calc_ns`].
    pub dist_calc_ns: Counter,
}

impl SharedQueryStats {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots into a [`QueryStats`], averaging the per-worker phase
    /// times over `workers` when `with_breakdown` is set.
    pub fn finish(
        &self,
        total_time: Duration,
        init_ns: u64,
        workers: u64,
        with_breakdown: bool,
    ) -> QueryStats {
        QueryStats {
            lb_distance_calcs: self.lb_distance_calcs.get(),
            real_distance_calcs: self.real_distance_calcs.get(),
            bsf_updates: self.bsf_updates.get(),
            nodes_inserted: self.nodes_inserted.get(),
            nodes_popped: self.nodes_popped.get(),
            nodes_filtered_on_pop: self.nodes_filtered_on_pop.get(),
            total_time,
            initial_bsf_dist_sq: 0.0,
            approx_inflation_prunes: 0,
            stop_reason: None,
            breakdown: with_breakdown.then(|| TimeBreakdown {
                init_ns,
                tree_pass_ns: self.tree_pass_ns.get() / workers.max(1),
                pq_insert_ns: self.pq_insert_ns.get() / workers.max(1),
                pq_remove_ns: self.pq_remove_ns.get() / workers.max(1),
                dist_calc_ns: self.dist_calc_ns.get() / workers.max(1),
            }),
        }
    }
}

/// Accumulates [`QueryStats`] over a batch of queries (the paper reports
/// averages over 100 queries).
#[derive(Debug, Clone, Default)]
pub struct QueryStatsAggregate {
    /// Number of queries aggregated.
    pub queries: u64,
    /// Sum of lower-bound distance calculations.
    pub lb_distance_calcs: u64,
    /// Sum of real distance calculations.
    pub real_distance_calcs: u64,
    /// Sum of BSF updates.
    pub bsf_updates: u64,
    /// Sum of ε-inflation prunes over the batch (approximate queries).
    pub approx_inflation_prunes: u64,
    /// Queries that stopped early on the δ budget
    /// ([`StopReason::BudgetExhausted`]).
    pub budget_stops: u64,
    /// Sum of query wall times.
    pub total_time: Duration,
    /// Component-wise sum of the per-query Fig. 13 breakdowns; present
    /// when at least one aggregated query collected one (i.e. ran with
    /// `QueryConfig::collect_breakdown`).
    pub breakdown: Option<TimeBreakdown>,
    /// Per-query wall times in microseconds (saturating; one entry per
    /// aggregated query, unordered) — what the latency percentiles are
    /// computed from. Four bytes per query keeps thousand-query batches
    /// cheap to carry and merge.
    pub latencies_us: Vec<u32>,
}

impl QueryStatsAggregate {
    /// An aggregate of exactly one query — the unit every fold starts
    /// from, so [`QueryStatsAggregate::merge`] is the single place where
    /// aggregate fields are combined (a field added here and in `merge`
    /// flows through every batch path automatically).
    pub fn of_query(s: &QueryStats) -> Self {
        Self {
            queries: 1,
            lb_distance_calcs: s.lb_distance_calcs,
            real_distance_calcs: s.real_distance_calcs,
            bsf_updates: s.bsf_updates,
            approx_inflation_prunes: s.approx_inflation_prunes,
            budget_stops: (s.stop_reason == Some(StopReason::BudgetExhausted)) as u64,
            total_time: s.total_time,
            breakdown: s.breakdown,
            latencies_us: vec![s.total_time.as_micros().min(u128::from(u32::MAX)) as u32],
        }
    }

    /// Folds one query's stats into the aggregate.
    pub fn add(&mut self, s: &QueryStats) {
        self.merge(&Self::of_query(s));
    }

    /// Folds another aggregate into this one (e.g. a worker's local
    /// aggregate into the batch total). Every field of the aggregate is
    /// combined here and nowhere else — batch paths must not merge
    /// field-by-field inline, which silently drops fields added later.
    pub fn merge(&mut self, other: &Self) {
        let Self {
            queries,
            lb_distance_calcs,
            real_distance_calcs,
            bsf_updates,
            approx_inflation_prunes,
            budget_stops,
            total_time,
            breakdown,
            latencies_us,
        } = other;
        self.queries += queries;
        self.lb_distance_calcs += lb_distance_calcs;
        self.real_distance_calcs += real_distance_calcs;
        self.bsf_updates += bsf_updates;
        self.approx_inflation_prunes += approx_inflation_prunes;
        self.budget_stops += budget_stops;
        self.total_time += *total_time;
        self.breakdown = match (self.breakdown, *breakdown) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        self.latencies_us.extend_from_slice(latencies_us);
    }

    /// Mean query time.
    pub fn mean_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }

    /// Mean lower-bound calculations per query.
    pub fn mean_lb_calcs(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.lb_distance_calcs as f64 / self.queries as f64
        }
    }

    /// Mean real-distance calculations per query.
    pub fn mean_real_calcs(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.real_distance_calcs as f64 / self.queries as f64
        }
    }

    /// Mean per-query Fig. 13 breakdown, when any query collected one.
    pub fn mean_breakdown(&self) -> Option<TimeBreakdown> {
        self.breakdown.map(|b| b.div(self.queries))
    }

    /// Nearest-rank latency percentile over the recorded per-query wall
    /// times, in microseconds (`p` in 0..=100); `None` before any query
    /// is aggregated. `p = 100` is the maximum.
    pub fn latency_percentile_us(&self, p: f64) -> Option<u32> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let b = TimeBreakdown {
            init_ns: 1,
            tree_pass_ns: 2,
            pq_insert_ns: 3,
            pq_remove_ns: 4,
            dist_calc_ns: 5,
        };
        assert_eq!(b.total_ns(), 15);
    }

    #[test]
    fn shared_stats_snapshot() {
        let s = SharedQueryStats::new();
        s.lb_distance_calcs.add(10);
        s.real_distance_calcs.add(3);
        s.tree_pass_ns.add(800);
        let snap = s.finish(Duration::from_millis(5), 100, 4, true);
        assert_eq!(snap.lb_distance_calcs, 10);
        assert_eq!(snap.real_distance_calcs, 3);
        let b = snap.breakdown.expect("requested breakdown");
        assert_eq!(b.init_ns, 100);
        assert_eq!(b.tree_pass_ns, 200, "averaged over 4 workers");
        let snap = s.finish(Duration::from_millis(5), 100, 4, false);
        assert!(snap.breakdown.is_none());
    }

    #[test]
    fn merge_combines_every_field() {
        let mut a = QueryStatsAggregate::default();
        a.add(&QueryStats {
            lb_distance_calcs: 10,
            real_distance_calcs: 2,
            bsf_updates: 1,
            total_time: Duration::from_millis(3),
            ..Default::default()
        });
        let mut b = QueryStatsAggregate::default();
        for _ in 0..2 {
            b.add(&QueryStats {
                lb_distance_calcs: 5,
                real_distance_calcs: 4,
                bsf_updates: 2,
                total_time: Duration::from_millis(1),
                ..Default::default()
            });
        }
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.lb_distance_calcs, 20);
        assert_eq!(a.real_distance_calcs, 10);
        assert_eq!(a.bsf_updates, 5);
        assert_eq!(a.total_time, Duration::from_millis(5));
        assert_eq!(a.latencies_us, vec![3_000, 1_000, 1_000]);
        // Merging an empty aggregate is the identity.
        let snapshot = a.clone();
        a.merge(&QueryStatsAggregate::default());
        assert_eq!(a.queries, snapshot.queries);
        assert_eq!(a.total_time, snapshot.total_time);
    }

    #[test]
    fn aggregate_sums_and_averages_breakdowns() {
        let b = TimeBreakdown {
            init_ns: 10,
            tree_pass_ns: 20,
            pq_insert_ns: 30,
            pq_remove_ns: 40,
            dist_calc_ns: 50,
        };
        let mut agg = QueryStatsAggregate::default();
        assert!(agg.mean_breakdown().is_none());
        // Mixing queries with and without a breakdown keeps the sum over
        // the collecting ones.
        agg.add(&QueryStats {
            breakdown: Some(b),
            ..Default::default()
        });
        agg.add(&QueryStats::default());
        agg.add(&QueryStats {
            breakdown: Some(b),
            ..Default::default()
        });
        let sum = agg.breakdown.expect("one query collected");
        assert_eq!(sum.init_ns, 20);
        assert_eq!(sum.total_ns(), 2 * b.total_ns());
        let mean = agg.mean_breakdown().expect("collected");
        assert_eq!(mean.dist_calc_ns, 100 / 3);
    }

    #[test]
    fn aggregate_counts_approximate_accounting() {
        let mut agg = QueryStatsAggregate::default();
        agg.add(&QueryStats {
            approx_inflation_prunes: 4,
            stop_reason: Some(StopReason::BudgetExhausted),
            ..Default::default()
        });
        agg.add(&QueryStats {
            approx_inflation_prunes: 1,
            stop_reason: Some(StopReason::Completed),
            ..Default::default()
        });
        agg.add(&QueryStats::default()); // an exact query
        assert_eq!(agg.approx_inflation_prunes, 5);
        assert_eq!(agg.budget_stops, 1);
        let mut total = QueryStatsAggregate::default();
        total.merge(&agg);
        total.merge(&agg);
        assert_eq!(total.approx_inflation_prunes, 10);
        assert_eq!(total.budget_stops, 2);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let mut agg = QueryStatsAggregate::default();
        assert_eq!(agg.latency_percentile_us(99.0), None);
        // 1..=100 ms, added out of order (percentiles sort internally).
        for i in (1..=100u64).rev() {
            agg.add(&QueryStats {
                total_time: Duration::from_micros(i),
                ..Default::default()
            });
        }
        assert_eq!(agg.latency_percentile_us(50.0), Some(50));
        assert_eq!(agg.latency_percentile_us(99.0), Some(99));
        assert_eq!(agg.latency_percentile_us(100.0), Some(100));
        assert_eq!(agg.latency_percentile_us(0.0), Some(1));
    }

    #[test]
    fn aggregate_means() {
        let mut agg = QueryStatsAggregate::default();
        assert_eq!(agg.mean_time(), Duration::ZERO);
        assert_eq!(agg.mean_lb_calcs(), 0.0);
        for i in 1..=4u64 {
            agg.add(&QueryStats {
                lb_distance_calcs: i * 10,
                real_distance_calcs: i,
                total_time: Duration::from_millis(i),
                ..Default::default()
            });
        }
        assert_eq!(agg.queries, 4);
        assert_eq!(agg.mean_lb_calcs(), 25.0);
        assert_eq!(agg.mean_real_calcs(), 2.5);
        assert_eq!(agg.mean_time(), Duration::from_micros(2500));
    }
}
