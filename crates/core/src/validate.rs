//! Index invariant validation.
//!
//! Used by the test suite (including the cross-crate property tests) to
//! assert that a built index is structurally sound, and by the snapshot
//! loader ([`crate::persist`]) as its semantic trust boundary — both
//! call the same per-arena checker, so an invariant added here
//! automatically guards loaded snapshots too. Every invariant is one
//! the search algorithms silently rely on; a violation would make
//! "exact" answers wrong rather than slow.

use crate::index::{MessiIndex, EMPTY_SLOT};
use crate::node::{NodeId, TreeArena};
use messi_sax::convert::SaxConverter;
use messi_sax::root_key::{node_word_for_root_key, root_key};

/// Checks all structural invariants of `index`.
///
/// Returns the list of violations (empty = valid; at most one semantic
/// violation is reported per subtree). Checked invariants:
///
/// 1. **Completeness**: every dataset position appears in exactly one
///    leaf.
/// 2. **Summary correctness**: each stored iSAX summary equals the
///    recomputed summary of its raw series.
/// 3. **Containment**: every leaf entry's summary is contained in the
///    leaf's node word, and files under the root key of its subtree.
/// 4. **Refinement**: each subtree's root word matches its key, and
///    each inner node's children carry the two words produced by
///    refining the parent on its split segment.
/// 5. **Capacity**: no leaf exceeds the configured capacity unless all
///    its entries share one summary (the documented overflow case).
/// 6. **Bookkeeping**: `touched_keys` matches the non-empty root slots,
///    and no stored subtree is empty.
/// 7. **Arena layout**: each arena's leaves partition its entry pool in
///    depth-first order, so leaf scans and `for_each_leaf` walk flat,
///    gapless slices.
/// 8. **SoA mirror**: each leaf's struct-of-arrays symbol columns agree
///    byte-for-byte with the interleaved entry words (through the run
///    block's stride/base indexing) — the batched mindist kernels read
///    the columns, so a divergence would silently change pruning bounds.
/// 9. **Run metadata**: every arena's derived leaf-run metadata (cols,
///    leaf starts, ordinals, run spans, run ids) equals a from-scratch
///    recomputation — what the queue coalescing and the snapshot loader
///    both rely on being deterministic.
/// 10. **Forest spine**: in a grouped arena, every synthetic node splits
///     an unrefined segment, its children's words extend its own, and
///     each walk bottoms out at a per-key root whose word refines exactly
///     its key — so coarse spine words only ever *loosen* mindist (the
///     pruning-admissibility requirement) and per-key slicing for the
///     snapshot writer is well defined.
/// 11. **Grouping determinism**: the arena membership equals the greedy
///     regrouping of the touched keys' per-key entry counts — what lets
///     the loader (and any rebuild) reproduce the same forests.
pub fn validate(index: &MessiIndex) -> Vec<String> {
    let mut errors = Vec::new();
    let mut conv = SaxConverter::new(index.sax_config());
    let mut seen = vec![0u32; index.num_series()];

    // Bookkeeping (6).
    for (key, &slot) in index.slots.iter().enumerate() {
        let touched = index.touched.binary_search(&key).is_ok();
        if (slot != EMPTY_SLOT) != touched {
            errors.push(format!(
                "key {key}: touched-list ({touched}) disagrees with root slot ({})",
                slot != EMPTY_SLOT
            ));
        }
        if slot != EMPTY_SLOT {
            let arena = &index.arenas[slot as usize];
            if arena.num_entries() == 0 {
                errors.push(format!("key {key}: empty subtree stored"));
            }
        }
    }

    // Per-arena semantics (2, 3, 4, 5, 7, 8, 9, 10), shared with the
    // snapshot loader. Position tallies feed the completeness check
    // below.
    for (arena_idx, arena) in index.arenas.iter().enumerate() {
        let mut record = |pos: usize| -> Result<(), String> {
            match seen.get_mut(pos) {
                Some(count) => {
                    *count += 1;
                    Ok(())
                }
                None => Err(format!("arena {arena_idx}: position {pos} out of range")),
            }
        };
        if let Err(e) = check_arena_semantics(index, arena, arena_idx, &mut conv, &mut record) {
            errors.push(e);
        }
    }

    // Completeness (1).
    for (pos, &count) in seen.iter().enumerate() {
        if count != 1 {
            errors.push(format!("position {pos} appears {count} times"));
            if errors.len() > 20 {
                errors.push("… (truncated)".into());
                break;
            }
        }
    }

    // Grouping determinism (11).
    let counts: Vec<usize> = index
        .touched
        .iter()
        .map(|&key| {
            index
                .key_root(key)
                .map(|(arena, root)| {
                    let (_, pool_lo, pool_hi) = arena.subtree_extent(root);
                    (pool_hi - pool_lo) as usize
                })
                .unwrap_or(0)
        })
        .collect();
    let groups = crate::node::forest_groups(&counts);
    if groups.len() != index.arenas.len() {
        errors.push(format!(
            "{} arenas stored, deterministic regrouping yields {}",
            index.arenas.len(),
            groups.len()
        ));
    }
    for (g, range) in groups.into_iter().enumerate() {
        for i in range {
            let key = index.touched[i];
            if index.slots.get(key).copied() != Some(g as u32) {
                errors.push(format!(
                    "key {key}: filed in arena {:?}, regrouping places it in {g}",
                    index.slots.get(key)
                ));
            }
        }
    }
    errors
}

/// Fail-fast semantic check of one arena — the single implementation
/// behind both [`validate`] and the snapshot loader's parallel sweep
/// ([`crate::persist`]). Verifies the forest spine (invariant 10), then
/// every member subtree's per-key semantics, then the arena-wide derived
/// run metadata (invariant 9).
pub(crate) fn check_arena_semantics(
    index: &MessiIndex,
    arena: &TreeArena,
    arena_idx: usize,
    conv: &mut SaxConverter,
    record: &mut dyn FnMut(usize) -> Result<(), String>,
) -> Result<(), String> {
    let members = check_forest_spine(index, arena, arena_idx)?;
    for &(key, root) in &members {
        check_subtree_semantics(index, arena, key, root, conv, record)?;
    }
    // Run metadata (9): the derived layout must equal a from-scratch
    // recomputation.
    if let Err(e) = arena.check_derived_layout() {
        return Err(format!("arena {arena_idx}: {e}"));
    }
    Ok(())
}

/// Walks an arena's synthetic spine (empty for a solo per-key arena),
/// verifying invariant 10, and returns the member `(key, per-key root)`
/// pairs in ascending key order.
fn check_forest_spine(
    index: &MessiIndex,
    arena: &TreeArena,
    arena_idx: usize,
) -> Result<Vec<(usize, NodeId)>, String> {
    let segments = index.sax_config().segments;
    let mut members = Vec::new();
    let mut stack = vec![TreeArena::ROOT];
    while let Some(id) = stack.pop() {
        let word = arena.word(id);
        if (0..segments).all(|s| word.bits(s) >= 1) {
            // First fully refined node on this path: a per-key root.
            // Its word must refine *exactly* the key bits (one bit per
            // segment), pinning the spine boundary to original roots.
            let mut key = 0usize;
            for s in 0..segments {
                key = (key << 1) | usize::from(word.symbol(s) >> (word.bits(s) - 1));
            }
            if word != &node_word_for_root_key(key, segments) {
                return Err(format!(
                    "arena {arena_idx}: per-key root {id} word {} over-refines key {key}",
                    word.display(segments)
                ));
            }
            if index.slots.get(key).copied() != Some(arena_idx as u32) {
                return Err(format!(
                    "arena {arena_idx}: member key {key} filed in arena {:?}",
                    index.slots.get(key)
                ));
            }
            members.push((key, id));
            continue;
        }
        if arena.is_leaf(id) {
            return Err(format!(
                "arena {arena_idx}: leaf {id} above full key refinement"
            ));
        }
        let split = arena.split_segment(id);
        if word.bits(split) != 0 {
            return Err(format!(
                "arena {arena_idx}: synthetic node {id} splits refined segment {split}"
            ));
        }
        let (left, right) = arena.children(id);
        for (child, side_bit) in [(left, 0u16), (right, 1)] {
            let child_word = arena.word(child);
            for s in 0..segments {
                let (pb, cb) = (word.bits(s), child_word.bits(s));
                if cb < pb || (child_word.symbol(s) >> (cb - pb)) != word.symbol(s) {
                    return Err(format!(
                        "arena {arena_idx}: node {child} word {} does not extend its \
                         spine parent {}",
                        child_word.display(segments),
                        word.display(segments)
                    ));
                }
            }
            let cb = child_word.bits(split);
            if cb == 0 || (child_word.symbol(split) >> (cb - 1)) != side_bit {
                return Err(format!(
                    "arena {arena_idx}: node {child} sits on the wrong side of the \
                     synthetic split on segment {split}"
                ));
            }
        }
        stack.push(right);
        stack.push(left);
    }
    if !members.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(format!(
            "arena {arena_idx}: member keys out of ascending order"
        ));
    }
    Ok(members)
}

/// Fail-fast semantic check of one member subtree rooted at `root`:
/// root word vs key, refinement chains, arena pool layout, leaf
/// capacity, containment, key filing, and recomputed summary
/// correctness against the dataset. `record` tallies every stored
/// position (and may reject duplicates or out-of-range values — how
/// duplicates are detected differs between the two callers).
fn check_subtree_semantics(
    index: &MessiIndex,
    arena: &TreeArena,
    key: usize,
    root: NodeId,
    conv: &mut SaxConverter,
    record: &mut dyn FnMut(usize) -> Result<(), String>,
) -> Result<(), String> {
    let segments = index.sax_config().segments;
    // Refinement (4), at the root: the subtree must cover exactly its key.
    if arena.word(root) != &node_word_for_root_key(key, segments) {
        return Err(format!("key {key}: root word does not match the key"));
    }
    // The node array is in preorder (guaranteed by the builder and
    // re-verified for loaded snapshots), so a linear sweep over the
    // subtree's contiguous node range visits its leaves in depth-first
    // order, and the pool cursor check below — starting at the
    // subtree's contiguous pool slice — is exactly the arena-layout
    // invariant (7) restricted to this member.
    let (node_end, pool_lo, pool_hi) = arena.subtree_extent(root);
    let mut cursor = pool_lo;
    for id in root..node_end {
        if !arena.is_leaf(id) {
            // Refinement (4).
            let (left, right) = arena.children(id);
            let (zero, one) = arena.word(id).refine(arena.split_segment(id));
            if arena.word(left) != &zero {
                return Err(format!(
                    "key {key}: left child word {} ≠ refinement {}",
                    arena.word(left).display(segments),
                    zero.display(segments)
                ));
            }
            if arena.word(right) != &one {
                return Err(format!(
                    "key {key}: right child word {} ≠ refinement {}",
                    arena.word(right).display(segments),
                    one.display(segments)
                ));
            }
            continue;
        }
        // Arena layout (7).
        let (start, _) = arena.leaf_range(id);
        if start != cursor {
            return Err(format!(
                "key {key}: leaf pool slice starts at {start}, expected {cursor}"
            ));
        }
        let leaf = arena.leaf(id);
        cursor += leaf.entries.len() as u32;
        // Capacity (5).
        if leaf.entries.len() > index.config.leaf_capacity {
            let first = leaf.entries.first().map(|e| e.sax);
            if !leaf.entries.iter().all(|e| Some(e.sax) == first) {
                return Err(format!(
                    "key {key}: oversized leaf ({} > {}) with separable entries",
                    leaf.entries.len(),
                    index.config.leaf_capacity
                ));
            }
        }
        for (j, e) in leaf.entries.iter().enumerate() {
            let pos = e.pos as usize;
            record(pos)?;
            // SoA mirror (8), through the run block's stride/base.
            for (s, &sym) in e.sax.symbols().iter().enumerate() {
                let byte = leaf.cols[s * leaf.stride + leaf.base + j];
                if byte != sym {
                    return Err(format!(
                        "key {key}: entry {pos} segment {s}: SoA column byte {byte} \
                         disagrees with AoS symbol {sym}"
                    ));
                }
            }
            // Containment (3).
            if !leaf.word.contains(&e.sax, segments) {
                return Err(format!("key {key}: entry {pos} not contained in leaf word"));
            }
            if root_key(&e.sax, segments) != key {
                return Err(format!("key {key}: entry {pos} filed under wrong key"));
            }
            // Summary correctness (2).
            if conv.convert(index.dataset.series(pos)) != e.sax {
                return Err(format!(
                    "key {key}: entry {pos} has a forged or stale summary"
                ));
            }
        }
    }
    if cursor != pool_hi {
        return Err(format!(
            "key {key}: depth-first leaves cover up to {cursor} of the subtree pool \
             slice ending at {pool_hi}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    #[test]
    fn fresh_indexes_validate_clean() {
        for kind in [
            DatasetKind::RandomWalk,
            DatasetKind::Seismic,
            DatasetKind::Sald,
        ] {
            let data = Arc::new(gen::generate(kind, 300, 7));
            let (index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
            let errors = validate(&index);
            assert!(errors.is_empty(), "{kind:?}: {errors:?}");
        }
    }

    #[test]
    fn paper_config_validates_clean() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 1000, 9));
        let (index, _) = MessiIndex::build(data, &IndexConfig::default());
        let errors = validate(&index);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn detects_corrupted_index() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 100, 3));
        let (mut index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
        // Sabotage: unhook one subtree's slot, breaking completeness +
        // bookkeeping.
        let key = index.touched[0];
        index.slots[key] = EMPTY_SLOT;
        let errors = validate(&index);
        assert!(!errors.is_empty(), "corruption must be detected");
    }
}
