//! Index invariant validation.
//!
//! Used by the test suite (including the cross-crate property tests) to
//! assert that a built index is structurally sound, and by the snapshot
//! loader ([`crate::persist`]) as its semantic trust boundary — both
//! call the same per-subtree checker, so an invariant added here
//! automatically guards loaded snapshots too. Every invariant is one
//! the search algorithms silently rely on; a violation would make
//! "exact" answers wrong rather than slow.

use crate::index::{MessiIndex, EMPTY_SLOT};
use crate::node::{NodeId, TreeArena};
use messi_sax::convert::SaxConverter;
use messi_sax::root_key::{node_word_for_root_key, root_key};

/// Checks all structural invariants of `index`.
///
/// Returns the list of violations (empty = valid; at most one semantic
/// violation is reported per subtree). Checked invariants:
///
/// 1. **Completeness**: every dataset position appears in exactly one
///    leaf.
/// 2. **Summary correctness**: each stored iSAX summary equals the
///    recomputed summary of its raw series.
/// 3. **Containment**: every leaf entry's summary is contained in the
///    leaf's node word, and files under the root key of its subtree.
/// 4. **Refinement**: each subtree's root word matches its key, and
///    each inner node's children carry the two words produced by
///    refining the parent on its split segment.
/// 5. **Capacity**: no leaf exceeds the configured capacity unless all
///    its entries share one summary (the documented overflow case).
/// 6. **Bookkeeping**: `touched_keys` matches the non-empty root slots,
///    and no stored subtree is empty.
/// 7. **Arena layout**: each arena's leaves partition its entry pool in
///    depth-first order, so leaf scans and `for_each_leaf` walk flat,
///    gapless slices.
/// 8. **SoA mirror**: each leaf's struct-of-arrays symbol columns agree
///    byte-for-byte with the interleaved entry words — the batched
///    mindist kernels read the columns, so a divergence would silently
///    change pruning bounds.
pub fn validate(index: &MessiIndex) -> Vec<String> {
    let mut errors = Vec::new();
    let mut conv = SaxConverter::new(index.sax_config());
    let mut seen = vec![0u32; index.num_series()];

    // Bookkeeping (6).
    for (key, &slot) in index.slots.iter().enumerate() {
        let touched = index.touched.binary_search(&key).is_ok();
        if (slot != EMPTY_SLOT) != touched {
            errors.push(format!(
                "key {key}: touched-list ({touched}) disagrees with root slot ({})",
                slot != EMPTY_SLOT
            ));
        }
        if slot != EMPTY_SLOT {
            let arena = &index.arenas[slot as usize];
            if arena.num_entries() == 0 {
                errors.push(format!("key {key}: empty subtree stored"));
            }
        }
    }

    // Per-subtree semantics (2, 3, 4, 5, 7), shared with the snapshot
    // loader. Position tallies feed the completeness check below.
    for &key in &index.touched {
        let arena = match index.root(key) {
            Some(a) => a,
            None => continue, // already reported
        };
        let mut record = |pos: usize| -> Result<(), String> {
            match seen.get_mut(pos) {
                Some(count) => {
                    *count += 1;
                    Ok(())
                }
                None => Err(format!("key {key}: position {pos} out of range")),
            }
        };
        if let Err(e) = check_subtree_semantics(index, arena, key, &mut conv, &mut record) {
            errors.push(e);
        }
    }

    // Completeness (1).
    for (pos, &count) in seen.iter().enumerate() {
        if count != 1 {
            errors.push(format!("position {pos} appears {count} times"));
            if errors.len() > 20 {
                errors.push("… (truncated)".into());
                break;
            }
        }
    }
    errors
}

/// Fail-fast semantic check of one subtree — the single implementation
/// behind both [`validate`] and the snapshot loader's parallel sweep
/// ([`crate::persist`]): root word vs key, refinement chains, arena pool
/// layout, leaf capacity, containment, key filing, and recomputed
/// summary correctness against the dataset. `record` tallies every
/// stored position (and may reject duplicates or out-of-range values —
/// how duplicates are detected differs between the two callers).
pub(crate) fn check_subtree_semantics(
    index: &MessiIndex,
    arena: &TreeArena,
    key: usize,
    conv: &mut SaxConverter,
    record: &mut dyn FnMut(usize) -> Result<(), String>,
) -> Result<(), String> {
    let segments = index.sax_config().segments;
    // Refinement (4), at the root: the subtree must cover exactly its key.
    if arena.word(TreeArena::ROOT) != &node_word_for_root_key(key, segments) {
        return Err(format!("key {key}: root word does not match the key"));
    }
    // The node array is in preorder (guaranteed by the builder and
    // re-verified for loaded snapshots), so a linear sweep visits leaves
    // in depth-first order and the pool cursor check below is exactly
    // the arena-layout invariant (7).
    let mut cursor = 0u32;
    for id in 0..arena.num_nodes() as NodeId {
        if !arena.is_leaf(id) {
            // Refinement (4).
            let (left, right) = arena.children(id);
            let (zero, one) = arena.word(id).refine(arena.split_segment(id));
            if arena.word(left) != &zero {
                return Err(format!(
                    "key {key}: left child word {} ≠ refinement {}",
                    arena.word(left).display(segments),
                    zero.display(segments)
                ));
            }
            if arena.word(right) != &one {
                return Err(format!(
                    "key {key}: right child word {} ≠ refinement {}",
                    arena.word(right).display(segments),
                    one.display(segments)
                ));
            }
            continue;
        }
        // Arena layout (7).
        let (start, _) = arena.leaf_range(id);
        if start != cursor {
            return Err(format!(
                "key {key}: leaf pool slice starts at {start}, expected {cursor}"
            ));
        }
        let leaf = arena.leaf(id);
        cursor += leaf.entries.len() as u32;
        // Capacity (5).
        if leaf.entries.len() > index.config.leaf_capacity {
            let first = leaf.entries.first().map(|e| e.sax);
            if !leaf.entries.iter().all(|e| Some(e.sax) == first) {
                return Err(format!(
                    "key {key}: oversized leaf ({} > {}) with separable entries",
                    leaf.entries.len(),
                    index.config.leaf_capacity
                ));
            }
        }
        let len = leaf.entries.len();
        for (j, e) in leaf.entries.iter().enumerate() {
            let pos = e.pos as usize;
            record(pos)?;
            // SoA mirror (8).
            for (s, &sym) in e.sax.symbols().iter().enumerate() {
                if leaf.cols[s * len + j] != sym {
                    return Err(format!(
                        "key {key}: entry {pos} segment {s}: SoA column byte {} \
                         disagrees with AoS symbol {sym}",
                        leaf.cols[s * len + j]
                    ));
                }
            }
            // Containment (3).
            if !leaf.word.contains(&e.sax, segments) {
                return Err(format!("key {key}: entry {pos} not contained in leaf word"));
            }
            if root_key(&e.sax, segments) != key {
                return Err(format!("key {key}: entry {pos} filed under wrong key"));
            }
            // Summary correctness (2).
            if conv.convert(index.dataset.series(pos)) != e.sax {
                return Err(format!(
                    "key {key}: entry {pos} has a forged or stale summary"
                ));
            }
        }
    }
    if cursor as usize != arena.num_entries() {
        return Err(format!(
            "key {key}: depth-first leaves cover {cursor} of {} pool entries",
            arena.num_entries()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    #[test]
    fn fresh_indexes_validate_clean() {
        for kind in [
            DatasetKind::RandomWalk,
            DatasetKind::Seismic,
            DatasetKind::Sald,
        ] {
            let data = Arc::new(gen::generate(kind, 300, 7));
            let (index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
            let errors = validate(&index);
            assert!(errors.is_empty(), "{kind:?}: {errors:?}");
        }
    }

    #[test]
    fn paper_config_validates_clean() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 1000, 9));
        let (index, _) = MessiIndex::build(data, &IndexConfig::default());
        let errors = validate(&index);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn detects_corrupted_index() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 100, 3));
        let (mut index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
        // Sabotage: unhook one subtree's slot, breaking completeness +
        // bookkeeping.
        let key = index.touched[0];
        index.slots[key] = EMPTY_SLOT;
        let errors = validate(&index);
        assert!(!errors.is_empty(), "corruption must be detected");
    }
}
