//! Index invariant validation.
//!
//! Used by the test suite (including the cross-crate property tests) to
//! assert that a built index is structurally sound. Every invariant here
//! is one the search algorithms silently rely on; a violation would make
//! "exact" answers wrong rather than slow.

use crate::index::MessiIndex;
use crate::node::Node;
use messi_sax::convert::SaxConverter;
use messi_sax::root_key::root_key;

/// Checks all structural invariants of `index`.
///
/// Returns the list of violations (empty = valid). Checked invariants:
///
/// 1. **Completeness**: every dataset position appears in exactly one
///    leaf.
/// 2. **Summary correctness**: each stored iSAX summary equals the
///    recomputed summary of its raw series.
/// 3. **Containment**: every leaf entry's summary is contained in the
///    leaf's node word, and files under the root key of its subtree.
/// 4. **Refinement**: each inner node's children carry the two words
///    produced by refining the parent on its split segment.
/// 5. **Capacity**: no leaf exceeds the configured capacity unless all
///    its entries share one summary (the documented overflow case).
/// 6. **Bookkeeping**: `touched_keys` matches the non-empty root slots,
///    and no stored subtree is empty.
pub fn validate(index: &MessiIndex) -> Vec<String> {
    let mut errors = Vec::new();
    let segments = index.sax_config().segments;
    let mut conv = SaxConverter::new(index.sax_config());
    let mut seen = vec![0u32; index.num_series()];

    // Bookkeeping (6).
    for (key, slot) in index.roots.iter().enumerate() {
        let touched = index.touched.binary_search(&key).is_ok();
        if slot.is_some() != touched {
            errors.push(format!(
                "key {key}: touched-list ({touched}) disagrees with root slot ({})",
                slot.is_some()
            ));
        }
        if let Some(node) = slot {
            if node.num_entries() == 0 {
                errors.push(format!("key {key}: empty subtree stored"));
            }
        }
    }

    for &key in &index.touched {
        let node = match index.root(key) {
            Some(n) => n,
            None => continue, // already reported
        };
        validate_node(
            index,
            node,
            key,
            segments,
            &mut conv,
            &mut seen,
            &mut errors,
        );
    }

    // Completeness (1).
    for (pos, &count) in seen.iter().enumerate() {
        if count != 1 {
            errors.push(format!("position {pos} appears {count} times"));
            if errors.len() > 20 {
                errors.push("… (truncated)".into());
                break;
            }
        }
    }
    errors
}

fn validate_node(
    index: &MessiIndex,
    node: &Node,
    key: usize,
    segments: usize,
    conv: &mut SaxConverter,
    seen: &mut [u32],
    errors: &mut Vec<String>,
) {
    match node {
        Node::Inner(inner) => {
            // Refinement (4).
            let (zero, one) = inner.word.refine(inner.split_segment as usize);
            if inner.left.word() != &zero {
                errors.push(format!(
                    "key {key}: left child word {} ≠ refinement {}",
                    inner.left.word().display(segments),
                    zero.display(segments)
                ));
            }
            if inner.right.word() != &one {
                errors.push(format!(
                    "key {key}: right child word {} ≠ refinement {}",
                    inner.right.word().display(segments),
                    one.display(segments)
                ));
            }
            validate_node(index, &inner.left, key, segments, conv, seen, errors);
            validate_node(index, &inner.right, key, segments, conv, seen, errors);
        }
        Node::Leaf(leaf) => {
            // Capacity (5).
            if leaf.entries.len() > index.config.leaf_capacity {
                let first = leaf.entries.first().map(|e| e.sax);
                if !leaf.entries.iter().all(|e| Some(e.sax) == first) {
                    errors.push(format!(
                        "key {key}: oversized leaf ({} > {}) with separable entries",
                        leaf.entries.len(),
                        index.config.leaf_capacity
                    ));
                }
            }
            for e in &leaf.entries {
                let pos = e.pos as usize;
                if pos >= seen.len() {
                    errors.push(format!("key {key}: position {pos} out of range"));
                    continue;
                }
                seen[pos] += 1;
                // Containment (3).
                if !leaf.word.contains(&e.sax, segments) {
                    errors.push(format!("key {key}: entry {pos} not contained in leaf word"));
                }
                if root_key(&e.sax, segments) != key {
                    errors.push(format!("key {key}: entry {pos} filed under wrong key"));
                }
                // Summary correctness (2).
                let expect = conv.convert(index.dataset.series(pos));
                if expect != e.sax {
                    errors.push(format!("key {key}: entry {pos} has stale summary"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use messi_series::gen::{self, DatasetKind};
    use std::sync::Arc;

    #[test]
    fn fresh_indexes_validate_clean() {
        for kind in [
            DatasetKind::RandomWalk,
            DatasetKind::Seismic,
            DatasetKind::Sald,
        ] {
            let data = Arc::new(gen::generate(kind, 300, 7));
            let (index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
            let errors = validate(&index);
            assert!(errors.is_empty(), "{kind:?}: {errors:?}");
        }
    }

    #[test]
    fn paper_config_validates_clean() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 1000, 9));
        let (index, _) = MessiIndex::build(data, &IndexConfig::default());
        let errors = validate(&index);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn detects_corrupted_index() {
        let data = Arc::new(gen::generate(DatasetKind::RandomWalk, 100, 3));
        let (mut index, _) = MessiIndex::build(data, &IndexConfig::for_tests());
        // Sabotage: steal one subtree, breaking completeness + bookkeeping.
        let key = index.touched[0];
        index.roots[key] = None;
        let errors = validate(&index);
        assert!(!errors.is_empty(), "corruption must be detected");
    }
}
