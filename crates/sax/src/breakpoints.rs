//! N(0,1) breakpoint tables for SAX quantization.
//!
//! SAX divides the value axis into `2^k` regions that are equiprobable
//! under the standard normal distribution (the distribution of values of
//! z-normalized series). The region boundaries are therefore the normal
//! quantiles `Φ⁻¹(i / 2^k)`, `i = 1 .. 2^k − 1`.
//!
//! Only the finest table (cardinality 256, the paper's maximum) is
//! computed; coarser tables are *views* of it: the breakpoints of
//! cardinality `2^k` sit at every `2^(8−k)`-th position of the 256-ary
//! table. This guarantees bit-prefix consistency: the k-bit symbol of any
//! value is exactly the top k bits of its 8-bit symbol, the invariant that
//! makes iSAX node splitting (adding one bit to one segment) meaningful.

use crate::word::CARD_BITS;
use std::sync::OnceLock;

/// Number of breakpoints at the maximum cardinality (2⁸ − 1).
pub const NUM_MAX_BREAKPOINTS: usize = (1 << CARD_BITS) - 1;

static TABLE: OnceLock<[f32; NUM_MAX_BREAKPOINTS]> = OnceLock::new();

/// Inverse CDF of the standard normal distribution (Acklam's algorithm,
/// |relative error| < 1.2e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");

    // Coefficients for the central rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    // Coefficients for the tail approximation.
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    // Acklam's raw approximation is accurate to |relative error| < 1.15e-9
    // across the whole domain — orders of magnitude beyond what the f32
    // breakpoint tables can represent, so no refinement step is needed.
    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The 255 breakpoints of the maximum (256-ary) SAX alphabet:
/// `table()[j] = Φ⁻¹((j+1) / 256)`, strictly increasing.
pub fn table() -> &'static [f32; NUM_MAX_BREAKPOINTS] {
    TABLE.get_or_init(|| {
        let mut t = [0.0f32; NUM_MAX_BREAKPOINTS];
        for (j, slot) in t.iter_mut().enumerate() {
            *slot = inverse_normal_cdf((j + 1) as f64 / (1 << CARD_BITS) as f64) as f32;
        }
        t
    })
}

/// The breakpoint *below* region `symbol` at cardinality `2^bits`
/// (`-inf` for the lowest region).
///
/// # Panics
///
/// Debug-panics if `bits` is 0 or exceeds [`CARD_BITS`], or the symbol is
/// out of range for the cardinality.
#[inline]
pub fn region_lower(symbol: u16, bits: u8) -> f32 {
    debug_assert!(bits >= 1 && bits as usize <= CARD_BITS);
    debug_assert!((symbol as usize) < (1usize << bits));
    if symbol == 0 {
        f32::NEG_INFINITY
    } else {
        // Breakpoint i of the 2^bits alphabet is breakpoint
        // (i << (CARD_BITS - bits)) - 1 of the 256-ary table (0-indexed).
        let idx = ((symbol as usize) << (CARD_BITS - bits as usize)) - 1;
        table()[idx]
    }
}

/// The breakpoint *above* region `symbol` at cardinality `2^bits`
/// (`+inf` for the highest region).
#[inline]
pub fn region_upper(symbol: u16, bits: u8) -> f32 {
    debug_assert!(bits >= 1 && bits as usize <= CARD_BITS);
    debug_assert!((symbol as usize) < (1usize << bits));
    if symbol as usize == (1usize << bits) - 1 {
        f32::INFINITY
    } else {
        let idx = (((symbol as usize) + 1) << (CARD_BITS - bits as usize)) - 1;
        table()[idx]
    }
}

/// Quantizes a PAA value to its symbol at the maximum cardinality:
/// the number of breakpoints `<= v` (so region boundaries belong to the
/// region above them, matching the authors' convention).
#[inline]
pub fn symbol_max_card(v: f32) -> u8 {
    let t = table();
    // Binary search: first index with t[idx] > v.
    t.partition_point(|b| *b <= v) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::MAX_CARDINALITY;

    #[test]
    fn inverse_normal_known_values() {
        // Φ⁻¹(0.5) = 0; Φ⁻¹(0.975) ≈ 1.959964; Φ⁻¹(0.84134) ≈ 1.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.0013499) + 3.0).abs() < 1e-4);
    }

    #[test]
    fn inverse_normal_symmetry() {
        for p in [0.01, 0.1, 0.25, 0.4, 0.49] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn table_is_strictly_increasing_and_symmetric() {
        let t = table();
        for w in t.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Middle breakpoint (index 127) is Φ⁻¹(128/256) = 0.
        assert!(t[127].abs() < 1e-6);
        // Symmetry: t[j] = -t[254 - j].
        for j in 0..NUM_MAX_BREAKPOINTS {
            assert!((t[j] + t[254 - j]).abs() < 1e-5, "j={j}");
        }
    }

    #[test]
    fn cardinality_two_splits_at_zero() {
        assert_eq!(region_lower(0, 1), f32::NEG_INFINITY);
        assert!(region_upper(0, 1).abs() < 1e-6);
        assert!(region_lower(1, 1).abs() < 1e-6);
        assert_eq!(region_upper(1, 1), f32::INFINITY);
    }

    #[test]
    fn regions_tile_the_axis_at_every_cardinality() {
        for bits in 1..=CARD_BITS as u8 {
            let card = 1u16 << bits;
            assert_eq!(region_lower(0, bits), f32::NEG_INFINITY);
            assert_eq!(region_upper(card - 1, bits), f32::INFINITY);
            for s in 1..card {
                assert_eq!(
                    region_upper(s - 1, bits),
                    region_lower(s, bits),
                    "bits={bits} s={s}"
                );
            }
        }
    }

    #[test]
    fn symbol_assignment_respects_regions() {
        for &v in &[-5.0f32, -1.0, -0.001, 0.0, 0.001, 0.5, 1.0, 5.0] {
            let s = symbol_max_card(v) as u16;
            assert!(region_lower(s, CARD_BITS as u8) <= v || s == 0);
            assert!(v < region_upper(s, CARD_BITS as u8) || v == region_upper(s, CARD_BITS as u8));
            // The defining property: s = #breakpoints <= v.
            let count = table().iter().filter(|b| **b <= v).count();
            assert_eq!(s as usize, count);
        }
    }

    #[test]
    fn symbols_cover_full_range() {
        assert_eq!(symbol_max_card(-10.0), 0);
        assert_eq!(symbol_max_card(10.0) as usize, MAX_CARDINALITY - 1);
    }

    #[test]
    fn prefix_consistency_across_cardinalities() {
        // The k-bit symbol region must contain the 8-bit symbol region.
        for &v in &[-3.2f32, -0.7, 0.0, 0.33, 1.9, 4.0] {
            let full = symbol_max_card(v) as u16;
            for bits in 1..=8u8 {
                let prefix = full >> (8 - bits);
                assert!(region_lower(prefix, bits) <= region_lower(full, 8).max(-1e30));
                assert!(region_upper(prefix, bits) >= region_upper(full, 8).min(1e30));
                // And v itself lies in the prefix region.
                if prefix > 0 {
                    assert!(region_lower(prefix, bits) <= v);
                }
                if (prefix as usize) < (1usize << bits) - 1 {
                    assert!(v <= region_upper(prefix, bits));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn quantile_rejects_out_of_domain() {
        inverse_normal_cdf(0.0);
    }
}
