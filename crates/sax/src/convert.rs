//! Series → iSAX conversion (the paper's `ConvertToiSAX`, Alg. 3 line 7).

use crate::breakpoints::symbol_max_card;
use crate::word::{SaxWord, MAX_SEGMENTS};
use messi_series::paa::{paa_into, segment_bounds};

/// Static parameters of an iSAX summarization: how many PAA segments, for
/// series of what length. Cardinality is fixed at the paper's maximum
/// (256; see [`crate::word::CARD_BITS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxConfig {
    /// Number of PAA segments (the paper's w; at most [`MAX_SEGMENTS`]).
    pub segments: usize,
    /// Length of the indexed series.
    pub series_len: usize,
}

impl SaxConfig {
    /// Creates and validates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0, exceeds [`MAX_SEGMENTS`], or exceeds
    /// `series_len`.
    pub fn new(segments: usize, series_len: usize) -> Self {
        assert!(segments > 0, "segments must be positive");
        assert!(
            segments <= MAX_SEGMENTS,
            "at most {MAX_SEGMENTS} segments supported"
        );
        assert!(
            segments <= series_len,
            "cannot split {series_len} points into {segments} segments"
        );
        Self {
            segments,
            series_len,
        }
    }

    /// The paper's default: w = 16 segments.
    pub fn paper_default(series_len: usize) -> Self {
        Self::new(MAX_SEGMENTS.min(series_len), series_len)
    }

    /// Lengths (in points) of each PAA segment.
    pub fn segment_lengths(&self) -> Vec<usize> {
        segment_bounds(self.series_len, self.segments)
            .into_iter()
            .map(|(s, e)| e - s)
            .collect()
    }

    /// Number of possible root subtrees: 2^segments (one per combination
    /// of first bits).
    pub fn num_root_subtrees(&self) -> usize {
        1usize << self.segments
    }
}

/// Reusable converter holding the PAA scratch buffer, so the hot index
/// construction loop performs zero allocations per series.
#[derive(Debug, Clone)]
pub struct SaxConverter {
    config: SaxConfig,
    paa_buf: Vec<f32>,
}

impl SaxConverter {
    /// Creates a converter for the given configuration.
    pub fn new(config: SaxConfig) -> Self {
        Self {
            config,
            paa_buf: vec![0.0; config.segments],
        }
    }

    /// The configuration this converter was built with.
    pub fn config(&self) -> SaxConfig {
        self.config
    }

    /// Converts a series to its full-cardinality iSAX word.
    ///
    /// # Panics
    ///
    /// Debug-panics if the series has the wrong length.
    #[inline]
    pub fn convert(&mut self, series: &[f32]) -> SaxWord {
        debug_assert_eq!(series.len(), self.config.series_len);
        paa_into(series, &mut self.paa_buf);
        let mut word = SaxWord::zeroed();
        for (i, &v) in self.paa_buf.iter().enumerate() {
            word.symbols_mut()[i] = symbol_max_card(v);
        }
        word
    }

    /// Converts a series, also exposing the intermediate PAA (used on the
    /// query side, which needs the PAA for mindist computations).
    #[inline]
    pub fn convert_with_paa(&mut self, series: &[f32]) -> (SaxWord, &[f32]) {
        debug_assert_eq!(series.len(), self.config.series_len);
        paa_into(series, &mut self.paa_buf);
        let mut word = SaxWord::zeroed();
        for (i, &v) in self.paa_buf.iter().enumerate() {
            word.symbols_mut()[i] = symbol_max_card(v);
        }
        (word, &self.paa_buf)
    }
}

/// One-shot conversion without a reusable converter.
pub fn sax_word(series: &[f32], config: SaxConfig) -> SaxWord {
    SaxConverter::new(config).convert(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakpoints::{region_lower, region_upper};
    use crate::word::CARD_BITS;
    use messi_series::paa::paa;

    #[test]
    fn config_validation() {
        let c = SaxConfig::new(16, 256);
        assert_eq!(c.num_root_subtrees(), 65536);
        assert_eq!(c.segment_lengths(), vec![16; 16]);
        let c = SaxConfig::paper_default(128);
        assert_eq!(c.segments, 16);
        let c = SaxConfig::paper_default(8);
        assert_eq!(c.segments, 8);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn config_rejects_too_many_segments() {
        SaxConfig::new(17, 256);
    }

    #[test]
    fn symbols_bracket_the_paa_values() {
        let config = SaxConfig::new(8, 64);
        let series: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin() * 2.0).collect();
        let p = paa(&series, 8);
        let w = sax_word(&series, config);
        for (i, &p_i) in p.iter().enumerate() {
            let s = w.symbol(i) as u16;
            let lo = region_lower(s, CARD_BITS as u8);
            let hi = region_upper(s, CARD_BITS as u8);
            assert!(lo <= p_i && p_i <= hi, "segment {i}: {p_i} ∉ [{lo},{hi}]");
        }
    }

    #[test]
    fn converter_is_reusable_and_consistent() {
        let config = SaxConfig::new(16, 256);
        let mut conv = SaxConverter::new(config);
        let a: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).cos()).collect();
        let b: Vec<f32> = (0..256).map(|i| (i as f32 * 0.02).sin()).collect();
        let wa1 = conv.convert(&a);
        let wb = conv.convert(&b);
        let wa2 = conv.convert(&a);
        assert_eq!(wa1, wa2, "conversion must not depend on converter state");
        assert_ne!(wa1, wb);
        assert_eq!(conv.config(), config);
    }

    #[test]
    fn convert_with_paa_exposes_means() {
        let config = SaxConfig::new(4, 16);
        let mut conv = SaxConverter::new(config);
        let series: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let (w, p) = conv.convert_with_paa(&series);
        assert_eq!(p, paa(&series, 4).as_slice());
        // Monotone series → non-decreasing symbols.
        for i in 1..4 {
            assert!(w.symbol(i) >= w.symbol(i - 1));
        }
    }

    #[test]
    fn extreme_values_map_to_extreme_symbols() {
        let config = SaxConfig::new(2, 4);
        let w = sax_word(&[-100.0, -100.0, 100.0, 100.0], config);
        assert_eq!(w.symbol(0), 0);
        assert_eq!(w.symbol(1), 255);
    }
}
