//! iSAX summarization for the MESSI index.
//!
//! The indexable Symbolic Aggregate approXimation (iSAX; Shieh & Keogh,
//! KDD 2008) represents a z-normalized data series by (1) computing its
//! PAA and (2) quantizing each PAA segment against breakpoints chosen so
//! that a N(0,1) variate is equally likely to fall in each region
//! (§II-B of the MESSI paper, Fig. 1).
//!
//! This crate provides:
//!
//! * [`breakpoints`] — the N(0,1) quantile tables for every cardinality
//!   2¹..2⁸, derived from a single 256-ary table so that coarser symbols
//!   are exactly bit-prefixes of finer ones (the property the index tree
//!   relies on for splitting).
//! * [`word`] — [`word::SaxWord`] (full-cardinality summaries stored in
//!   leaves) and [`word::NodeWord`] (variable-cardinality summaries of
//!   inner nodes).
//! * [`convert`] — series → iSAX conversion (Alg. 3's
//!   `ConvertToiSAX`), with a reusable converter for the hot path.
//! * [`mindist`] — the lower-bound distance kernels: query-vs-node,
//!   query-vs-leaf-entry (with a per-query lookup table and an AVX2
//!   gather kernel — the paper's SIMD lower bounds), and the LB_Keogh
//!   envelope variants used for DTW search.
//! * [`root_key`] — mapping a summary to its root subtree (the first bit
//!   of each segment; at most 2^w subtrees).
//! * [`split`] — the iSAX2.0 balanced node-split policy used when leaves
//!   overflow.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod breakpoints;
pub mod convert;
pub mod mindist;
pub mod root_key;
pub mod split;
pub mod word;

pub use convert::{SaxConfig, SaxConverter};
pub use mindist::MindistTable;
pub use word::{NodeWord, SaxWord, CARD_BITS, MAX_CARDINALITY, MAX_SEGMENTS};
