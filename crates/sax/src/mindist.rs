//! Lower-bound (mindist) distance kernels.
//!
//! The mindist between a query and an iSAX summary lower-bounds the true
//! Euclidean distance between the query and *every* series whose summary
//! it is (Shieh & Keogh 2008): per segment, the distance from the query's
//! PAA value to the summary's breakpoint region, scaled by the segment
//! length:
//!
//! ```text
//! mindist²(q, S) = Σᵢ lenᵢ · gapᵢ²,
//! gapᵢ = bl − q   if q < bl      (bl/bu = region bounds of segment i)
//!        q − bu   if q > bu
//!        0        otherwise
//! ```
//!
//! MESSI computes mindists in two places with very different volume:
//!
//! * **Node mindist** during tree traversal (Alg. 7 line 1) — a few per
//!   node, variable cardinality: [`mindist_sq_node`].
//! * **Leaf-entry mindist** when draining priority queues (Alg. 9
//!   line 2) — one per candidate series, full cardinality, the hot loop.
//!   For this we precompute a per-query [`MindistTable`] (16 × 256
//!   contributions), turning each mindist into 16 table lookups; the SIMD
//!   version performs the lookups with AVX2 gathers. This is the "SIMD
//!   ... for the computation of the lower bound distances" of §II-A (the
//!   branches are resolved at table-build time, once per query, instead
//!   of once per candidate).
//!
//! The `*_env` variants take a LB_Keogh envelope instead of a single PAA
//! vector and lower-bound the *DTW* distance (Fig. 19's MESSI-DTW).

use crate::breakpoints::{region_lower, region_upper};
use crate::convert::SaxConfig;
use crate::word::{NodeWord, SaxWord, CARD_BITS, MAX_CARDINALITY};

/// Per-segment gap between a query PAA value and a breakpoint region.
#[inline]
fn gap(q: f32, bl: f32, bu: f32) -> f32 {
    // At most one of the two terms is positive; ±inf bounds collapse to 0
    // through the max.
    (bl - q).max(0.0) + (q - bu).max(0.0)
}

/// Per-segment gap between an envelope `[lo, hi]` and a region `[bl, bu]`:
/// zero when they overlap, otherwise the separation.
#[inline]
fn gap_env(lo: f32, hi: f32, bl: f32, bu: f32) -> f32 {
    (bl - hi).max(0.0) + (lo - bu).max(0.0)
}

/// Segment lengths as `f32` scale factors for mindist computations.
pub fn segment_scales(config: SaxConfig) -> Vec<f32> {
    config
        .segment_lengths()
        .into_iter()
        .map(|l| l as f32)
        .collect()
}

/// Squared mindist between a query PAA and a variable-cardinality node
/// word. Segments with zero bits contribute nothing (their region is the
/// whole axis).
///
/// # Panics
///
/// Debug-panics if `query_paa` and `scales` are shorter than the config's
/// segment count implied by use.
#[inline]
pub fn mindist_sq_node(query_paa: &[f32], scales: &[f32], node: &NodeWord) -> f32 {
    debug_assert_eq!(query_paa.len(), scales.len());
    let mut sum = 0.0f32;
    for i in 0..query_paa.len() {
        let bits = node.bits(i);
        if bits == 0 {
            continue;
        }
        let s = node.symbol(i);
        let g = gap(query_paa[i], region_lower(s, bits), region_upper(s, bits));
        sum += scales[i] * g * g;
    }
    sum
}

/// Squared mindist between a LB_Keogh envelope (given as the PAAs of its
/// lower and upper series) and a node word — the DTW-search analogue of
/// [`mindist_sq_node`].
#[inline]
pub fn mindist_sq_node_env(
    paa_lower: &[f32],
    paa_upper: &[f32],
    scales: &[f32],
    node: &NodeWord,
) -> f32 {
    debug_assert_eq!(paa_lower.len(), scales.len());
    debug_assert_eq!(paa_upper.len(), scales.len());
    let mut sum = 0.0f32;
    for i in 0..paa_lower.len() {
        let bits = node.bits(i);
        if bits == 0 {
            continue;
        }
        let s = node.symbol(i);
        let g = gap_env(
            paa_lower[i],
            paa_upper[i],
            region_lower(s, bits),
            region_upper(s, bits),
        );
        sum += scales[i] * g * g;
    }
    sum
}

/// Branchy scalar mindist between a query PAA and a full-cardinality leaf
/// word — the SISD code path (each segment performs the breakpoint
/// comparison with data-dependent branches, like the paper's non-SIMD
/// baseline).
#[inline]
pub fn mindist_sq_leaf_scalar(query_paa: &[f32], scales: &[f32], word: &SaxWord) -> f32 {
    debug_assert_eq!(query_paa.len(), scales.len());
    let bits = CARD_BITS as u8;
    let mut sum = 0.0f32;
    for i in 0..query_paa.len() {
        let s = word.symbol(i) as u16;
        let q = query_paa[i];
        let bl = region_lower(s, bits);
        let bu = region_upper(s, bits);
        // Deliberate branches: this is the SISD variant.
        if q < bl {
            let g = bl - q;
            sum += scales[i] * g * g;
        } else if q > bu {
            let g = q - bu;
            sum += scales[i] * g * g;
        }
    }
    sum
}

/// Per-query lookup table of mindist contributions.
///
/// `table[i * 256 + s]` holds `lenᵢ · gap(qᵢ, region(s))²` — the exact
/// contribution of segment `i` having symbol `s`. A leaf-entry mindist is
/// then `segments` dependent-free lookups, which the AVX2 kernel performs
/// as two 8-lane gathers.
///
/// ```
/// use messi_sax::convert::{sax_word, SaxConfig};
/// use messi_sax::mindist::MindistTable;
/// use messi_series::paa::paa;
/// use messi_series::distance::euclidean::ed_sq_scalar;
/// use messi_series::znorm::znormalized;
///
/// let config = SaxConfig::new(16, 256);
/// let query = znormalized(&(0..256).map(|i| (i as f32 * 0.1).sin()).collect::<Vec<_>>());
/// let candidate = znormalized(&(0..256).map(|i| (i as f32 * 0.2).cos()).collect::<Vec<_>>());
///
/// let table = MindistTable::new(&paa(&query, 16), config);
/// let lower_bound = table.mindist_sq(&sax_word(&candidate, config));
/// assert!(lower_bound <= ed_sq_scalar(&query, &candidate));
/// ```
#[derive(Debug, Clone)]
pub struct MindistTable {
    segments: usize,
    table: Vec<f32>,
}

impl MindistTable {
    /// Builds the table for a query PAA.
    ///
    /// # Panics
    ///
    /// Panics if `query_paa.len() != config.segments`.
    pub fn new(query_paa: &[f32], config: SaxConfig) -> Self {
        assert_eq!(query_paa.len(), config.segments, "PAA length mismatch");
        Self::build(config, |i, bl, bu| gap(query_paa[i], bl, bu))
    }

    /// Builds the table for a LB_Keogh envelope (PAA of lower/upper
    /// envelope series) — lower-bounds DTW instead of ED.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn from_envelope(paa_lower: &[f32], paa_upper: &[f32], config: SaxConfig) -> Self {
        assert_eq!(paa_lower.len(), config.segments, "PAA length mismatch");
        assert_eq!(paa_upper.len(), config.segments, "PAA length mismatch");
        Self::build(config, |i, bl, bu| {
            gap_env(paa_lower[i], paa_upper[i], bl, bu)
        })
    }

    fn build(config: SaxConfig, gap_of: impl Fn(usize, f32, f32) -> f32) -> Self {
        let mut this = Self {
            segments: config.segments,
            table: vec![0.0f32; config.segments * MAX_CARDINALITY],
        };
        this.fill(config, gap_of);
        this
    }

    /// Recomputes every entry in place for a new query. Allocation-free:
    /// the reusable query context calls this between batch queries so the
    /// 16 × 256-float table is paid for once per context, not per query.
    fn fill(&mut self, config: SaxConfig, gap_of: impl Fn(usize, f32, f32) -> f32) {
        assert_eq!(
            config.segments, self.segments,
            "refill requires a matching segment count"
        );
        let bits = CARD_BITS as u8;
        for i in 0..config.segments {
            // Segment length, computed without materializing the bounds
            // vector (`segment_scales` allocates; this path must not).
            let (start, end) =
                messi_series::paa::segment_range(config.series_len, config.segments, i);
            let scale = (end - start) as f32;
            let row = &mut self.table[i * MAX_CARDINALITY..(i + 1) * MAX_CARDINALITY];
            for (s, slot) in row.iter_mut().enumerate() {
                let g = gap_of(
                    i,
                    region_lower(s as u16, bits),
                    region_upper(s as u16, bits),
                );
                *slot = scale * g * g;
            }
        }
    }

    /// In-place variant of [`MindistTable::new`]: recomputes the table for
    /// a new query PAA without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `query_paa.len() != config.segments` or the segment count
    /// differs from the one this table was built with.
    pub fn refill(&mut self, query_paa: &[f32], config: SaxConfig) {
        assert_eq!(query_paa.len(), config.segments, "PAA length mismatch");
        self.fill(config, |i, bl, bu| gap(query_paa[i], bl, bu));
    }

    /// In-place variant of [`MindistTable::from_envelope`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or a differing segment count.
    pub fn refill_from_envelope(
        &mut self,
        paa_lower: &[f32],
        paa_upper: &[f32],
        config: SaxConfig,
    ) {
        assert_eq!(paa_lower.len(), config.segments, "PAA length mismatch");
        assert_eq!(paa_upper.len(), config.segments, "PAA length mismatch");
        self.fill(config, |i, bl, bu| {
            gap_env(paa_lower[i], paa_upper[i], bl, bu)
        });
    }

    /// Number of segments the table covers.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Scalar table-lookup mindist (used when AVX2 is unavailable or the
    /// segment count is not 16).
    #[inline]
    pub fn mindist_sq_scalar(&self, word: &SaxWord) -> f32 {
        let mut sum = 0.0f32;
        for i in 0..self.segments {
            sum += self.table[i * MAX_CARDINALITY + word.symbol(i) as usize];
        }
        sum
    }

    /// Table-lookup mindist, dispatched to AVX2 gathers when possible.
    #[inline]
    pub fn mindist_sq(&self, word: &SaxWord) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if self.segments == 16 && messi_series::distance::simd::simd_available() {
            // SAFETY: AVX2 availability checked; table has 16 rows.
            return unsafe { self.mindist_sq_avx2(word) };
        }
        self.mindist_sq_scalar(word)
    }

    /// AVX2 gather kernel: 16 lookups as two 8-lane gathers.
    ///
    /// # Safety
    ///
    /// Requires AVX2 on the executing CPU and `self.segments == 16`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mindist_sq_avx2(&self, word: &SaxWord) -> f32 {
        #[allow(clippy::wildcard_imports)]
        use core::arch::x86_64::*;
        debug_assert_eq!(self.segments, 16);
        // SAFETY (whole block): `word.symbols()` is 16 contiguous bytes;
        // indices are sym + 256·i < 16·256 = table length.
        unsafe {
            let base = self.table.as_ptr();
            let syms = _mm_loadu_si128(word.symbols().as_ptr() as *const __m128i);
            let lo = _mm256_cvtepu8_epi32(syms);
            let hi = _mm256_cvtepu8_epi32(_mm_srli_si128(syms, 8));
            let off_lo = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
            let off_hi = _mm256_setr_epi32(2048, 2304, 2560, 2816, 3072, 3328, 3584, 3840);
            let idx_lo = _mm256_add_epi32(lo, off_lo);
            let idx_hi = _mm256_add_epi32(hi, off_hi);
            let v_lo = _mm256_i32gather_ps(base, idx_lo, 4);
            let v_hi = _mm256_i32gather_ps(base, idx_hi, 4);
            let sum = _mm256_add_ps(v_lo, v_hi);
            // Horizontal sum.
            let hi128 = _mm256_extractf128_ps(sum, 1);
            let lo128 = _mm256_castps256_ps128(sum);
            let s4 = _mm_add_ps(lo128, hi128);
            let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
            let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0b01));
            _mm_cvtss_f32(s1)
        }
    }

    /// Lower bounds for a chunk of up to 8 entries of a struct-of-arrays
    /// symbol block.
    ///
    /// `cols` is a transposed symbol block — column `s` starts at
    /// `s * n` and holds one byte per entry — `n` is the block's entry
    /// count, `base` the chunk's first entry, and `len <= 8` the chunk
    /// size. One bound per entry is written into `out[..len]`. The block
    /// is typically a whole *leaf run* (several adjacent small leaves
    /// sharing one transposition), with the caller chunking `[base,
    /// base + len)` windows across it; because every lane accumulates
    /// its own segment contributions independently, the per-entry
    /// results are bit-identical however the block is re-chunked — a
    /// run-batched sweep equals a per-leaf sweep bit for bit.
    ///
    /// The SIMD variants map *entries* to vector lanes and walk the
    /// segment columns sequentially, so each lane accumulates its segment
    /// contributions in ascending segment order — exactly the order of
    /// [`MindistTable::mindist_sq_scalar`]. SIMD and scalar results are
    /// therefore **bit-identical** per entry. When `use_simd` is set,
    /// full chunks of 8 use the AVX2 gather kernel and 4–7-entry
    /// remainders use the 4-wide SSE tail kernel; 1–3-entry remainders
    /// always take the scalar twin (too short for a quad — and the same
    /// arm in both dispatch modes, so forced-SIMD and forced-scalar runs
    /// agree).
    ///
    /// # Panics
    ///
    /// Panics if the chunk is out of bounds or `cols` is shorter than
    /// `segments * n`.
    #[inline]
    pub fn mindist_sq_soa(
        &self,
        cols: &[u8],
        n: usize,
        base: usize,
        len: usize,
        use_simd: bool,
        out: &mut [f32; 8],
    ) {
        assert!(len <= 8 && base + len <= n, "SoA chunk out of bounds");
        assert!(
            cols.len() >= self.segments * n,
            "SoA column block too short"
        );
        #[cfg(target_arch = "x86_64")]
        if use_simd {
            if len == 8 {
                // SAFETY: bounds asserted above; `use_simd` is only true
                // after `simd_available()` confirmed AVX2 (via
                // `Kernel::uses_simd`).
                unsafe { self.mindist_sq_soa_avx2(cols, n, base, out) };
                return;
            }
            if len >= 4 {
                // SAFETY: bounds asserted above; the tail kernel needs
                // only SSE2, which is baseline on x86_64.
                unsafe { self.mindist_sq_soa_tail_sse(cols, n, base, len, out) };
                return;
            }
        }
        let _ = use_simd;
        self.mindist_sq_soa_scalar(cols, n, base, len, out);
    }

    /// Scalar twin of the SoA batch kernel: per entry, segment
    /// contributions summed in ascending segment order, reading the
    /// transposed columns. Bit-identical to
    /// [`MindistTable::mindist_sq_scalar`] (on the entry's word), to the
    /// AVX2 batch lanes, and to the SSE tail quad.
    pub fn mindist_sq_soa_scalar(
        &self,
        cols: &[u8],
        n: usize,
        base: usize,
        len: usize,
        out: &mut [f32; 8],
    ) {
        for (lane, slot) in out.iter_mut().take(len).enumerate() {
            let mut sum = 0.0f32;
            for s in 0..self.segments {
                let sym = cols[s * n + base + lane] as usize;
                sum += self.table[s * MAX_CARDINALITY + sym];
            }
            *slot = sum;
        }
    }

    /// 4-wide SSE tail kernel for partial SoA chunks of 4–7 entries: the
    /// first four entries ride one `__m128` accumulator (SSE2 has no
    /// gather, so the four table lookups per segment are scalar loads
    /// packed into a lane quad), entries 4..len finish on the scalar
    /// loop. Every lane still sums its contributions in ascending
    /// segment order with plain per-lane adds, so the result is
    /// bit-identical to [`MindistTable::mindist_sq_soa_scalar`].
    ///
    /// # Safety
    ///
    /// `4 <= len <= 7`, `base + len <= n`, and
    /// `cols.len() >= segments * n` (asserted by the public dispatcher).
    /// SSE2 is baseline on `x86_64`, so no runtime feature check is
    /// needed.
    #[cfg(target_arch = "x86_64")]
    unsafe fn mindist_sq_soa_tail_sse(
        &self,
        cols: &[u8],
        n: usize,
        base: usize,
        len: usize,
        out: &mut [f32; 8],
    ) {
        #[allow(clippy::wildcard_imports)]
        use core::arch::x86_64::*;
        debug_assert!((4..8).contains(&len));
        // SAFETY (whole block): per segment `s < segments`, the four byte
        // reads at `s*n + base .. +4` stay inside `cols` (`base + 4 <=
        // base + len <= n`, block len `>= segments*n`); each table index
        // is `sym + 256·s < segments·256` = table length; the store
        // writes lanes 0..4 of the 8-lane `out`.
        unsafe {
            let mut acc = _mm_setzero_ps();
            let tbl = self.table.as_ptr();
            for s in 0..self.segments {
                let p = cols.as_ptr().add(s * n + base);
                let row = tbl.add(s * MAX_CARDINALITY);
                let quad = _mm_setr_ps(
                    *row.add(usize::from(*p)),
                    *row.add(usize::from(*p.add(1))),
                    *row.add(usize::from(*p.add(2))),
                    *row.add(usize::from(*p.add(3))),
                );
                acc = _mm_add_ps(acc, quad);
            }
            _mm_storeu_ps(out.as_mut_ptr(), acc);
        }
        for (lane, slot) in out.iter_mut().enumerate().take(len).skip(4) {
            let mut sum = 0.0f32;
            for s in 0..self.segments {
                let sym = cols[s * n + base + lane] as usize;
                sum += self.table[s * MAX_CARDINALITY + sym];
            }
            *slot = sum;
        }
    }

    /// AVX2 SoA batch kernel: 8 entries per call, one gather per segment
    /// column, plain (non-reassociating) adds so every lane matches the
    /// scalar accumulation order bit for bit.
    ///
    /// # Safety
    ///
    /// Requires AVX2 on the executing CPU; `base + 8 <= n` and
    /// `cols.len() >= segments * n` (asserted by the public dispatcher).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mindist_sq_soa_avx2(&self, cols: &[u8], n: usize, base: usize, out: &mut [f32; 8]) {
        #[allow(clippy::wildcard_imports)]
        use core::arch::x86_64::*;
        // SAFETY (whole block): per segment `s < segments`, the 8-byte load
        // at `s*n + base` stays inside `cols` (`base + 8 <= n`, block len
        // `>= segments*n`); gather indices are `sym + 256·s < segments·256`
        // = table length; `out` has exactly 8 lanes for the store.
        unsafe {
            let mut acc = _mm256_setzero_ps();
            let tbl = self.table.as_ptr();
            for s in 0..self.segments {
                let p = cols.as_ptr().add(s * n + base);
                let syms = _mm_loadl_epi64(p as *const __m128i);
                let idx = _mm256_add_epi32(
                    _mm256_cvtepu8_epi32(syms),
                    _mm256_set1_epi32((s * MAX_CARDINALITY) as i32),
                );
                acc = _mm256_add_ps(acc, _mm256_i32gather_ps(tbl, idx, 4));
            }
            _mm256_storeu_ps(out.as_mut_ptr(), acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{sax_word, SaxConfig, SaxConverter};
    use crate::root_key::node_word_for_root_key;
    use messi_series::distance::euclidean::ed_sq_scalar;
    use messi_series::paa::paa;
    use messi_series::stats::approx_eq;
    use messi_series::znorm::znormalized;

    fn mk_series(n: usize, seed: u32) -> Vec<f32> {
        znormalized(
            &(0..n)
                .map(|i| ((i as f32 + seed as f32 * 3.1) * (0.05 + seed as f32 * 0.013)).sin())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn mindist_lower_bounds_true_distance_leaf() {
        let config = SaxConfig::new(16, 256);
        let scales = segment_scales(config);
        for qs in 0..6u32 {
            let q = mk_series(256, qs);
            let qp = paa(&q, 16);
            let table = MindistTable::new(&qp, config);
            for cs in 6..16u32 {
                let c = mk_series(256, cs);
                let w = sax_word(&c, config);
                let true_d = ed_sq_scalar(&q, &c);
                let lb_table = table.mindist_sq_scalar(&w);
                let lb_branchy = mindist_sq_leaf_scalar(&qp, &scales, &w);
                assert!(
                    lb_table <= true_d + 1e-3,
                    "q{qs} c{cs}: lb {lb_table} > d {true_d}"
                );
                assert!(approx_eq(lb_table, lb_branchy, 1e-4));
            }
        }
    }

    #[test]
    fn mindist_lower_bounds_true_distance_node() {
        let config = SaxConfig::new(8, 64);
        let scales = segment_scales(config);
        let mut conv = SaxConverter::new(config);
        for qs in 0..4u32 {
            let q = mk_series(64, qs);
            let qp = paa(&q, 8);
            for cs in 4..10u32 {
                let c = mk_series(64, cs);
                let w = conv.convert(&c);
                let key = crate::root_key::root_key(&w, 8);
                let node = node_word_for_root_key(key, 8);
                let true_d = ed_sq_scalar(&q, &c);
                let lb = mindist_sq_node(&qp, &scales, &node);
                assert!(lb <= true_d + 1e-3, "q{qs} c{cs}: {lb} > {true_d}");
            }
        }
    }

    #[test]
    fn node_mindist_never_exceeds_leaf_mindist() {
        // Coarser regions ⇒ weaker (smaller) bounds.
        let config = SaxConfig::new(8, 64);
        let scales = segment_scales(config);
        let q = mk_series(64, 1);
        let qp = paa(&q, 8);
        let c = mk_series(64, 7);
        let w = sax_word(&c, config);
        let leaf_lb = mindist_sq_leaf_scalar(&qp, &scales, &w);
        let key = crate::root_key::root_key(&w, 8);
        let node = node_word_for_root_key(key, 8);
        let node_lb = mindist_sq_node(&qp, &scales, &node);
        assert!(node_lb <= leaf_lb + 1e-4, "{node_lb} > {leaf_lb}");
    }

    #[test]
    fn refinement_strengthens_node_bounds() {
        let config = SaxConfig::new(4, 32);
        let scales = segment_scales(config);
        let q = mk_series(32, 2);
        let qp = paa(&q, 4);
        let c = mk_series(32, 9);
        let w = sax_word(&c, config);
        let mut node = node_word_for_root_key(crate::root_key::root_key(&w, 4), 4);
        let mut last = mindist_sq_node(&qp, &scales, &node);
        for seg in 0..4 {
            for _ in 1..CARD_BITS {
                let (zero, one) = node.refine(seg);
                node = if one.contains(&w, 4) { one } else { zero };
                let lb = mindist_sq_node(&qp, &scales, &node);
                assert!(lb >= last - 1e-4, "refinement weakened bound");
                last = lb;
            }
        }
    }

    #[test]
    fn simd_mindist_matches_scalar() {
        let config = SaxConfig::new(16, 256);
        let q = mk_series(256, 3);
        let qp = paa(&q, 16);
        let table = MindistTable::new(&qp, config);
        for cs in 0..20u32 {
            let c = mk_series(256, cs + 50);
            let w = sax_word(&c, config);
            let scalar = table.mindist_sq_scalar(&w);
            let dispatched = table.mindist_sq(&w);
            assert!(
                approx_eq(scalar, dispatched, 1e-5),
                "cs={cs}: {scalar} vs {dispatched}"
            );
        }
    }

    /// Transposes words into an SoA column block (column `s` at `s * n`).
    fn transpose(words: &[SaxWord], segments: usize) -> Vec<u8> {
        let n = words.len();
        let mut cols = vec![0u8; segments * n];
        for (j, w) in words.iter().enumerate() {
            for (s, col) in cols.chunks_exact_mut(n).enumerate() {
                col[j] = w.symbol(s);
            }
        }
        cols
    }

    #[test]
    fn soa_batch_is_bit_identical_to_per_entry_scalar() {
        let config = SaxConfig::new(16, 256);
        let q = mk_series(256, 21);
        let table = MindistTable::new(&paa(&q, 16), config);
        // 19 entries: two full chunks of 8 plus a partial chunk of 3.
        let words: Vec<SaxWord> = (0..19u32)
            .map(|cs| sax_word(&mk_series(256, cs + 100), config))
            .collect();
        let n = words.len();
        let cols = transpose(&words, 16);
        for use_simd in [false, messi_series::distance::simd::simd_available()] {
            let mut base = 0;
            while base < n {
                let len = (n - base).min(8);
                let mut out = [0.0f32; 8];
                table.mindist_sq_soa(&cols, n, base, len, use_simd, &mut out);
                for lane in 0..len {
                    let expected = table.mindist_sq_scalar(&words[base + lane]);
                    assert_eq!(
                        out[lane].to_bits(),
                        expected.to_bits(),
                        "use_simd={use_simd} base={base} lane={lane}"
                    );
                }
                base += len;
            }
        }
    }

    #[test]
    fn sse_tail_quad_covers_every_partial_length() {
        // Remainder chunks of 4–7 entries take the SSE tail kernel under
        // SIMD dispatch; 1–3 stay scalar in both arms. Every length must
        // be bit-identical to the per-entry scalar path.
        let config = SaxConfig::new(16, 256);
        let q = mk_series(256, 51);
        let table = MindistTable::new(&paa(&q, 16), config);
        for len in 1..8usize {
            // `n = 8 + len`: one full chunk, then a partial of exactly `len`.
            let n = 8 + len;
            let words: Vec<SaxWord> = (0..n as u32)
                .map(|cs| sax_word(&mk_series(256, cs + 200), config))
                .collect();
            let cols = transpose(&words, 16);
            for use_simd in [false, messi_series::distance::simd::simd_available()] {
                let mut out = [0.0f32; 8];
                table.mindist_sq_soa(&cols, n, 8, len, use_simd, &mut out);
                for lane in 0..len {
                    let expected = table.mindist_sq_scalar(&words[8 + lane]);
                    assert_eq!(
                        out[lane].to_bits(),
                        expected.to_bits(),
                        "use_simd={use_simd} len={len} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn rechunking_a_run_block_never_changes_a_bit() {
        // The engine scans one column block under two chunk grids: the
        // per-leaf grid restarts `base` at every leaf boundary, the
        // run-batched grid walks the whole block in aligned chunks of 8.
        // Per-entry results must be bit-identical under *any* chunking —
        // here every window `[base, base + len)` of a 21-entry block, in
        // both dispatch modes.
        let config = SaxConfig::new(16, 256);
        let q = mk_series(256, 77);
        let table = MindistTable::new(&paa(&q, 16), config);
        let n = 21usize;
        let words: Vec<SaxWord> = (0..n as u32)
            .map(|cs| sax_word(&mk_series(256, cs + 300), config))
            .collect();
        let cols = transpose(&words, 16);
        let expected: Vec<u32> = words
            .iter()
            .map(|w| table.mindist_sq_scalar(w).to_bits())
            .collect();
        for use_simd in [false, messi_series::distance::simd::simd_available()] {
            for base in 0..n {
                for len in 1..=(n - base).min(8) {
                    let mut out = [0.0f32; 8];
                    table.mindist_sq_soa(&cols, n, base, len, use_simd, &mut out);
                    for lane in 0..len {
                        assert_eq!(
                            out[lane].to_bits(),
                            expected[base + lane],
                            "use_simd={use_simd} base={base} len={len} lane={lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn soa_batch_works_for_eight_segments() {
        // Non-16 segment counts must take the same code path (unlike the
        // per-entry gather kernel, the SoA kernel has no 16-row special
        // case).
        let config = SaxConfig::new(8, 64);
        let q = mk_series(64, 31);
        let table = MindistTable::new(&paa(&q, 8), config);
        let words: Vec<SaxWord> = (0..8u32)
            .map(|cs| sax_word(&mk_series(64, cs + 40), config))
            .collect();
        let cols = transpose(&words, 8);
        let mut out = [0.0f32; 8];
        table.mindist_sq_soa(
            &cols,
            8,
            0,
            8,
            messi_series::distance::simd::simd_available(),
            &mut out,
        );
        for (lane, w) in words.iter().enumerate() {
            assert_eq!(out[lane].to_bits(), table.mindist_sq_scalar(w).to_bits());
        }
    }

    #[test]
    fn mindist_zero_for_own_summary() {
        // The query's own iSAX region contains its PAA, so mindist = 0.
        let config = SaxConfig::new(16, 256);
        let q = mk_series(256, 4);
        let qp = paa(&q, 16);
        let w = sax_word(&q, config);
        let table = MindistTable::new(&qp, config);
        assert_eq!(table.mindist_sq_scalar(&w), 0.0);
        assert_eq!(table.segments(), 16);
    }

    #[test]
    fn envelope_mindist_lower_bounds_dtw() {
        use messi_series::distance::dtw::{dtw_sq, DtwParams};
        use messi_series::distance::lb_keogh::Envelope;
        let config = SaxConfig::new(16, 128);
        let scales = segment_scales(config);
        let params = DtwParams::paper_default(128);
        for qs in 0..4u32 {
            let q = mk_series(128, qs);
            let env = Envelope::new(&q, params);
            let pl = paa(&env.lower, 16);
            let pu = paa(&env.upper, 16);
            let table = MindistTable::from_envelope(&pl, &pu, config);
            for cs in 10..18u32 {
                let c = mk_series(128, cs);
                let w = sax_word(&c, config);
                let d = dtw_sq(&q, &c, params);
                let lb_leaf = table.mindist_sq(&w);
                assert!(lb_leaf <= d + 1e-3, "q{qs} c{cs}: leaf {lb_leaf} > {d}");
                let key = crate::root_key::root_key(&w, 16);
                let node = node_word_for_root_key(key, 16);
                let lb_node = mindist_sq_node_env(&pl, &pu, &scales, &node);
                assert!(lb_node <= d + 1e-3, "q{qs} c{cs}: node {lb_node} > {d}");
                assert!(lb_node <= lb_leaf + 1e-3);
            }
        }
    }

    #[test]
    fn envelope_mindist_weaker_than_point_mindist() {
        // The envelope bound must not exceed the ED bound (envelope
        // regions are wider than the point query).
        let config = SaxConfig::new(16, 128);
        let q = mk_series(128, 5);
        let qp = paa(&q, 16);
        use messi_series::distance::dtw::DtwParams;
        use messi_series::distance::lb_keogh::Envelope;
        let env = Envelope::new(&q, DtwParams::paper_default(128));
        let pl = paa(&env.lower, 16);
        let pu = paa(&env.upper, 16);
        let t_point = MindistTable::new(&qp, config);
        let t_env = MindistTable::from_envelope(&pl, &pu, config);
        for cs in 20..28u32 {
            let c = mk_series(128, cs);
            let w = sax_word(&c, config);
            assert!(t_env.mindist_sq(&w) <= t_point.mindist_sq(&w) + 1e-4);
        }
    }

    #[test]
    fn refill_matches_fresh_build() {
        let config = SaxConfig::new(16, 256);
        let q1 = mk_series(256, 11);
        let q2 = mk_series(256, 12);
        let mut reused = MindistTable::new(&paa(&q1, 16), config);
        reused.refill(&paa(&q2, 16), config);
        let fresh = MindistTable::new(&paa(&q2, 16), config);
        for cs in 0..10u32 {
            let w = sax_word(&mk_series(256, cs + 30), config);
            assert_eq!(
                reused.mindist_sq_scalar(&w).to_bits(),
                fresh.mindist_sq_scalar(&w).to_bits(),
                "refilled table must be bit-identical to a fresh one"
            );
        }
        // Envelope refill likewise matches a fresh envelope table.
        use messi_series::distance::dtw::DtwParams;
        use messi_series::distance::lb_keogh::Envelope;
        let env = Envelope::new(&q1, DtwParams::paper_default(256));
        let (pl, pu) = (paa(&env.lower, 16), paa(&env.upper, 16));
        reused.refill_from_envelope(&pl, &pu, config);
        let fresh_env = MindistTable::from_envelope(&pl, &pu, config);
        let w = sax_word(&mk_series(256, 77), config);
        assert_eq!(
            reused.mindist_sq_scalar(&w).to_bits(),
            fresh_env.mindist_sq_scalar(&w).to_bits()
        );
        // A refill for a different series length reuses the same buffer:
        // table size depends only on the segment count.
        let other = SaxConfig::new(16, 128);
        let q3 = mk_series(128, 13);
        reused.refill(&paa(&q3, 16), other);
        let fresh_other = MindistTable::new(&paa(&q3, 16), other);
        let w = sax_word(&mk_series(128, 78), other);
        assert_eq!(
            reused.mindist_sq_scalar(&w).to_bits(),
            fresh_other.mindist_sq_scalar(&w).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "matching segment count")]
    fn refill_rejects_segment_mismatch() {
        let c16 = SaxConfig::new(16, 256);
        let c8 = SaxConfig::new(8, 256);
        let q = mk_series(256, 14);
        let mut t = MindistTable::new(&paa(&q, 16), c16);
        t.refill(&paa(&q, 8), c8);
    }

    #[test]
    fn gap_handles_infinite_bounds() {
        assert_eq!(gap(0.5, f32::NEG_INFINITY, 1.0), 0.0);
        assert_eq!(gap(2.0, f32::NEG_INFINITY, 1.0), 1.0);
        assert_eq!(gap(-3.0, -1.0, f32::INFINITY), 2.0);
        assert_eq!(gap_env(-0.5, 0.5, f32::NEG_INFINITY, f32::INFINITY), 0.0);
        assert_eq!(gap_env(1.5, 2.5, f32::NEG_INFINITY, 1.0), 0.5);
        assert_eq!(gap_env(-2.5, -1.5, -1.0, f32::INFINITY), 0.5);
    }
}
