//! Root-subtree keys.
//!
//! The index root has (at most) 2^w children, one for each combination of
//! the *first* bit of each segment's symbol (§II-B: "the root node points
//! to several children nodes, 2^w in the worst case"). The iSAX buffers of
//! the construction phase are indexed by the same key (Alg. 3 line 8:
//! "find appropriate root subtree where isax must be stored").
//!
//! The key packs segment 0's first bit as the most significant bit, so
//! keys order lexicographically by segment — matching the authors' layout.

use crate::word::{NodeWord, SaxWord, CARD_BITS};

/// Root-subtree key of a full-cardinality word under `segments` segments.
///
/// # Panics
///
/// Debug-panics if `segments` exceeds [`crate::word::MAX_SEGMENTS`].
#[inline]
pub fn root_key(word: &SaxWord, segments: usize) -> usize {
    debug_assert!(segments <= crate::word::MAX_SEGMENTS);
    let mut key = 0usize;
    for i in 0..segments {
        key = (key << 1) | (word.symbol(i) >> (CARD_BITS - 1)) as usize;
    }
    key
}

/// The [`NodeWord`] of the root child for `key`: every segment refined to
/// one bit, with the bits spelled out by the key.
///
/// # Panics
///
/// Panics if `key >= 2^segments`.
pub fn node_word_for_root_key(key: usize, segments: usize) -> NodeWord {
    assert!(key < (1usize << segments), "key {key} out of range");
    let mut symbols = [0u16; crate::word::MAX_SEGMENTS];
    let mut bits = [0u8; crate::word::MAX_SEGMENTS];
    for (i, b) in bits.iter_mut().enumerate().take(segments) {
        *b = 1;
        symbols[i] = ((key >> (segments - 1 - i)) & 1) as u16;
    }
    NodeWord::new(&symbols[..segments], &bits[..segments])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packs_first_bits_in_segment_order() {
        // Segment symbols: 0b1xxxxxxx, 0b0xxxxxxx, 0b1xxxxxxx → key 0b101.
        let w = SaxWord::new(&[0x80, 0x7F, 0xFF]);
        assert_eq!(root_key(&w, 3), 0b101);
        assert_eq!(root_key(&w, 1), 0b1);
        assert_eq!(root_key(&w, 2), 0b10);
    }

    #[test]
    fn key_range_is_bounded() {
        let w = SaxWord::new(&[0xFF; 16]);
        assert_eq!(root_key(&w, 16), (1 << 16) - 1);
        let w = SaxWord::new(&[0x00; 16]);
        assert_eq!(root_key(&w, 16), 0);
    }

    #[test]
    fn node_word_for_key_contains_exactly_its_words() {
        let segments = 4;
        for key in 0..(1usize << segments) {
            let nw = node_word_for_root_key(key, segments);
            assert_eq!(nw.total_bits(segments), segments as u32);
            // A word whose first bits spell the key is contained...
            let mut symbols = [0u8; 16];
            for (i, s) in symbols.iter_mut().enumerate().take(segments) {
                *s = (((key >> (segments - 1 - i)) & 1) as u8) << 7 | 0x2A;
            }
            let w = SaxWord::new(&symbols[..segments]);
            assert!(nw.contains(&w, segments));
            assert_eq!(root_key(&w, segments), key);
            // ...and one with a flipped first bit is not.
            let mut other = symbols;
            other[0] ^= 0x80;
            let w2 = SaxWord::new(&other[..segments]);
            assert!(!nw.contains(&w2, segments));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_oversized_key() {
        node_word_for_root_key(16, 4);
    }
}
