//! Node-split policy.
//!
//! When a leaf exceeds its capacity it becomes an inner node and its
//! contents are redistributed to two new leaves by refining one segment's
//! cardinality by one bit (§II-B). The segment is chosen to produce "the
//! most balanced split of the contents of the node to its two new
//! children" (iSAX 2.0, Camerra et al., KAIS 2014): for each refinable
//! segment, count how many entries would take the 0-branch vs the
//! 1-branch and pick the segment minimizing the imbalance. Ties prefer
//! the segment with the fewest bits (keeping the summary balanced across
//! segments, which helps mindist tightness), then the lowest index.

use crate::word::{NodeWord, SaxWord, CARD_BITS};

/// Outcome of evaluating a candidate split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitChoice {
    /// Which segment to refine.
    pub segment: usize,
    /// Entries that would go to the 0-child.
    pub zeros: usize,
    /// Entries that would go to the 1-child.
    pub ones: usize,
}

impl SplitChoice {
    /// Absolute imbalance of the split.
    pub fn imbalance(&self) -> usize {
        self.zeros.abs_diff(self.ones)
    }

    /// Whether the split actually separates entries (both sides non-empty).
    pub fn is_separating(&self) -> bool {
        self.zeros > 0 && self.ones > 0
    }
}

/// Chooses the most balanced split segment for `entries` under `node`.
///
/// Returns `None` when every segment is already at maximum cardinality
/// (the node cannot split — with 16 segments × 8 bits this needs > 2^128
/// colliding summaries, i.e. only identical words, which the index caps
/// with an overflow leaf).
pub fn choose_split<'a, I>(node: &NodeWord, segments: usize, entries: I) -> Option<SplitChoice>
where
    I: IntoIterator<Item = &'a SaxWord>,
    I::IntoIter: Clone,
{
    let iter = entries.into_iter();
    let mut best: Option<SplitChoice> = None;
    for segment in 0..segments {
        if node.bits(segment) as usize >= CARD_BITS {
            continue;
        }
        let mut zeros = 0usize;
        let mut ones = 0usize;
        for w in iter.clone() {
            if node.child_of(w, segment) {
                ones += 1;
            } else {
                zeros += 1;
            }
        }
        let cand = SplitChoice {
            segment,
            zeros,
            ones,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                let (ci, bi) = (cand.imbalance(), b.imbalance());
                ci < bi || ci == bi && node.bits(segment) < node.bits(b.segment)
            }
        };
        if better {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{sax_word, SaxConfig};
    use crate::root_key::{node_word_for_root_key, root_key};

    #[test]
    fn picks_the_separating_segment() {
        // Words identical in segment 0's next bit, differing in segment 1's.
        let node = NodeWord::new(&[0b1, 0b0], &[1, 1]);
        let words = [
            SaxWord::new(&[0b1000_0000, 0b0000_0000]),
            SaxWord::new(&[0b1000_0001, 0b0100_0000]),
            SaxWord::new(&[0b1000_0010, 0b0000_0001]),
            SaxWord::new(&[0b1000_0011, 0b0100_0001]),
        ];
        let choice = choose_split(&node, 2, words.iter()).unwrap();
        assert_eq!(
            choice.segment, 1,
            "segment 1 splits 2/2, segment 0 splits 4/0"
        );
        assert_eq!(choice.zeros, 2);
        assert_eq!(choice.ones, 2);
        assert!(choice.is_separating());
        assert_eq!(choice.imbalance(), 0);
    }

    #[test]
    fn tie_break_prefers_fewer_bits() {
        // Both segments split 1/1; segment 1 has fewer bits → preferred.
        let node = NodeWord::new(&[0b10, 0b0], &[2, 1]);
        let words = [
            SaxWord::new(&[0b1000_0000, 0b0000_0000]),
            SaxWord::new(&[0b1010_0000, 0b0100_0000]),
        ];
        let choice = choose_split(&node, 2, words.iter()).unwrap();
        assert_eq!(choice.segment, 1);
    }

    #[test]
    fn identical_words_cannot_separate() {
        let node = NodeWord::new(&[0b1], &[1]);
        let words = [SaxWord::new(&[0b1010_1010]); 5];
        let choice = choose_split(&node, 1, words.iter()).unwrap();
        assert!(!choice.is_separating());
        assert_eq!(choice.zeros + choice.ones, 5);
    }

    #[test]
    fn none_when_everything_at_max_cardinality() {
        let node = NodeWord::new(&[0xAB, 0x12], &[8, 8]);
        let words = [SaxWord::new(&[0xAB, 0x12])];
        assert!(choose_split(&node, 2, words.iter()).is_none());
    }

    #[test]
    fn split_children_partition_real_words() {
        // End to end: derive words from series, split a root child, check
        // every word lands in exactly one child.
        let config = SaxConfig::new(4, 32);
        let words: Vec<SaxWord> = (0..40u32)
            .map(|s| {
                let series: Vec<f32> = (0..32)
                    .map(|i| ((i as f32 + s as f32) * 0.37).sin() * 1.5)
                    .collect();
                sax_word(&series, config)
            })
            .collect();
        // Group by root key; split the fullest group.
        let mut by_key: std::collections::HashMap<usize, Vec<SaxWord>> = Default::default();
        for w in &words {
            by_key.entry(root_key(w, 4)).or_default().push(*w);
        }
        let (key, group) = by_key
            .iter()
            .max_by_key(|(_, v)| v.len())
            .expect("non-empty");
        let node = node_word_for_root_key(*key, 4);
        let choice = choose_split(&node, 4, group.iter()).unwrap();
        let (zero, one) = node.refine(choice.segment);
        let mut zeros = 0;
        let mut ones = 0;
        for w in group {
            match (zero.contains(w, 4), one.contains(w, 4)) {
                (true, false) => zeros += 1,
                (false, true) => ones += 1,
                other => panic!("word in {other:?} children"),
            }
        }
        assert_eq!(zeros, choice.zeros);
        assert_eq!(ones, choice.ones);
    }
}
