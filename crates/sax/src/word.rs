//! SAX words: full-cardinality summaries and variable-cardinality node
//! summaries.
//!
//! Symbols are produced at the maximum cardinality (256, i.e. 8 bits) and
//! coarsened by taking bit prefixes, following the iSAX convention: the
//! first (most significant) bit of a symbol is the coarsest distinction
//! (above/below 0), and each additional bit halves the region.

/// Maximum number of PAA segments supported (the paper fixes w = 16).
pub const MAX_SEGMENTS: usize = 16;

/// Bits per symbol at the maximum cardinality (the paper uses 256 symbols
/// = 8 bits, "the maximum alphabet cardinality").
pub const CARD_BITS: usize = 8;

/// Maximum alphabet cardinality (2^[`CARD_BITS`]).
pub const MAX_CARDINALITY: usize = 1 << CARD_BITS;

/// A full-cardinality iSAX word: one 8-bit symbol per segment.
///
/// This is what index leaves store next to each series position
/// (16 bytes for the paper's w = 16 — compact enough that leaf scans are
/// cache-friendly, which is the point of storing summaries *in* the
/// buffers rather than pointers to them, §I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaxWord {
    symbols: [u8; MAX_SEGMENTS],
}

impl SaxWord {
    /// Builds a word from at most [`MAX_SEGMENTS`] symbols; unused
    /// positions are zero.
    ///
    /// # Panics
    ///
    /// Panics if `symbols.len() > MAX_SEGMENTS`.
    pub fn new(symbols: &[u8]) -> Self {
        assert!(
            symbols.len() <= MAX_SEGMENTS,
            "at most {MAX_SEGMENTS} segments supported, got {}",
            symbols.len()
        );
        let mut s = [0u8; MAX_SEGMENTS];
        s[..symbols.len()].copy_from_slice(symbols);
        Self { symbols: s }
    }

    /// The all-zeros word (every PAA value in the lowest region).
    pub fn zeroed() -> Self {
        Self {
            symbols: [0; MAX_SEGMENTS],
        }
    }

    /// Symbol of segment `i` at full cardinality.
    #[inline]
    pub fn symbol(&self, i: usize) -> u8 {
        self.symbols[i]
    }

    /// All symbols (including unused tail positions).
    #[inline]
    pub fn symbols(&self) -> &[u8; MAX_SEGMENTS] {
        &self.symbols
    }

    /// Mutable access for converters.
    #[inline]
    pub(crate) fn symbols_mut(&mut self) -> &mut [u8; MAX_SEGMENTS] {
        &mut self.symbols
    }

    /// The `bits` most significant bits of segment `i`'s symbol.
    #[inline]
    pub fn prefix(&self, i: usize, bits: u8) -> u16 {
        debug_assert!(bits as usize <= CARD_BITS);
        if bits == 0 {
            0
        } else {
            (self.symbols[i] >> (CARD_BITS as u8 - bits)) as u16
        }
    }
}

/// A variable-cardinality iSAX word: per-segment symbol prefix + bit count.
///
/// Inner nodes of the index tree carry one of these; refining a split adds
/// one bit to one segment (§II-B: "increasing the cardinality of the iSAX
/// summary of one of the segments").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeWord {
    /// Symbol prefixes, right-aligned: `symbols[i] < 2^bits[i]`.
    symbols: [u16; MAX_SEGMENTS],
    /// Cardinality bits per segment (0 = segment not yet refined; only the
    /// conceptual root has all-zero bits).
    bits: [u8; MAX_SEGMENTS],
}

impl NodeWord {
    /// The unrefined word (zero bits everywhere) — the conceptual root.
    pub fn root() -> Self {
        Self {
            symbols: [0; MAX_SEGMENTS],
            bits: [0; MAX_SEGMENTS],
        }
    }

    /// Builds a word from parallel prefix/bit slices.
    ///
    /// # Panics
    ///
    /// Panics if slices have different lengths, exceed [`MAX_SEGMENTS`],
    /// any bit count exceeds [`CARD_BITS`], or a prefix does not fit its
    /// bit count.
    pub fn new(symbols: &[u16], bits: &[u8]) -> Self {
        assert_eq!(symbols.len(), bits.len(), "parallel slices must match");
        assert!(symbols.len() <= MAX_SEGMENTS);
        let mut w = Self::root();
        for i in 0..symbols.len() {
            assert!(bits[i] as usize <= CARD_BITS, "segment {i}: too many bits");
            assert!(
                (symbols[i] as u32) < (1u32 << bits[i]) || bits[i] == 0 && symbols[i] == 0,
                "segment {i}: prefix {} does not fit in {} bits",
                symbols[i],
                bits[i]
            );
            w.symbols[i] = symbols[i];
            w.bits[i] = bits[i];
        }
        w
    }

    /// Symbol prefix of segment `i`.
    #[inline]
    pub fn symbol(&self, i: usize) -> u16 {
        self.symbols[i]
    }

    /// Cardinality bits of segment `i`.
    #[inline]
    pub fn bits(&self, i: usize) -> u8 {
        self.bits[i]
    }

    /// Whether the full-cardinality word `w` falls under this node word
    /// (each segment's full symbol starts with this node's prefix).
    pub fn contains(&self, w: &SaxWord, segments: usize) -> bool {
        for i in 0..segments {
            if w.prefix(i, self.bits[i]) != self.symbols[i] {
                return false;
            }
        }
        true
    }

    /// The two children produced by adding one bit to `segment`: the
    /// child whose new bit is 0, and the child whose new bit is 1.
    ///
    /// # Panics
    ///
    /// Panics if the segment is already at full cardinality.
    pub fn refine(&self, segment: usize) -> (NodeWord, NodeWord) {
        assert!(
            (self.bits[segment] as usize) < CARD_BITS,
            "segment {segment} already at maximum cardinality"
        );
        let mut zero = *self;
        zero.bits[segment] += 1;
        zero.symbols[segment] <<= 1;
        let mut one = zero;
        one.symbols[segment] |= 1;
        (zero, one)
    }

    /// Which child of a split on `segment` the word `w` belongs to:
    /// `false` = the 0-child, `true` = the 1-child.
    ///
    /// # Panics
    ///
    /// Debug-panics if `w` is not contained in this node.
    #[inline]
    pub fn child_of(&self, w: &SaxWord, segment: usize) -> bool {
        debug_assert!((self.bits[segment] as usize) < CARD_BITS);
        let new_bits = self.bits[segment] + 1;
        let prefix = w.prefix(segment, new_bits);
        prefix & 1 == 1
    }

    /// Total bits across the first `segments` segments — a measure of node
    /// depth used in tests and diagnostics.
    pub fn total_bits(&self, segments: usize) -> u32 {
        self.bits[..segments].iter().map(|&b| b as u32).sum()
    }

    /// Formats like the paper's notation, e.g. `10_2 00_2 01_2`.
    pub fn display(&self, segments: usize) -> String {
        let mut out = String::new();
        for i in 0..segments {
            if i > 0 {
                out.push(' ');
            }
            if self.bits[i] == 0 {
                out.push('*');
            } else {
                for k in (0..self.bits[i]).rev() {
                    out.push(if (self.symbols[i] >> k) & 1 == 1 {
                        '1'
                    } else {
                        '0'
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sax_word_prefixes() {
        let w = SaxWord::new(&[0b1011_0010, 0b0100_0001]);
        assert_eq!(w.prefix(0, 1), 0b1);
        assert_eq!(w.prefix(0, 3), 0b101);
        assert_eq!(w.prefix(0, 8), 0b1011_0010);
        assert_eq!(w.prefix(1, 2), 0b01);
        assert_eq!(w.prefix(1, 0), 0);
    }

    #[test]
    fn node_word_contains_matching_prefixes() {
        let w = SaxWord::new(&[0b1011_0010, 0b0100_0001, 0b1111_1111]);
        let nw = NodeWord::new(&[0b10, 0b0, 0b111], &[2, 1, 3]);
        assert!(nw.contains(&w, 3));
        let nw2 = NodeWord::new(&[0b11, 0b0, 0b111], &[2, 1, 3]);
        assert!(!nw2.contains(&w, 3));
        // Zero-bit segments match anything.
        let root = NodeWord::root();
        assert!(root.contains(&w, 3));
    }

    #[test]
    fn refine_produces_complementary_children() {
        let nw = NodeWord::new(&[0b10, 0b0], &[2, 1]);
        let (zero, one) = nw.refine(0);
        assert_eq!(zero.bits(0), 3);
        assert_eq!(one.bits(0), 3);
        assert_eq!(zero.symbol(0), 0b100);
        assert_eq!(one.symbol(0), 0b101);
        // Other segments untouched.
        assert_eq!(zero.symbol(1), 0b0);
        assert_eq!(zero.bits(1), 1);
    }

    #[test]
    fn refined_children_partition_the_parent() {
        let nw = NodeWord::new(&[0b1], &[1]);
        let (zero, one) = nw.refine(0);
        // Words under the parent go to exactly one child.
        for sym in 0..=255u16 {
            let w = SaxWord::new(&[sym as u8]);
            if nw.contains(&w, 1) {
                assert_ne!(zero.contains(&w, 1), one.contains(&w, 1));
                assert_eq!(one.contains(&w, 1), nw.child_of(&w, 0));
            } else {
                assert!(!zero.contains(&w, 1) && !one.contains(&w, 1));
            }
        }
    }

    #[test]
    fn total_bits_counts_refinements() {
        let mut nw = NodeWord::new(&[0, 0], &[1, 1]);
        assert_eq!(nw.total_bits(2), 2);
        nw = nw.refine(1).0;
        assert_eq!(nw.total_bits(2), 3);
    }

    #[test]
    fn display_formats_bits() {
        let nw = NodeWord::new(&[0b10, 0b0, 0b1], &[2, 0, 1]);
        assert_eq!(nw.display(3), "10 * 1");
    }

    #[test]
    #[should_panic(expected = "maximum cardinality")]
    fn refine_rejects_full_cardinality() {
        let nw = NodeWord::new(&[0xAB], &[8]);
        nw.refine(0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn new_rejects_oversized_prefix() {
        NodeWord::new(&[0b100], &[2]);
    }
}
