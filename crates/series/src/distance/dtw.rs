//! Dynamic Time Warping with a Sakoe-Chiba band.
//!
//! The paper's final experiment (Fig. 19) shows MESSI accelerating exact
//! DTW similarity search: the index is searched with LB_Keogh envelope
//! lower bounds, and only unpruned candidates pay the full DTW cost. The
//! kernels here implement banded DTW in O(n·(2r+1)) time and O(r) space,
//! with early abandoning on the running row minimum (as in the UCR Suite).
//!
//! All costs are squared point differences, so `dtw_sq` is comparable with
//! the squared Euclidean distances used everywhere else; with a warping
//! window of 0 it degenerates to exactly the squared Euclidean distance.

/// Parameters for banded DTW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtwParams {
    /// Sakoe-Chiba band radius in points: cell `(i, j)` is admissible iff
    /// `|i - j| <= window`.
    pub window: usize,
}

impl DtwParams {
    /// The paper's setting: a warping window of 10% of the series length
    /// ("we use a warping window size of 10% of the query series length,
    /// which is commonly used in practice").
    pub fn paper_default(series_len: usize) -> Self {
        Self {
            window: (series_len / 10).max(1),
        }
    }

    /// Clamps the window to the maximal useful value (`n - 1`).
    pub fn clamped(self, series_len: usize) -> Self {
        Self {
            window: self.window.min(series_len.saturating_sub(1)),
        }
    }
}

/// Full banded DTW squared distance between equal-length series.
///
/// # Panics
///
/// Panics if the series lengths differ or are zero.
pub fn dtw_sq(a: &[f32], b: &[f32], params: DtwParams) -> f32 {
    dtw_sq_early_abandon(a, b, params, f32::INFINITY)
}

/// Early-abandoning banded DTW.
///
/// Returns the exact squared DTW distance if it is `< bound`, otherwise
/// some value `>= bound` (computation stops as soon as every cell of a DP
/// row is already `>= bound`, since row minima are non-decreasing along
/// admissible warping paths).
///
/// # Panics
///
/// Panics if the series lengths differ or are zero.
pub fn dtw_sq_early_abandon(a: &[f32], b: &[f32], params: DtwParams, bound: f32) -> f32 {
    assert_eq!(a.len(), b.len(), "DTW requires equal-length series");
    let n = a.len();
    assert!(n > 0, "DTW of empty series is undefined");
    let w = params.clamped(n).window;

    // Two-row DP over the band. Row i covers columns [i-w, i+w] ∩ [0, n).
    // We store rows at full width for simplicity of indexing; cells
    // outside the band hold +inf. For the series lengths used here
    // (128–256 points) the full-width row is small and cache-resident.
    let mut prev = vec![f32::INFINITY; n];
    let mut curr = vec![f32::INFINITY; n];

    // Row 0.
    {
        let hi = w.min(n - 1);
        let d0 = a[0] - b[0];
        prev[0] = d0 * d0;
        for j in 1..=hi {
            let d = a[0] - b[j];
            prev[j] = prev[j - 1] + d * d;
        }
        let row_min = prev[..=hi].iter().copied().fold(f32::INFINITY, f32::min);
        if row_min >= bound && n > 1 {
            return row_min;
        }
    }

    for (i, &a_i) in a.iter().enumerate().skip(1) {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(n - 1);
        // Band of the previous row: cells of `prev` outside it are stale
        // values from two rows ago and must be treated as +inf.
        let prev_lo = (i - 1).saturating_sub(w);
        let prev_hi = (i - 1 + w).min(n - 1);
        let mut row_min = f32::INFINITY;
        for j in lo..=hi {
            let d = a_i - b[j];
            let cost = d * d;
            // Admissible predecessors: (i-1, j), (i-1, j-1), (i, j-1) —
            // each only if it lies inside its row's band.
            let mut best = f32::INFINITY;
            if (prev_lo..=prev_hi).contains(&j) {
                best = prev[j]; // vertical
            }
            if j > 0 && (prev_lo..=prev_hi).contains(&(j - 1)) {
                best = best.min(prev[j - 1]); // diagonal
            }
            if j > lo {
                best = best.min(curr[j - 1]); // horizontal
            }
            let v = if best == f32::INFINITY {
                f32::INFINITY
            } else {
                best + cost
            };
            curr[j] = v;
            row_min = row_min.min(v);
        }
        if row_min >= bound {
            return row_min;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n - 1]
}

/// Reference O(n²)-space DTW used by the tests to validate the banded
/// kernel. Exposed (documented, but niche) so property tests in other
/// crates can use it too.
pub fn dtw_sq_reference(a: &[f32], b: &[f32], params: DtwParams) -> f32 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n > 0);
    let w = params.clamped(n).window;
    let mut dp = vec![vec![f32::INFINITY; n]; n];
    for i in 0..n {
        let lo = i.saturating_sub(w);
        let hi = (i + w).min(n - 1);
        for j in lo..=hi {
            let d = a[i] - b[j];
            let cost = d * d;
            dp[i][j] = if i == 0 && j == 0 {
                cost
            } else {
                let mut best = f32::INFINITY;
                if i > 0 {
                    best = best.min(dp[i - 1][j]);
                    if j > 0 {
                        best = best.min(dp[i - 1][j - 1]);
                    }
                }
                if j > 0 {
                    best = best.min(dp[i][j - 1]);
                }
                best + cost
            };
        }
    }
    dp[n - 1][n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean::ed_sq_scalar;
    use crate::stats::approx_eq;

    fn series(n: usize, f: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * f).sin()).collect()
    }

    #[test]
    fn zero_window_equals_euclidean() {
        let a = series(64, 0.3);
        let b = series(64, 0.7);
        let d = dtw_sq(&a, &b, DtwParams { window: 0 });
        assert!(approx_eq(d, ed_sq_scalar(&a, &b), 1e-4));
    }

    #[test]
    fn dtw_is_zero_on_identical_series() {
        let a = series(100, 0.2);
        for w in [0usize, 1, 5, 10, 99] {
            assert_eq!(dtw_sq(&a, &a, DtwParams { window: w }), 0.0);
        }
    }

    #[test]
    fn dtw_never_exceeds_euclidean() {
        // The identity alignment is always admissible, so DTW ≤ ED².
        for seed in 0..5u32 {
            let a = series(128, 0.1 + seed as f32 * 0.13);
            let b = series(128, 0.45 + seed as f32 * 0.07);
            let ed = ed_sq_scalar(&a, &b);
            for w in [1usize, 4, 12] {
                let d = dtw_sq(&a, &b, DtwParams { window: w });
                assert!(d <= ed + 1e-3, "w={w}: dtw={d} ed={ed}");
            }
        }
    }

    #[test]
    fn larger_windows_never_increase_distance() {
        let a = series(96, 0.21);
        let b = series(96, 0.83);
        let mut last = f32::INFINITY;
        for w in [0usize, 1, 2, 4, 8, 16, 32, 95] {
            let d = dtw_sq(&a, &b, DtwParams { window: w });
            assert!(d <= last + 1e-3, "w={w}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn banded_matches_reference() {
        for n in [1usize, 2, 7, 33, 64] {
            let a = series(n, 0.37);
            let b: Vec<f32> = series(n, 0.59).iter().map(|v| v + 0.2).collect();
            for w in [0usize, 1, 3, n / 2, n] {
                let fast = dtw_sq(&a, &b, DtwParams { window: w });
                let slow = dtw_sq_reference(&a, &b, DtwParams { window: w });
                assert!(
                    approx_eq(fast, slow, 1e-4),
                    "n={n} w={w}: fast={fast} slow={slow}"
                );
            }
        }
    }

    #[test]
    fn dtw_aligns_shifted_series() {
        // A sine and the same sine shifted by 3 samples: DTW with a window
        // ≥ 3 should be much smaller than the Euclidean distance.
        let n = 128;
        let a: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.3).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i as f32 + 3.0) * 0.3).sin()).collect();
        let ed = ed_sq_scalar(&a, &b);
        let d = dtw_sq(&a, &b, DtwParams { window: 6 });
        assert!(d < ed * 0.2, "dtw={d} should be far below ed={ed}");
    }

    #[test]
    fn early_abandon_is_exact_below_bound() {
        let a = series(128, 0.29);
        let b = series(128, 0.61);
        let p = DtwParams::paper_default(128);
        let exact = dtw_sq(&a, &b, p);
        let d = dtw_sq_early_abandon(&a, &b, p, exact * 2.0 + 1.0);
        assert!(approx_eq(d, exact, 1e-4));
    }

    #[test]
    fn early_abandon_crosses_bound() {
        let a = vec![0.0f32; 128];
        let b = vec![2.0f32; 128];
        let p = DtwParams::paper_default(128);
        let d = dtw_sq_early_abandon(&a, &b, p, 1.0);
        assert!(d >= 1.0);
    }

    #[test]
    fn paper_default_window_is_ten_percent() {
        assert_eq!(DtwParams::paper_default(256).window, 25);
        assert_eq!(DtwParams::paper_default(128).window, 12);
        assert_eq!(DtwParams::paper_default(5).window, 1);
    }

    #[test]
    fn single_point_series() {
        let d = dtw_sq(&[3.0], &[5.0], DtwParams { window: 2 });
        assert_eq!(d, 4.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rejects_unequal_lengths() {
        dtw_sq(&[1.0], &[1.0, 2.0], DtwParams { window: 1 });
    }
}
