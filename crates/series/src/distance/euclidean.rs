//! Squared Euclidean distance: scalar kernels and the SIMD dispatchers.
//!
//! Everything returns **squared** distances. The comparison `d² < bound²`
//! is equivalent to `d < bound` for non-negative distances, and skipping
//! the square root in the innermost loop is one of the standard
//! optimizations the paper inherits from the UCR Suite.

use super::simd;
use super::Kernel;

/// Scalar (SISD) squared Euclidean distance.
///
/// This is the reference implementation and the code path that the
/// ParIS-SISD configuration of Fig. 18 uses. It is written as a simple
/// indexed loop **with a branch-free body**, but callers wanting the paper's
/// SISD behaviour should use it through [`ed_sq_with`] with
/// [`Kernel::Scalar`].
///
/// # Panics
///
/// Panics (debug builds) if the slices have different lengths.
#[inline]
pub fn ed_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Scalar early-abandoning squared Euclidean distance.
///
/// Returns the exact squared distance if it is `< bound`; otherwise some
/// partial sum `>= bound`. The bound is checked every 8 points, mirroring
/// the SIMD kernel's stride so both variants abandon at similar places.
#[inline]
pub fn ed_sq_early_abandon_scalar(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f32;
    let mut processed = 0;
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        let mut block = 0.0f32;
        for j in 0..8 {
            let d = a[base + j] - b[base + j];
            block += d * d;
        }
        sum += block;
        processed += 8;
        if sum >= bound {
            return sum;
        }
    }
    for j in processed..a.len() {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

/// Squared Euclidean distance with explicit kernel selection.
#[inline]
pub fn ed_sq_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernel.uses_simd() {
        // SAFETY: `uses_simd` returned true, so AVX2+FMA are available.
        return unsafe { simd::avx::ed_sq(a, b) };
    }
    let _ = kernel;
    ed_sq_scalar(a, b)
}

/// Squared Euclidean distance using the best kernel for this CPU.
#[inline]
pub fn ed_sq(a: &[f32], b: &[f32]) -> f32 {
    ed_sq_with(Kernel::Auto, a, b)
}

/// Early-abandoning squared Euclidean distance with explicit kernel
/// selection. See [`ed_sq_early_abandon_scalar`] for the return contract.
#[inline]
pub fn ed_sq_early_abandon_with(kernel: Kernel, a: &[f32], b: &[f32], bound: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernel.uses_simd() {
        // SAFETY: `uses_simd` returned true, so AVX2+FMA are available.
        return unsafe { simd::avx::ed_sq_early_abandon(a, b, bound) };
    }
    let _ = kernel;
    ed_sq_early_abandon_scalar(a, b, bound)
}

/// Early-abandoning squared Euclidean distance with the best kernel.
#[inline]
pub fn ed_sq_early_abandon(a: &[f32], b: &[f32], bound: f32) -> f32 {
    ed_sq_early_abandon_with(Kernel::Auto, a, b, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::approx_eq;

    #[test]
    fn known_distance() {
        // (3-0)² + (4-0)² = 25.
        assert_eq!(ed_sq_scalar(&[3.0, 4.0], &[0.0, 0.0]), 25.0);
        assert_eq!(ed_sq(&[3.0, 4.0], &[0.0, 0.0]), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        assert_eq!(ed_sq(&a, &a), 0.0);
        assert!(approx_eq(ed_sq(&a, &b), ed_sq(&b, &a), 1e-6));
    }

    #[test]
    fn dispatchers_agree_with_scalar() {
        let a: Vec<f32> = (0..256).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..256).map(|i| (i as f32 * 0.3).cos()).collect();
        let reference = ed_sq_scalar(&a, &b);
        for kernel in [Kernel::Auto, Kernel::Simd, Kernel::Scalar] {
            assert!(approx_eq(ed_sq_with(kernel, &a, &b), reference, 1e-4));
        }
    }

    #[test]
    fn early_abandon_is_exact_below_bound() {
        let a: Vec<f32> = (0..77).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..77).map(|i| (i as f32 * 0.3).cos()).collect();
        let exact = ed_sq_scalar(&a, &b);
        for kernel in [Kernel::Auto, Kernel::Scalar] {
            let d = ed_sq_early_abandon_with(kernel, &a, &b, exact + 1.0);
            assert!(approx_eq(d, exact, 1e-4));
        }
    }

    #[test]
    fn early_abandon_result_crosses_bound_when_abandoning() {
        let a = vec![0.0f32; 256];
        let b = vec![1.0f32; 256]; // squared distance 256
        for kernel in [Kernel::Auto, Kernel::Scalar] {
            let d = ed_sq_early_abandon_with(kernel, &a, &b, 10.0);
            assert!(d >= 10.0);
            // It must abandon early, not scan everything (partial < 256 is
            // expected, though equality would still be correct).
            assert!(d <= 256.0);
        }
    }

    #[test]
    fn early_abandon_with_infinite_bound_is_exact() {
        let a: Vec<f32> = (0..300).map(|i| i as f32 * 0.01).collect();
        let b: Vec<f32> = (0..300).map(|i| (i as f32 * 0.01).powi(2)).collect();
        let exact = ed_sq_scalar(&a, &b);
        let d = ed_sq_early_abandon(&a, &b, f32::INFINITY);
        assert!(approx_eq(d, exact, 1e-4));
    }

    #[test]
    fn handles_empty_and_short_series() {
        assert_eq!(ed_sq_scalar(&[], &[]), 0.0);
        assert_eq!(ed_sq(&[], &[]), 0.0);
        assert_eq!(ed_sq(&[1.0], &[4.0]), 9.0);
        assert_eq!(ed_sq_early_abandon(&[1.0], &[4.0], 100.0), 9.0);
    }
}
