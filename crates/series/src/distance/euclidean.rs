//! Squared Euclidean distance: scalar kernels and the SIMD dispatchers.
//!
//! Everything returns **squared** distances. The comparison `d² < bound²`
//! is equivalent to `d < bound` for non-negative distances, and skipping
//! the square root in the innermost loop is one of the standard
//! optimizations the paper inherits from the UCR Suite.
//!
//! The scalar kernels are *bit-identical twins* of the AVX2+FMA kernels
//! in [`super::simd`]: they walk the same 8-lane blocks, fuse each
//! multiply-add with [`f32::mul_add`] (one rounding, exactly like
//! `vfmadd231ps`), and reduce the lane block in the same order as the
//! SIMD horizontal sum. A forced-scalar run therefore returns the same
//! bits as a forced-SIMD run — the `Kernel` ablation measures work, not
//! rounding drift.

use super::simd;
use super::Kernel;

/// Scalar (SISD) squared Euclidean distance.
///
/// This is the reference implementation and the code path that the
/// ParIS-SISD configuration of Fig. 18 uses. It is the bit-identical twin
/// of `simd::avx::ed_sq`: 8 virtual lanes accumulated with
/// [`f32::mul_add`], reduced in the SIMD horizontal-sum order, then a
/// plain scalar tail. Callers wanting the paper's SISD behaviour should
/// use it through [`ed_sq_with`] with [`Kernel::Scalar`].
///
/// # Panics
///
/// Panics (debug builds) if the slices have different lengths.
#[inline]
pub fn ed_sq_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let lanes = n / 8 * 8;
    let mut acc = [0.0f32; 8];
    let mut i = 0;
    while i < lanes {
        for (l, slot) in acc.iter_mut().enumerate() {
            let d = a[i + l] - b[i + l];
            *slot = d.mul_add(d, *slot);
        }
        i += 8;
    }
    let mut sum = simd::hsum_lanes(acc);
    for j in lanes..n {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

/// Scalar early-abandoning squared Euclidean distance.
///
/// Returns the exact squared distance if it is `< bound`; otherwise some
/// partial sum `>= bound`. Bit-identical twin of
/// `simd::avx::ed_sq_early_abandon`: the bound is checked every
/// [`simd::ABANDON_STRIDE`] points, then a whole-lane-block tail and a
/// scalar remainder follow, so both variants abandon at the same places
/// with the same partial sums.
#[inline]
pub fn ed_sq_early_abandon_scalar(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut total = 0.0f32;
    let mut i = 0;
    // Blocks of ABANDON_STRIDE points (4 lane blocks) between checks.
    while i + simd::ABANDON_STRIDE <= n {
        let mut acc = [0.0f32; 8];
        let mut j = i;
        while j < i + simd::ABANDON_STRIDE {
            for (l, slot) in acc.iter_mut().enumerate() {
                let d = a[j + l] - b[j + l];
                *slot = d.mul_add(d, *slot);
            }
            j += 8;
        }
        total += simd::hsum_lanes(acc);
        if total >= bound {
            return total;
        }
        i += simd::ABANDON_STRIDE;
    }
    // Tail: whole lane blocks, then scalar remainder.
    let lanes = (n - i) / 8 * 8 + i;
    let mut acc = [0.0f32; 8];
    let mut j = i;
    while j < lanes {
        for (l, slot) in acc.iter_mut().enumerate() {
            let d = a[j + l] - b[j + l];
            *slot = d.mul_add(d, *slot);
        }
        j += 8;
    }
    total += simd::hsum_lanes(acc);
    for k in lanes..n {
        let d = a[k] - b[k];
        total += d * d;
    }
    total
}

/// Squared Euclidean distance with explicit kernel selection.
#[inline]
pub fn ed_sq_with(kernel: Kernel, a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernel.uses_simd() {
        // SAFETY: `uses_simd` returned true, so AVX2+FMA are available.
        return unsafe { simd::avx::ed_sq(a, b) };
    }
    let _ = kernel;
    ed_sq_scalar(a, b)
}

/// Squared Euclidean distance using the best kernel for this CPU.
#[inline]
pub fn ed_sq(a: &[f32], b: &[f32]) -> f32 {
    ed_sq_with(Kernel::Auto, a, b)
}

/// Early-abandoning squared Euclidean distance with explicit kernel
/// selection. See [`ed_sq_early_abandon_scalar`] for the return contract.
#[inline]
pub fn ed_sq_early_abandon_with(kernel: Kernel, a: &[f32], b: &[f32], bound: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernel.uses_simd() {
        // SAFETY: `uses_simd` returned true, so AVX2+FMA are available.
        return unsafe { simd::avx::ed_sq_early_abandon(a, b, bound) };
    }
    let _ = kernel;
    ed_sq_early_abandon_scalar(a, b, bound)
}

/// Early-abandoning squared Euclidean distance with the best kernel.
#[inline]
pub fn ed_sq_early_abandon(a: &[f32], b: &[f32], bound: f32) -> f32 {
    ed_sq_early_abandon_with(Kernel::Auto, a, b, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::approx_eq;

    #[test]
    fn known_distance() {
        // (3-0)² + (4-0)² = 25.
        assert_eq!(ed_sq_scalar(&[3.0, 4.0], &[0.0, 0.0]), 25.0);
        assert_eq!(ed_sq(&[3.0, 4.0], &[0.0, 0.0]), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        assert_eq!(ed_sq(&a, &a), 0.0);
        assert!(approx_eq(ed_sq(&a, &b), ed_sq(&b, &a), 1e-6));
    }

    #[test]
    fn dispatchers_agree_with_scalar() {
        let a: Vec<f32> = (0..256).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..256).map(|i| (i as f32 * 0.3).cos()).collect();
        let reference = ed_sq_scalar(&a, &b);
        for kernel in [Kernel::Auto, Kernel::Simd, Kernel::Scalar] {
            assert!(approx_eq(ed_sq_with(kernel, &a, &b), reference, 1e-4));
        }
    }

    #[test]
    fn scalar_matches_simple_sum_of_squares() {
        // The lane-blocked twin must still compute the same quantity as a
        // plain accumulation loop (up to rounding).
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 64, 100, 256, 317] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).sin()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).cos()).collect();
            let simple: f32 = a.iter().zip(&b).map(|(&x, &y)| (x - y) * (x - y)).sum();
            assert!(approx_eq(ed_sq_scalar(&a, &b), simple, 1e-4), "n={n}");
            assert!(
                approx_eq(
                    ed_sq_early_abandon_scalar(&a, &b, f32::INFINITY),
                    simple,
                    1e-4
                ),
                "n={n}"
            );
        }
    }

    #[test]
    fn early_abandon_is_exact_below_bound() {
        let a: Vec<f32> = (0..77).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..77).map(|i| (i as f32 * 0.3).cos()).collect();
        let exact = ed_sq_scalar(&a, &b);
        for kernel in [Kernel::Auto, Kernel::Scalar] {
            let d = ed_sq_early_abandon_with(kernel, &a, &b, exact + 1.0);
            assert!(approx_eq(d, exact, 1e-4));
        }
    }

    #[test]
    fn early_abandon_result_crosses_bound_when_abandoning() {
        let a = vec![0.0f32; 256];
        let b = vec![1.0f32; 256]; // squared distance 256
        for kernel in [Kernel::Auto, Kernel::Scalar] {
            let d = ed_sq_early_abandon_with(kernel, &a, &b, 10.0);
            assert!(d >= 10.0);
            // It must abandon early, not scan everything (partial < 256 is
            // expected, though equality would still be correct).
            assert!(d <= 256.0);
        }
    }

    #[test]
    fn early_abandon_with_infinite_bound_is_exact() {
        let a: Vec<f32> = (0..300).map(|i| i as f32 * 0.01).collect();
        let b: Vec<f32> = (0..300).map(|i| (i as f32 * 0.01).powi(2)).collect();
        let exact = ed_sq_scalar(&a, &b);
        let d = ed_sq_early_abandon(&a, &b, f32::INFINITY);
        assert!(approx_eq(d, exact, 1e-4));
    }

    #[test]
    fn handles_empty_and_short_series() {
        assert_eq!(ed_sq_scalar(&[], &[]), 0.0);
        assert_eq!(ed_sq(&[], &[]), 0.0);
        assert_eq!(ed_sq(&[1.0], &[4.0]), 9.0);
        assert_eq!(ed_sq_early_abandon(&[1.0], &[4.0], 100.0), 9.0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn scalar_twin_is_bit_identical_to_avx() {
        if !crate::distance::simd::simd_available() {
            return;
        }
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 63, 64, 100, 255, 256, 1024] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).cos() * 2.0).collect();
            // SAFETY: guarded by simd_available().
            let simd = unsafe { simd::avx::ed_sq(&a, &b) };
            assert_eq!(
                ed_sq_scalar(&a, &b).to_bits(),
                simd.to_bits(),
                "ed_sq n={n}"
            );
            for bound in [f32::INFINITY, 1.0, 50.0] {
                // SAFETY: guarded by simd_available().
                let simd = unsafe { simd::avx::ed_sq_early_abandon(&a, &b, bound) };
                assert_eq!(
                    ed_sq_early_abandon_scalar(&a, &b, bound).to_bits(),
                    simd.to_bits(),
                    "ed_sq_early_abandon n={n} bound={bound}"
                );
            }
        }
    }
}
