//! LB_Keogh: the envelope lower bound for DTW.
//!
//! For DTW search (Fig. 19), the paper builds "the envelope of the
//! LB_Keogh method around the query series" and searches the index with
//! it. The envelope of a query `q` under warping window `r` is
//! `U[i] = max(q[i-r..=i+r])`, `L[i] = min(q[i-r..=i+r])`. For any
//! candidate `c`,
//!
//! ```text
//! LB_Keogh(q, c) = Σᵢ  (c[i] − U[i])²  if c[i] > U[i]
//!                     (L[i] − c[i])²  if c[i] < L[i]
//!                     0               otherwise
//! ```
//!
//! is a lower bound on the banded DTW distance (Keogh & Ratanamahatana,
//! KAIS 2005). The envelope construction uses the monotonic-deque sliding
//! window algorithm (O(n) instead of O(n·r)).

use super::dtw::DtwParams;
use std::collections::VecDeque;

/// Upper/lower envelope of a series under a warping window.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Pointwise sliding-window maximum of the enclosed series.
    pub upper: Vec<f32>,
    /// Pointwise sliding-window minimum of the enclosed series.
    pub lower: Vec<f32>,
}

impl Envelope {
    /// Builds the LB_Keogh envelope of `series` for the given DTW window.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty.
    pub fn new(series: &[f32], params: DtwParams) -> Self {
        assert!(!series.is_empty(), "cannot build envelope of empty series");
        let n = series.len();
        let r = params.clamped(n).window;
        let mut upper = vec![0.0f32; n];
        let mut lower = vec![0.0f32; n];

        // Sliding window max/min over [i-r, i+r] via monotonic deques.
        // Deques hold indices; fronts are the current extrema.
        let mut max_dq: VecDeque<usize> = VecDeque::with_capacity(2 * r + 2);
        let mut min_dq: VecDeque<usize> = VecDeque::with_capacity(2 * r + 2);
        for j in 0..n + r {
            if j < n {
                // Push index j, maintaining monotonicity.
                while let Some(&back) = max_dq.back() {
                    if series[back] <= series[j] {
                        max_dq.pop_back();
                    } else {
                        break;
                    }
                }
                max_dq.push_back(j);
                while let Some(&back) = min_dq.back() {
                    if series[back] >= series[j] {
                        min_dq.pop_back();
                    } else {
                        break;
                    }
                }
                min_dq.push_back(j);
            }
            // Window for output position i = j - r covers [i-r, i+r] = [j-2r, j].
            if j >= r {
                let i = j - r;
                // Expire indices left of the window.
                let left = i.saturating_sub(r);
                while let Some(&front) = max_dq.front() {
                    if front < left {
                        max_dq.pop_front();
                    } else {
                        break;
                    }
                }
                while let Some(&front) = min_dq.front() {
                    if front < left {
                        min_dq.pop_front();
                    } else {
                        break;
                    }
                }
                upper[i] = series[*max_dq.front().expect("window never empty")];
                lower[i] = series[*min_dq.front().expect("window never empty")];
            }
        }
        Self { upper, lower }
    }

    /// Naive O(n·r) envelope, kept as the test oracle for the deque version.
    pub fn new_naive(series: &[f32], params: DtwParams) -> Self {
        assert!(!series.is_empty());
        let n = series.len();
        let r = params.clamped(n).window;
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(r);
            let hi = (i + r).min(n - 1);
            let win = &series[lo..=hi];
            upper.push(win.iter().copied().fold(f32::NEG_INFINITY, f32::max));
            lower.push(win.iter().copied().fold(f32::INFINITY, f32::min));
        }
        Self { upper, lower }
    }

    /// Number of points in the envelope.
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// Whether the envelope is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }
}

/// Squared LB_Keogh lower bound of the DTW distance between the enveloped
/// query and `candidate`.
///
/// # Panics
///
/// Panics (debug) if lengths differ.
#[inline]
pub fn lb_keogh_sq(env: &Envelope, candidate: &[f32]) -> f32 {
    lb_keogh_sq_early_abandon(env, candidate, f32::INFINITY)
}

/// Early-abandoning squared LB_Keogh: exact if `< bound`, otherwise some
/// value `>= bound`.
#[inline]
pub fn lb_keogh_sq_early_abandon(env: &Envelope, candidate: &[f32], bound: f32) -> f32 {
    // Hard assert: the zip below would silently truncate on mismatch,
    // weakening the lower bound; one usize compare is free next to the
    // loop.
    assert_eq!(env.upper.len(), candidate.len());
    let mut sum = 0.0f32;
    // Branchless body: out-of-envelope excursion clamped to 0.
    // max(0, c-U) + max(0, L-c): at most one term is non-zero.
    for ((&c, &upper), &lower) in candidate.iter().zip(&env.upper).zip(&env.lower) {
        let above = (c - upper).max(0.0);
        let below = (lower - c).max(0.0);
        let d = above + below;
        sum += d * d;
        if sum >= bound {
            return sum;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::dtw::dtw_sq;
    use crate::stats::approx_eq;

    fn series(n: usize, f: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * f).sin() + (i as f32 * 0.01))
            .collect()
    }

    #[test]
    fn envelope_brackets_the_series() {
        let s = series(128, 0.37);
        for w in [0usize, 1, 5, 12, 127] {
            let env = Envelope::new(&s, DtwParams { window: w });
            for (i, &s_i) in s.iter().enumerate() {
                assert!(env.lower[i] <= s_i && s_i <= env.upper[i], "i={i} w={w}");
            }
        }
    }

    #[test]
    fn deque_envelope_matches_naive() {
        for n in [1usize, 2, 5, 64, 129] {
            let s = series(n, 0.53);
            for w in [0usize, 1, 3, n / 2, n] {
                let fast = Envelope::new(&s, DtwParams { window: w });
                let slow = Envelope::new_naive(&s, DtwParams { window: w });
                assert_eq!(fast.upper, slow.upper, "upper n={n} w={w}");
                assert_eq!(fast.lower, slow.lower, "lower n={n} w={w}");
            }
        }
    }

    #[test]
    fn zero_window_envelope_is_the_series() {
        let s = series(50, 0.7);
        let env = Envelope::new(&s, DtwParams { window: 0 });
        assert_eq!(env.upper, s);
        assert_eq!(env.lower, s);
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        for seed in 0..8u32 {
            let q = series(128, 0.11 + seed as f32 * 0.07);
            let c: Vec<f32> = series(128, 0.41 + seed as f32 * 0.05)
                .iter()
                .map(|v| v * 1.2 - 0.3)
                .collect();
            for w in [1usize, 6, 12] {
                let p = DtwParams { window: w };
                let env = Envelope::new(&q, p);
                let lb = lb_keogh_sq(&env, &c);
                let d = dtw_sq(&q, &c, p);
                assert!(lb <= d + 1e-3, "seed={seed} w={w}: lb={lb} dtw={d}");
            }
        }
    }

    #[test]
    fn lb_keogh_of_series_inside_envelope_is_zero() {
        let q = series(64, 0.4);
        let env = Envelope::new(&q, DtwParams { window: 5 });
        assert_eq!(lb_keogh_sq(&env, &q), 0.0);
    }

    #[test]
    fn early_abandon_contract() {
        let q = series(128, 0.23);
        let c: Vec<f32> = q.iter().map(|v| v + 3.0).collect();
        let env = Envelope::new(&q, DtwParams { window: 12 });
        let exact = lb_keogh_sq(&env, &c);
        assert!(exact > 0.0);
        let d = lb_keogh_sq_early_abandon(&env, &c, exact / 10.0);
        assert!(d >= exact / 10.0);
        let d = lb_keogh_sq_early_abandon(&env, &c, exact * 2.0);
        assert!(approx_eq(d, exact, 1e-4));
    }

    #[test]
    fn envelope_len_accessors() {
        let s = series(32, 0.2);
        let env = Envelope::new(&s, DtwParams { window: 3 });
        assert_eq!(env.len(), 32);
        assert!(!env.is_empty());
    }
}
