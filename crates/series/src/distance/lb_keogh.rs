//! LB_Keogh: the envelope lower bound for DTW.
//!
//! For DTW search (Fig. 19), the paper builds "the envelope of the
//! LB_Keogh method around the query series" and searches the index with
//! it. The envelope of a query `q` under warping window `r` is
//! `U[i] = max(q[i-r..=i+r])`, `L[i] = min(q[i-r..=i+r])`. For any
//! candidate `c`,
//!
//! ```text
//! LB_Keogh(q, c) = Σᵢ  (c[i] − U[i])²  if c[i] > U[i]
//!                     (L[i] − c[i])²  if c[i] < L[i]
//!                     0               otherwise
//! ```
//!
//! is a lower bound on the banded DTW distance (Keogh & Ratanamahatana,
//! KAIS 2005). The envelope construction uses the monotonic-deque sliding
//! window algorithm (O(n) instead of O(n·r)).

use super::dtw::DtwParams;
use super::simd;
use super::Kernel;
use std::collections::VecDeque;

/// Upper/lower envelope of a series under a warping window.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Pointwise sliding-window maximum of the enclosed series.
    pub upper: Vec<f32>,
    /// Pointwise sliding-window minimum of the enclosed series.
    pub lower: Vec<f32>,
}

impl Envelope {
    /// Builds the LB_Keogh envelope of `series` for the given DTW window.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty.
    pub fn new(series: &[f32], params: DtwParams) -> Self {
        assert!(!series.is_empty(), "cannot build envelope of empty series");
        let n = series.len();
        let r = params.clamped(n).window;
        let mut upper = vec![0.0f32; n];
        let mut lower = vec![0.0f32; n];

        // Sliding window max/min over [i-r, i+r] via monotonic deques.
        // Deques hold indices; fronts are the current extrema.
        let mut max_dq: VecDeque<usize> = VecDeque::with_capacity(2 * r + 2);
        let mut min_dq: VecDeque<usize> = VecDeque::with_capacity(2 * r + 2);
        for j in 0..n + r {
            if j < n {
                // Push index j, maintaining monotonicity.
                while let Some(&back) = max_dq.back() {
                    if series[back] <= series[j] {
                        max_dq.pop_back();
                    } else {
                        break;
                    }
                }
                max_dq.push_back(j);
                while let Some(&back) = min_dq.back() {
                    if series[back] >= series[j] {
                        min_dq.pop_back();
                    } else {
                        break;
                    }
                }
                min_dq.push_back(j);
            }
            // Window for output position i = j - r covers [i-r, i+r] = [j-2r, j].
            if j >= r {
                let i = j - r;
                // Expire indices left of the window.
                let left = i.saturating_sub(r);
                while let Some(&front) = max_dq.front() {
                    if front < left {
                        max_dq.pop_front();
                    } else {
                        break;
                    }
                }
                while let Some(&front) = min_dq.front() {
                    if front < left {
                        min_dq.pop_front();
                    } else {
                        break;
                    }
                }
                upper[i] = series[*max_dq.front().expect("window never empty")];
                lower[i] = series[*min_dq.front().expect("window never empty")];
            }
        }
        Self { upper, lower }
    }

    /// Naive O(n·r) envelope, kept as the test oracle for the deque version.
    pub fn new_naive(series: &[f32], params: DtwParams) -> Self {
        assert!(!series.is_empty());
        let n = series.len();
        let r = params.clamped(n).window;
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(r);
            let hi = (i + r).min(n - 1);
            let win = &series[lo..=hi];
            upper.push(win.iter().copied().fold(f32::NEG_INFINITY, f32::max));
            lower.push(win.iter().copied().fold(f32::INFINITY, f32::min));
        }
        Self { upper, lower }
    }

    /// Number of points in the envelope.
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// Whether the envelope is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }
}

/// Squared LB_Keogh lower bound of the DTW distance between the enveloped
/// query and `candidate`.
///
/// # Panics
///
/// Panics (debug) if lengths differ.
#[inline]
pub fn lb_keogh_sq(env: &Envelope, candidate: &[f32]) -> f32 {
    lb_keogh_sq_early_abandon(env, candidate, f32::INFINITY)
}

/// Early-abandoning squared LB_Keogh: exact if `< bound`, otherwise some
/// value `>= bound`.
#[inline]
pub fn lb_keogh_sq_early_abandon(env: &Envelope, candidate: &[f32], bound: f32) -> f32 {
    // Hard assert: the zip below would silently truncate on mismatch,
    // weakening the lower bound; one usize compare is free next to the
    // loop.
    assert_eq!(env.upper.len(), candidate.len());
    let mut sum = 0.0f32;
    // Branchless body: out-of-envelope excursion clamped to 0.
    // max(0, c-U) + max(0, L-c): at most one term is non-zero.
    for ((&c, &upper), &lower) in candidate.iter().zip(&env.upper).zip(&env.lower) {
        let above = (c - upper).max(0.0);
        let below = (lower - c).max(0.0);
        let d = above + below;
        sum += d * d;
        if sum >= bound {
            return sum;
        }
    }
    sum
}

/// Scalar twin of the AVX LB_Keogh kernel: clamp-into-envelope form,
/// 8 virtual lanes fused with [`f32::mul_add`], reduced in the SIMD
/// horizontal-sum order. Bit-identical to
/// `simd::avx::lb_keogh_sq` on the same inputs.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn lb_keogh_sq_scalar(env: &Envelope, candidate: &[f32]) -> f32 {
    assert_eq!(env.upper.len(), candidate.len());
    let (lower, upper) = (env.lower.as_slice(), env.upper.as_slice());
    let n = candidate.len();
    let lanes = n / 8 * 8;
    let mut acc = [0.0f32; 8];
    let mut i = 0;
    while i < lanes {
        for (l, slot) in acc.iter_mut().enumerate() {
            let c = candidate[i + l];
            let d = c - c.max(lower[i + l]).min(upper[i + l]);
            *slot = d.mul_add(d, *slot);
        }
        i += 8;
    }
    let mut sum = simd::hsum_lanes(acc);
    for j in lanes..n {
        let c = candidate[j];
        let d = c - c.max(lower[j]).min(upper[j]);
        sum += d * d;
    }
    sum
}

/// Scalar twin of the AVX early-abandoning LB_Keogh kernel: bound checks
/// every [`simd::ABANDON_STRIDE`] points, whole-lane-block tail, scalar
/// remainder — abandoning at the same places with the same partial sums
/// as `simd::avx::lb_keogh_sq_early_abandon`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn lb_keogh_sq_early_abandon_scalar(env: &Envelope, candidate: &[f32], bound: f32) -> f32 {
    assert_eq!(env.upper.len(), candidate.len());
    let (lower, upper) = (env.lower.as_slice(), env.upper.as_slice());
    let n = candidate.len();
    let mut total = 0.0f32;
    let mut i = 0;
    while i + simd::ABANDON_STRIDE <= n {
        let mut acc = [0.0f32; 8];
        let mut j = i;
        while j < i + simd::ABANDON_STRIDE {
            for (l, slot) in acc.iter_mut().enumerate() {
                let c = candidate[j + l];
                let d = c - c.max(lower[j + l]).min(upper[j + l]);
                *slot = d.mul_add(d, *slot);
            }
            j += 8;
        }
        total += simd::hsum_lanes(acc);
        if total >= bound {
            return total;
        }
        i += simd::ABANDON_STRIDE;
    }
    // Tail: whole lane blocks, then scalar remainder.
    let lanes = (n - i) / 8 * 8 + i;
    let mut acc = [0.0f32; 8];
    let mut j = i;
    while j < lanes {
        for (l, slot) in acc.iter_mut().enumerate() {
            let c = candidate[j + l];
            let d = c - c.max(lower[j + l]).min(upper[j + l]);
            *slot = d.mul_add(d, *slot);
        }
        j += 8;
    }
    total += simd::hsum_lanes(acc);
    for k in lanes..n {
        let c = candidate[k];
        let d = c - c.max(lower[k]).min(upper[k]);
        total += d * d;
    }
    total
}

/// Squared LB_Keogh with explicit kernel selection: the AVX2+FMA kernel
/// when `kernel` resolves to SIMD, its bit-identical scalar twin
/// otherwise.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn lb_keogh_sq_with(kernel: Kernel, env: &Envelope, candidate: &[f32]) -> f32 {
    assert_eq!(env.upper.len(), candidate.len());
    #[cfg(target_arch = "x86_64")]
    if kernel.uses_simd() {
        // SAFETY: `uses_simd` returned true, so AVX2+FMA are available;
        // lengths were just asserted equal.
        return unsafe { simd::avx::lb_keogh_sq(&env.lower, &env.upper, candidate) };
    }
    let _ = kernel;
    lb_keogh_sq_scalar(env, candidate)
}

/// Early-abandoning squared LB_Keogh with explicit kernel selection. See
/// [`lb_keogh_sq_early_abandon_scalar`] for the return contract.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn lb_keogh_sq_early_abandon_with(
    kernel: Kernel,
    env: &Envelope,
    candidate: &[f32],
    bound: f32,
) -> f32 {
    assert_eq!(env.upper.len(), candidate.len());
    #[cfg(target_arch = "x86_64")]
    if kernel.uses_simd() {
        // SAFETY: `uses_simd` returned true, so AVX2+FMA are available;
        // lengths were just asserted equal.
        return unsafe {
            simd::avx::lb_keogh_sq_early_abandon(&env.lower, &env.upper, candidate, bound)
        };
    }
    let _ = kernel;
    lb_keogh_sq_early_abandon_scalar(env, candidate, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::dtw::dtw_sq;
    use crate::stats::approx_eq;

    fn series(n: usize, f: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * f).sin() + (i as f32 * 0.01))
            .collect()
    }

    #[test]
    fn envelope_brackets_the_series() {
        let s = series(128, 0.37);
        for w in [0usize, 1, 5, 12, 127] {
            let env = Envelope::new(&s, DtwParams { window: w });
            for (i, &s_i) in s.iter().enumerate() {
                assert!(env.lower[i] <= s_i && s_i <= env.upper[i], "i={i} w={w}");
            }
        }
    }

    #[test]
    fn deque_envelope_matches_naive() {
        for n in [1usize, 2, 5, 64, 129] {
            let s = series(n, 0.53);
            for w in [0usize, 1, 3, n / 2, n] {
                let fast = Envelope::new(&s, DtwParams { window: w });
                let slow = Envelope::new_naive(&s, DtwParams { window: w });
                assert_eq!(fast.upper, slow.upper, "upper n={n} w={w}");
                assert_eq!(fast.lower, slow.lower, "lower n={n} w={w}");
            }
        }
    }

    #[test]
    fn zero_window_envelope_is_the_series() {
        let s = series(50, 0.7);
        let env = Envelope::new(&s, DtwParams { window: 0 });
        assert_eq!(env.upper, s);
        assert_eq!(env.lower, s);
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        for seed in 0..8u32 {
            let q = series(128, 0.11 + seed as f32 * 0.07);
            let c: Vec<f32> = series(128, 0.41 + seed as f32 * 0.05)
                .iter()
                .map(|v| v * 1.2 - 0.3)
                .collect();
            for w in [1usize, 6, 12] {
                let p = DtwParams { window: w };
                let env = Envelope::new(&q, p);
                let lb = lb_keogh_sq(&env, &c);
                let d = dtw_sq(&q, &c, p);
                assert!(lb <= d + 1e-3, "seed={seed} w={w}: lb={lb} dtw={d}");
            }
        }
    }

    #[test]
    fn lb_keogh_of_series_inside_envelope_is_zero() {
        let q = series(64, 0.4);
        let env = Envelope::new(&q, DtwParams { window: 5 });
        assert_eq!(lb_keogh_sq(&env, &q), 0.0);
    }

    #[test]
    fn early_abandon_contract() {
        let q = series(128, 0.23);
        let c: Vec<f32> = q.iter().map(|v| v + 3.0).collect();
        let env = Envelope::new(&q, DtwParams { window: 12 });
        let exact = lb_keogh_sq(&env, &c);
        assert!(exact > 0.0);
        let d = lb_keogh_sq_early_abandon(&env, &c, exact / 10.0);
        assert!(d >= exact / 10.0);
        let d = lb_keogh_sq_early_abandon(&env, &c, exact * 2.0);
        assert!(approx_eq(d, exact, 1e-4));
    }

    #[test]
    fn scalar_twin_matches_simple_formula() {
        for n in [1usize, 7, 8, 9, 31, 32, 33, 64, 100, 255, 317] {
            let q = series(n, 0.23);
            let c: Vec<f32> = series(n, 0.47).iter().map(|v| v * 1.4 - 0.2).collect();
            let env = Envelope::new(&q, DtwParams { window: n / 8 });
            let simple = lb_keogh_sq(&env, &c);
            assert!(
                approx_eq(lb_keogh_sq_scalar(&env, &c), simple, 1e-4),
                "n={n}"
            );
            assert!(
                approx_eq(
                    lb_keogh_sq_early_abandon_scalar(&env, &c, f32::INFINITY),
                    simple,
                    1e-4
                ),
                "n={n}"
            );
        }
    }

    #[test]
    fn dispatchers_agree_for_all_kernels() {
        let q = series(256, 0.19);
        let c: Vec<f32> = series(256, 0.37).iter().map(|v| v * 1.3 + 0.1).collect();
        let env = Envelope::new(&q, DtwParams { window: 16 });
        let reference = lb_keogh_sq(&env, &c);
        for kernel in [Kernel::Auto, Kernel::Simd, Kernel::Scalar] {
            assert!(approx_eq(
                lb_keogh_sq_with(kernel, &env, &c),
                reference,
                1e-4
            ));
            let ea = lb_keogh_sq_early_abandon_with(kernel, &env, &c, f32::INFINITY);
            assert!(approx_eq(ea, reference, 1e-4));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn scalar_twin_is_bit_identical_to_avx() {
        if !simd::simd_available() {
            return;
        }
        for n in [1usize, 7, 8, 9, 31, 32, 33, 63, 64, 100, 255, 256, 1024] {
            let q = series(n, 0.29);
            let c: Vec<f32> = series(n, 0.53).iter().map(|v| v * 1.6 - 0.4).collect();
            let env = Envelope::new(&q, DtwParams { window: n / 10 });
            // SAFETY: guarded by simd_available().
            let simd_val = unsafe { simd::avx::lb_keogh_sq(&env.lower, &env.upper, &c) };
            assert_eq!(
                lb_keogh_sq_scalar(&env, &c).to_bits(),
                simd_val.to_bits(),
                "lb_keogh_sq n={n}"
            );
            for bound in [f32::INFINITY, 0.5, 10.0] {
                // SAFETY: guarded by simd_available().
                let simd_val = unsafe {
                    simd::avx::lb_keogh_sq_early_abandon(&env.lower, &env.upper, &c, bound)
                };
                assert_eq!(
                    lb_keogh_sq_early_abandon_scalar(&env, &c, bound).to_bits(),
                    simd_val.to_bits(),
                    "early_abandon n={n} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn envelope_len_accessors() {
        let s = series(32, 0.2);
        let env = Envelope::new(&s, DtwParams { window: 3 });
        assert_eq!(env.len(), 32);
        assert!(!env.is_empty());
    }
}
