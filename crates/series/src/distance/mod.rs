//! Distance kernels.
//!
//! The paper relies on three distance computations, all provided here:
//!
//! * **Real (squared Euclidean) distance** between two raw series —
//!   [`euclidean`], in scalar (*SISD*) and AVX2 SIMD variants with early
//!   abandoning, exactly the kernels ParIS/MESSI run with SIMD (§II-A,
//!   Fig. 18 ablates SIMD vs SISD).
//! * **Dynamic Time Warping** with a Sakoe-Chiba band — [`dtw`] (Fig. 19).
//! * **LB_Keogh** envelope lower bound for DTW — [`lb_keogh`] (Fig. 19;
//!   "we just have to build the envelope of the LB_Keogh method around the
//!   query series, and then search the index using this envelope").
//!
//! The iSAX *lower-bound* distance (mindist) lives in `messi-sax` because
//! it needs the breakpoint tables.

pub mod dtw;
pub mod euclidean;
pub mod lb_keogh;
pub mod simd;

/// Selects how distance kernels are executed.
///
/// `Auto` resolves to SIMD when the CPU supports AVX2+FMA and to scalar
/// otherwise. `Scalar` forces the SISD code path — this is what the
/// ParIS-SISD bar of Fig. 18 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Use SIMD when available, scalar otherwise.
    #[default]
    Auto,
    /// Force the SIMD (AVX2+FMA) kernels; falls back to scalar if the CPU
    /// lacks them (so results are always produced).
    Simd,
    /// Force the scalar (SISD) kernels.
    Scalar,
}

impl Kernel {
    /// Whether this kernel selection resolves to the SIMD code path on the
    /// current CPU.
    #[inline]
    pub fn uses_simd(self) -> bool {
        match self {
            Kernel::Scalar => false,
            Kernel::Auto | Kernel::Simd => simd::simd_available(),
        }
    }
}

impl std::str::FromStr for Kernel {
    type Err = String;

    /// Parses the CLI spelling: `auto`, `simd`, or `scalar` (alias
    /// `sisd`, the paper's name for the configuration).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Kernel::Auto),
            "simd" => Ok(Kernel::Simd),
            "scalar" | "sisd" => Ok(Kernel::Scalar),
            other => Err(format!(
                "unknown kernel '{other}' (expected auto, simd, or scalar)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_kernel_never_uses_simd() {
        assert!(!Kernel::Scalar.uses_simd());
    }

    #[test]
    fn auto_matches_detection() {
        assert_eq!(Kernel::Auto.uses_simd(), simd::simd_available());
        assert_eq!(Kernel::Simd.uses_simd(), simd::simd_available());
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(Kernel::default(), Kernel::Auto);
    }
}
